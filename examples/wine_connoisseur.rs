//! The wine connoisseur from the paper's introduction: a specialized
//! search vertical that combines her knowledge of wines with targeted
//! web-search results, embedded in her site and monetized.
//!
//! Demonstrates: XML upload, Site Suggest (paper ref [2]) to grow the
//! restriction list, query augmentation, image supplemental content,
//! and the earnings ledger.
//!
//! Run with `cargo run -p symphony-examples --bin wine_connoisseur`.

use symphony_ads::{Ad, Keyword, MatchType};
use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_designer::{Canvas, Element, Selector, StyleProps, Stylesheet};
use symphony_examples::{banner, heading, indent};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::{CmpOp, Filter, HybridQuery, IndexKind, IndexedTable, Value};
use symphony_web::{
    generate_logs, Corpus, CorpusConfig, LogConfig, SearchConfig, SearchEngine, SiteSuggest, Topic,
    Vertical,
};

const CELLAR_XML: &str = "\
<cellar>
  <wine><title>Chateau Margaux 2005</title><region>Bordeaux</region><notes>plum and cedar, firm tannin, long cellar life</notes><rating>98</rating><price>850</price></wine>
  <wine><title>Ridge Monte Bello 2001</title><region>Santa Cruz</region><notes>blackcurrant and graphite cabernet blend aged in oak</notes><rating>97</rating><price>160</price></wine>
  <wine><title>Egon Muller Scharzhofberger 2007</title><region>Mosel</region><notes>apricot and slate riesling kabinett</notes><rating>95</rating><price>45</price></wine>
  <wine><title>Penfolds Grange 1998</title><region>Australia</region><notes>dense shiraz with mocha oak</notes><rating>99</rating><price>29</price></wine>
</cellar>
";

fn main() {
    banner("Wine connoisseur: a monetized specialist vertical");

    let corpus = Corpus::generate(&CorpusConfig::default().with_entities(
        Topic::Wine,
        [
            "Chateau Margaux",
            "Ridge Monte Bello",
            "Egon Muller Scharzhofberger",
            "Penfolds Grange",
        ],
    ));
    let mut platform = Platform::new(SearchEngine::new(corpus));
    let (tenant, key) = platform.create_tenant("VinFannie");

    heading("upload tasting notes (XML)");
    let (table, report) = ingest("cellar", CELLAR_XML, DataFormat::Xml).expect("XML parses");
    println!("{} wines ingested from {:?}", report.rows, report.format);
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("region", 1.5), ("notes", 1.0)])
        .expect("columns exist");
    // Ordered index on price: the hybrid planner reads its exact
    // cardinalities to decide filter-first vs search-first.
    indexed
        .create_index("price", IndexKind::Ordered)
        .expect("price column");
    platform.upload_table(tenant, &key, indexed).expect("quota");

    heading("Site Suggest: grow the restriction list from one seed");
    let logs = generate_logs(
        platform.engine(),
        &LogConfig {
            sessions: 300,
            topics: vec![Topic::Wine, Topic::Games],
            ..LogConfig::default()
        },
    );
    let suggest = SiteSuggest::from_logs(&logs);
    let suggestions = suggest.suggest(&["winespectator.com"], 3);
    println!("seed: winespectator.com");
    for s in &suggestions {
        println!(
            "  suggested related site: {} (score {:.3})",
            s.domain, s.score
        );
    }
    let mut restrict = vec!["winespectator.com".to_string()];
    restrict.extend(suggestions.iter().map(|s| s.domain.clone()));

    heading("ads: a merchant bids on wine queries");
    let adv = platform.ads_mut().add_advertiser("GrapeDeals");
    platform.ads_mut().add_campaign(
        adv,
        "wine",
        5_000,
        vec![Keyword::new("wine", MatchType::Broad, 30)],
        Ad {
            title: "GrapeDeals cellar sale".into(),
            display_url: "grapedeals.example.com".into(),
            target_url: "http://grapedeals.example.com".into(),
            text: "vintage bottles shipped".into(),
        },
        0.7,
    );

    heading("design with a stylesheet (web-savvy presentation)");
    let sheet = Stylesheet::new()
        .rule(
            Selector::Class("result-title".into()),
            StyleProps::new()
                .with("color", "#722f37")
                .with("font-size", "16px"),
        )
        .rule(
            Selector::Kind("text".into()),
            StyleProps::new().with("font-family", "Georgia, serif"),
        );
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(root, Element::search_box("Ask the connoisseur…"))
        .expect("ok");
    canvas
        .insert(
            root,
            Element::result_list(
                "cellar",
                Element::column(vec![
                    Element::text("{title} — {region} ({rating} pts)").with_class("result-title"),
                    Element::text("{notes}"),
                    Element::result_list(
                        "wineweb",
                        Element::column(vec![
                            Element::link_field("url", "{title}"),
                            Element::rich_text("{snippet}"),
                        ]),
                        2,
                    ),
                    Element::result_list("labels", Element::image_field("image_src", "{title}"), 1),
                ]),
                4,
            ),
        )
        .expect("ok");
    canvas
        .insert(
            root,
            Element::result_list(
                "oak_bargains",
                Element::column(vec![
                    Element::text("{title} — only ${price}").with_class("result-title"),
                    Element::text("{notes}"),
                ]),
                3,
            ),
        )
        .expect("ok");
    canvas
        .insert(
            root,
            Element::result_list("sponsored", symphony_designer::template::ad_layout(), 1),
        )
        .expect("ok");

    let app = AppBuilder::new("VinFannie", tenant)
        .layout(canvas)
        .stylesheet(sheet)
        .source(
            "cellar",
            DataSourceDef::Proprietary {
                table: "cellar".into(),
            },
        )
        .source(
            "wineweb",
            DataSourceDef::WebVertical {
                vertical: Vertical::Web,
                config: SearchConfig::default()
                    .restrict_to(restrict.clone())
                    .augment(["wine"]),
            },
        )
        .source(
            "labels",
            DataSourceDef::WebVertical {
                vertical: Vertical::Image,
                config: SearchConfig::default(),
            },
        )
        .source(
            "oak_bargains",
            DataSourceDef::Hybrid {
                table: "cellar".into(),
                // price (col 4) under $50 — resolved via the ordered
                // index, pushed into the text executor as a skip set.
                filter: Filter::cmp(4, CmpOp::Lt, Value::Int(50)),
            },
        )
        .source("sponsored", DataSourceDef::Ads { slots: 1 })
        .supplemental("wineweb", "{title} tasting")
        .supplemental("labels", "{title}")
        .build()
        .expect("valid app");
    let id = platform.register_app(app).expect("registers");
    platform.publish(id).expect("publishes");

    heading("customer queries");
    for q in ["riesling", "bordeaux tannin", "shiraz"] {
        let resp = platform.query(id, q).expect("published");
        println!(
            "query {q:?}: {} impressions, {} virtual ms",
            resp.impressions.len(),
            resp.virtual_ms
        );
        // Click whatever ranked first, crediting ads when sponsored.
        if let Some(first) = resp.impressions.first().cloned() {
            let credited = platform.click(id, q, &first).expect("click ok");
            if let Some(cents) = credited {
                println!("  sponsored click — credited {cents} cents");
            }
        }
    }

    heading("hybrid query: affordable 'oak' wines");
    {
        let space = platform.store().space(tenant, &key).expect("tenant");
        let cellar = space.table("cellar").expect("uploaded");
        let hq = HybridQuery::new(
            symphony_text::Query::parse("oak"),
            Filter::cmp(4, CmpOp::Lt, Value::Int(50)),
            5,
        );
        let result = cellar.hybrid_query(&hq).expect("fulltext enabled");
        println!(
            "planner chose {} ({:?}, est {:?} of {} rows)",
            result.explain.plan.name(),
            result.explain.access,
            result.explain.estimated_matches,
            result.explain.table_rows,
        );
        for h in &result.hits {
            let rec = cellar.table().get(h.record).expect("live");
            println!(
                "  {} — ${} (score {:.3})",
                rec.get(0).display_string(),
                rec.get(4).display_string(),
                h.score
            );
        }
        // Only the Grange: Ridge's oaked blend costs $160, and the
        // sub-$50 riesling never mentions oak.
        assert_eq!(result.hits.len(), 1);
        let grange = cellar.table().get(result.hits[0].record).expect("live");
        assert_eq!(grange.get(0).display_string(), "Penfolds Grange 1998");
    }
    // The published app runs the same engine: an "oak" query surfaces
    // the bargain through the hybrid source's list.
    let resp = platform.query(id, "oak").expect("published");
    assert!(resp.html.contains("Penfolds Grange"));
    assert!(resp.html.contains("only $29"));

    heading("the stylesheet reaches the HTML");
    let resp = platform.query(id, "riesling").expect("published");
    assert!(resp.html.contains("color:#722f37"), "styled title missing");
    println!("{}", indent(resp.html.lines().next().unwrap_or("")));

    heading("earnings");
    let summary = platform.traffic_summary(id).expect("exists");
    println!(
        "impressions={} clicks={} ad_clicks={} — earned {} cents",
        summary.impressions,
        summary.clicks,
        summary.ad_clicks,
        platform.publisher_earnings_cents(id).unwrap_or(0)
    );
}
