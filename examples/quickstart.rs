//! Quickstart: the smallest useful Symphony application.
//!
//! A collector uploads a CSV of her wine cellar, drops it onto a
//! canvas, publishes, and customers search it — five minutes from
//! data to hosted search application, which is the paper's pitch.
//!
//! Run with `cargo run -p symphony-examples --bin quickstart`.

use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_designer::{Canvas, Element};
use symphony_examples::{banner, heading, indent};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_web::{Corpus, CorpusConfig, SearchEngine};

const CELLAR_CSV: &str = "\
title,region,vintage,notes
Chateau Margaux,Bordeaux,2005,plum and cedar with firm tannin
Ridge Monte Bello,Santa Cruz,2001,blackcurrant and graphite
Egon Muller Scharzhofberger,Mosel,2007,apricot and slate riesling
";

fn main() {
    banner("Symphony quickstart: a cellar search app in five steps");

    // 1. The platform hosts everything (paper §II-A "Hosting").
    heading("1. stand up the platform");
    let engine = SearchEngine::new(Corpus::generate(&CorpusConfig {
        sites_per_topic: 2,
        pages_per_site: 4,
        ..CorpusConfig::default()
    }));
    let mut platform = Platform::new(engine);
    let (tenant, key) = platform.create_tenant("CellarFan");
    println!("tenant created: {tenant:?} (access key issued)");

    // 2. Upload proprietary data.
    heading("2. upload the cellar CSV");
    let (table, report) = ingest("cellar", CELLAR_CSV, DataFormat::Csv).expect("CSV parses");
    println!(
        "ingested {} rows as format {:?}; inferred schema: {:?}",
        report.rows,
        report.format,
        table
            .schema()
            .fields()
            .iter()
            .map(|f| format!("{}:{:?}", f.name, f.ty))
            .collect::<Vec<_>>()
    );
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("region", 1.0), ("notes", 1.0)])
        .expect("columns exist");
    platform
        .upload_table(tenant, &key, indexed)
        .expect("within quota");

    // 3. Design the layout (one result list bound to the table).
    heading("3. design the layout");
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(root, Element::search_box("Search the cellar…"))
        .expect("root exists");
    canvas
        .insert(
            root,
            Element::result_list(
                "cellar",
                Element::column(vec![
                    Element::text("{title} ({vintage}, {region})").with_class("result-title"),
                    Element::text("{notes}").with_class("result-description"),
                ]),
                5,
            ),
        )
        .expect("root exists");

    // 4. Register + publish.
    heading("4. register and publish");
    let app = AppBuilder::new("CellarSearch", tenant)
        .layout(canvas)
        .source(
            "cellar",
            DataSourceDef::Proprietary {
                table: "cellar".into(),
            },
        )
        .build()
        .expect("valid config");
    let id = platform.register_app(app).expect("registers");
    platform.publish(id).expect("publishes");
    println!("embed code for the designer's web site:\n");
    println!("{}", indent(&platform.embed_code(id).expect("app exists")));

    // 5. A customer searches.
    heading("5. customer query: \"riesling\"");
    let resp = platform.query(id, "riesling").expect("published app");
    println!("{}", resp.trace.render());
    println!("returned HTML:\n{}", indent(&resp.html));
    assert!(resp.html.contains("Egon Muller"));
    println!(
        "\nquickstart complete: {} virtual ms end to end",
        resp.virtual_ms
    );
}
