//! The video store from the paper's introduction: browse the owner's
//! movie inventory, "augmented ... with focused search results for
//! supplemental content such as the latest reviews and trailers
//! obtained on the fly".
//!
//! Demonstrates: URL-crawl ingestion (the store's catalog pages are
//! crawled off the synthetic web), video + news verticals as
//! supplemental content, sequential-vs-parallel execution modes, and
//! cache behaviour under repeated queries.
//!
//! Run with `cargo run -p symphony-examples --bin video_store`.

use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::runtime::ExecMode;
use symphony_core::source::DataSourceDef;
use symphony_designer::{Canvas, Element};
use symphony_examples::{banner, heading};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_web::{
    Corpus, CorpusConfig, CorpusFetcher, SearchConfig, SearchEngine, Topic, Vertical,
};

const MOVIES: [&str; 4] = [
    "Midnight Circuit",
    "The Quiet Harbor",
    "Starlight Heist",
    "Paper Lanterns",
];

const INVENTORY_CSV: &str = "\
title,genre,year,description
Midnight Circuit,thriller,2008,a street racer uncovers a conspiracy
The Quiet Harbor,drama,2009,two families share one lighthouse
Starlight Heist,comedy,2009,amateur thieves hit a planetarium
Paper Lanterns,romance,2007,letters cross a festival sky
";

fn main() {
    banner("Video store: movie inventory + trailers and news on the fly");

    let corpus = Corpus::generate(&CorpusConfig::default().with_entities(Topic::Movies, MOVIES));

    heading("crawl demonstration: ingest review pages via URL crawling");
    // Before the engine consumes the corpus, crawl a slice of it the
    // way a designer would crawl their own site (upload method 3).
    let seed = corpus
        .pages
        .iter()
        .find(|p| corpus.sites[p.site].domain == "imdb.com")
        .map(|p| p.url.clone())
        .expect("imdb pages exist");
    let fetcher = CorpusFetcher::new(&corpus);
    let (crawled, crawl_report) =
        symphony_store::ingest::crawl("crawled_pages", &seed, 12, &fetcher);
    println!(
        "crawled {} pages from seed {seed} ({} warnings)",
        crawled.len(),
        crawl_report.warnings.len()
    );

    let mut platform = Platform::new(SearchEngine::new(corpus));
    let (tenant, key) = platform.create_tenant("ReelTime");
    let (table, _) = ingest("inventory", INVENTORY_CSV, DataFormat::Csv).expect("parses");
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
        .expect("columns exist");
    platform.upload_table(tenant, &key, indexed).expect("quota");
    // The crawled pages become a searchable supplemental table too.
    let mut crawled_indexed = IndexedTable::new(crawled);
    crawled_indexed
        .enable_fulltext(&[("title", 2.0), ("body", 1.0)])
        .expect("columns exist");
    platform
        .upload_table(tenant, &key, crawled_indexed)
        .expect("quota");

    heading("design: trailers (video vertical) + headlines (news vertical)");
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(root, Element::search_box("Find a movie…"))
        .expect("ok");
    canvas
        .insert(
            root,
            Element::result_list(
                "inventory",
                Element::column(vec![
                    Element::text("{title} ({year}) — {genre}").with_class("result-title"),
                    Element::text("{description}"),
                    Element::result_list(
                        "trailers",
                        Element::column(vec![
                            Element::link_field("url", "▶ {title}"),
                            Element::text("{duration_s}s"),
                        ]),
                        1,
                    ),
                    Element::result_list("headlines", Element::link_field("url", "{title}"), 2),
                ]),
                6,
            ),
        )
        .expect("ok");

    let app = AppBuilder::new("ReelTime", tenant)
        .layout(canvas)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .source(
            "trailers",
            DataSourceDef::WebVertical {
                vertical: Vertical::Video,
                config: SearchConfig::default(),
            },
        )
        .source(
            "headlines",
            DataSourceDef::WebVertical {
                vertical: Vertical::News,
                config: SearchConfig::default(),
            },
        )
        .supplemental("trailers", "{title} trailer")
        .supplemental("headlines", "{title}")
        .build()
        .expect("valid app");
    let id = platform.register_app(app).expect("registers");
    platform.publish(id).expect("publishes");

    heading("query: \"heist comedy\" — trailers and news arrive with it");
    let resp = platform.query(id, "heist comedy").expect("published");
    println!("{}", resp.trace.render());
    assert!(resp.html.contains("Starlight Heist"));

    heading("parallel vs sequential fan-out on the same query (E1 shape)");
    // Rebuild as sequential to compare virtual latencies.
    let app_cfg = platform.app(id).expect("exists").clone();
    let corpus2 = Corpus::generate(&CorpusConfig::default().with_entities(Topic::Movies, MOVIES));
    let mut seq_platform =
        Platform::new(SearchEngine::new(corpus2)).with_mode(ExecMode::Sequential);
    let (t2, k2) = seq_platform.create_tenant("ReelTime");
    let (table2, _) = ingest("inventory", INVENTORY_CSV, DataFormat::Csv).expect("parses");
    let mut indexed2 = IndexedTable::new(table2);
    indexed2
        .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
        .expect("columns exist");
    seq_platform.upload_table(t2, &k2, indexed2).expect("quota");
    let mut cfg2 = app_cfg;
    cfg2.owner = t2;
    let id2 = seq_platform.register_app(cfg2).expect("registers");
    seq_platform.publish(id2).expect("publishes");
    let seq = seq_platform.query(id2, "heist comedy").expect("published");
    println!(
        "parallel: {} virtual ms   sequential: {} virtual ms   speedup: {:.1}x",
        resp.virtual_ms,
        seq.virtual_ms,
        seq.virtual_ms as f64 / resp.virtual_ms.max(1) as f64
    );

    heading("cache behaviour on a head query");
    for _ in 0..3 {
        platform.query(id, "heist comedy").expect("published");
    }
    let stats = platform.cache_stats(id).expect("exists");
    println!(
        "cache: {} hits / {} misses (hit rate {:.0}%)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
