//! Marketplace — the paper's §IV future-work features, together.
//!
//! Two shops (games, wine) run their own Symphony apps; a marketplace
//! app *composes* them into one search box. Along the way:
//!
//! * **supplemental-site recommendation** proposes the review sites
//!   for the games shop (instead of Ann picking them by hand);
//! * a **structured constraint** hides out-of-stock items;
//! * **click feedback** from community logs tunes the general engine;
//! * **application composition** federates both shops.
//!
//! Run with `cargo run -p symphony-examples --bin marketplace`.

use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::recommend_sites;
use symphony_core::source::DataSourceDef;
use symphony_designer::{Canvas, Element};
use symphony_examples::{banner, heading, indent};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::{CmpOp, Filter, IndexedTable, Value};
use symphony_web::{
    generate_logs, Corpus, CorpusConfig, LogConfig, SearchConfig, SearchEngine, Topic, Vertical,
};

const GAMES_CSV: &str = "\
title,genre,price,stock
Galactic Raiders,shooter,49.99,3
Farm Story,sim,19.99,0
Space Trader,strategy,29.99,5
";

const WINES_CSV: &str = "\
title,region,notes
Chateau Margaux,Bordeaux,plum and cedar
Penfolds Grange,Australia,dense shiraz with mocha oak
";

fn main() {
    banner("Marketplace: composition + recommendation + constraints + feedback");

    let corpus = Corpus::generate(
        &CorpusConfig::default()
            .with_entities(
                Topic::Games,
                ["Galactic Raiders", "Farm Story", "Space Trader"],
            )
            .with_entities(Topic::Wine, ["Chateau Margaux", "Penfolds Grange"]),
    );
    let mut engine = SearchEngine::new(corpus);

    heading("community click feedback tunes the general engine (§IV)");
    let logs = generate_logs(
        &engine,
        &LogConfig {
            sessions: 300,
            topics: vec![Topic::Games, Topic::Wine],
            ..LogConfig::default()
        },
    );
    engine.apply_click_feedback(&logs, 0.8);
    println!(
        "{} click events -> {} (query, url) relevance boosts",
        logs.len(),
        engine.click_boosted_urls()
    );

    let mut platform = Platform::new(engine);
    let (tenant, key) = platform.create_tenant("Marketplace");

    // --- The games shop, with recommended review sites and an
    //     in-stock constraint.
    heading("games shop: recommended supplemental sites (§IV)");
    let (games, _) = ingest("games", GAMES_CSV, DataFormat::Csv).expect("parses");
    let mut games_indexed = IndexedTable::new(games);
    games_indexed
        .enable_fulltext(&[("title", 2.0), ("genre", 1.0)])
        .expect("columns");
    let recs = recommend_sites(platform.engine(), &games_indexed, "title", 8, 2);
    for r in recs.iter().take(3) {
        println!(
            "  recommended: {} (score {:.2}, supported by {} titles)",
            r.domain, r.score, r.supporting_entities
        );
    }
    let review_sites: Vec<String> = recs.iter().take(3).map(|r| r.domain.clone()).collect();
    let stock_col = games_indexed.table().schema().col("stock").expect("exists");
    platform
        .upload_table(tenant, &key, games_indexed)
        .expect("quota");

    let mut games_canvas = Canvas::new();
    let root = games_canvas.root_id();
    let item = Element::column(vec![
        Element::text("{title} — ${price}"),
        Element::result_list("reviews", Element::link_field("url", "{title}"), 2),
    ]);
    games_canvas
        .insert(root, Element::result_list("games", item, 10))
        .expect("root");
    let games_app = platform
        .register_app(
            AppBuilder::new("GamerQueen", tenant)
                .layout(games_canvas)
                .source(
                    "games",
                    DataSourceDef::Proprietary {
                        table: "games".into(),
                    },
                )
                .source(
                    "reviews",
                    DataSourceDef::WebVertical {
                        vertical: Vertical::Web,
                        config: SearchConfig::default().restrict_to(review_sites.clone()),
                    },
                )
                .supplemental("reviews", "{title} review")
                // §IV structured constraint: only in-stock games.
                .constraint("games", Filter::cmp(stock_col, CmpOp::Gt, Value::Int(0)))
                .build()
                .expect("valid"),
        )
        .expect("registers");
    platform.publish(games_app).expect("publishes");
    println!(
        "games shop published with in-stock constraint and sites {:?}",
        review_sites
    );

    // --- The wine shop.
    let (wines, _) = ingest("wines", WINES_CSV, DataFormat::Csv).expect("parses");
    let mut wines_indexed = IndexedTable::new(wines);
    wines_indexed
        .enable_fulltext(&[("title", 2.0), ("region", 1.0), ("notes", 1.0)])
        .expect("columns");
    platform
        .upload_table(tenant, &key, wines_indexed)
        .expect("quota");
    let mut wine_canvas = Canvas::new();
    let root = wine_canvas.root_id();
    wine_canvas
        .insert(
            root,
            Element::result_list("wines", Element::text("{title} ({region}) — {notes}"), 10),
        )
        .expect("root");
    let wine_app = platform
        .register_app(
            AppBuilder::new("VinFannie", tenant)
                .layout(wine_canvas)
                .source(
                    "wines",
                    DataSourceDef::Proprietary {
                        table: "wines".into(),
                    },
                )
                .build()
                .expect("valid"),
        )
        .expect("registers");
    platform.publish(wine_app).expect("publishes");

    // --- The marketplace composes both apps (§IV).
    heading("the marketplace app composes both shops (§IV)");
    let mut mall_canvas = Canvas::new();
    let root = mall_canvas.root_id();
    mall_canvas
        .insert(root, Element::search_box("Search the marketplace…"))
        .expect("root");
    for (name, label) in [("games_shop", "Games"), ("wine_shop", "Wine")] {
        mall_canvas
            .insert(
                root,
                Element::column(vec![
                    Element::text(label).with_class("shop-header"),
                    Element::result_list(
                        name,
                        Element::column(vec![
                            Element::link_field("url", "{title}"),
                            Element::text("via {app}"),
                        ]),
                        4,
                    ),
                ]),
            )
            .expect("root");
    }
    let mall = platform
        .register_app(
            AppBuilder::new("Marketplace", tenant)
                .layout(mall_canvas)
                .source("games_shop", DataSourceDef::ComposedApp { app: games_app })
                .source("wine_shop", DataSourceDef::ComposedApp { app: wine_app })
                .build()
                .expect("valid"),
        )
        .expect("registers");
    platform.publish(mall).expect("publishes");

    for q in ["shooter", "shiraz", "story"] {
        let resp = platform.query(mall, q).expect("published");
        println!("\nmarketplace query {q:?}:");
        println!("{}", indent(&resp.trace.render()));
        if q == "story" {
            // Farm Story exists but is out of stock: the games shop's
            // constraint keeps it hidden even through composition.
            assert!(!resp.html.contains("Farm Story"));
            println!("    (Farm Story hidden by the in-stock constraint)");
        }
    }

    heading("per-shop traffic accrues through composition");
    for (label, id) in [
        ("Marketplace", mall),
        ("GamerQueen", games_app),
        ("VinFannie", wine_app),
    ] {
        let s = platform.traffic_summary(id).expect("exists");
        println!("  {label}: {} impressions", s.impressions);
    }
}
