//! GamerQueen — the paper's §II-B worked example, end to end.
//!
//! Ann, a video game store owner, builds a custom search experience:
//! her inventory as primary content, game reviews from gamespot.com /
//! ign.com / teamxbox.com as supplemental web content, a real-time
//! pricing and in-stock service, and voluntary ads with revenue
//! sharing. The example walks registration, design (via drag-and-drop
//! ops), publication, query execution (Fig. 2), a customer click on an
//! ad, and the monetization summaries.
//!
//! Run with `cargo run -p symphony-examples --bin gamer_queen`.

use symphony_ads::{Ad, Keyword, MatchType};
use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_core::SocialCanvasHost;
use symphony_designer::canvas::DataSourceCard;
use symphony_designer::ops::{DesignOp, Designer};
use symphony_designer::{render_outline, Element};
use symphony_examples::{banner, heading, indent};
use symphony_services::{CallPolicy, InventoryService, LatencyModel, PricingService};
use symphony_store::hybrid::join_on_column;
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::{CmpOp, Filter, IndexKind, IndexedTable, Value};
use symphony_web::{Corpus, CorpusConfig, SearchConfig, SearchEngine, Topic, Vertical};

const INVENTORY_CSV: &str = "\
title,genre,description,detail_url,price,in_stock
Galactic Raiders,shooter,a fast space shooter with lasers,http://gamerqueen.example.com/games/galactic-raiders,49.99,true
Farm Story,sim,calm farming with crops and animals,http://gamerqueen.example.com/games/farm-story,19.99,true
Space Trader,strategy,trade goods across space stations,http://gamerqueen.example.com/games/space-trader,29.99,false
Laser Golf,sports,golf with lasers a silly shooter,http://gamerqueen.example.com/games/laser-golf,9.99,true
Puzzle Palace,puzzle,mind bending puzzle rooms,http://gamerqueen.example.com/games/puzzle-palace,14.99,true
";

fn main() {
    banner("GamerQueen: the paper's Section II-B scenario");

    // The simulated web knows Ann's games (reviews, screenshots,
    // trailers exist on the authoritative game sites).
    let corpus = Corpus::generate(&CorpusConfig::default().with_entities(
        Topic::Games,
        [
            "Galactic Raiders",
            "Farm Story",
            "Space Trader",
            "Laser Golf",
            "Puzzle Palace",
        ],
    ));
    let mut platform = Platform::new(SearchEngine::new(corpus));

    heading("register proprietary inventory");
    let (tenant, key) = platform.create_tenant("GamerQueen");
    let (table, report) = ingest("inventory", INVENTORY_CSV, DataFormat::Csv).expect("parses");
    println!(
        "uploaded inventory: {} rows ({:?})",
        report.rows, report.format
    );
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
        .expect("columns exist");
    // Secondary indexes feed the hybrid planner's exact cardinality
    // estimates (and back the bargain-bin source's predicate).
    indexed
        .create_index("price", IndexKind::Ordered)
        .expect("price column");
    indexed
        .create_index("in_stock", IndexKind::Hash)
        .expect("in_stock column");
    platform.upload_table(tenant, &key, indexed).expect("quota");

    heading("attach services and ads");
    platform
        .transport_mut()
        .register("pricing", Box::new(PricingService), LatencyModel::fast());
    platform
        .transport_mut()
        .register("stock", Box::new(InventoryService), LatencyModel::default());
    let adv = platform.ads_mut().add_advertiser("MegaGames");
    platform.ads_mut().add_campaign(
        adv,
        "games push",
        10_000,
        vec![
            Keyword::new("game", MatchType::Broad, 40),
            Keyword::new("space shooter", MatchType::Phrase, 60),
        ],
        Ad {
            title: "Mega Games Sale".into(),
            display_url: "megagames.example.com".into(),
            target_url: "http://megagames.example.com/sale".into(),
            text: "50% off space shooters this week".into(),
        },
        0.85,
    );
    println!("pricing + in-stock services registered; 1 ad campaign live");

    heading("design the application (drag-and-drop op log)");
    let mut designer = Designer::new();
    designer.register_source(DataSourceCard {
        name: "inventory".into(),
        category: "proprietary".into(),
        fields: ["title", "genre", "description", "detail_url", "price"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    });
    designer.register_source(DataSourceCard {
        name: "reviews".into(),
        category: "web".into(),
        fields: ["url", "title", "snippet", "domain"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    });
    // The bargain bin is a hybrid source: full-text over the same
    // inventory, but with "in stock AND price < $30" resolved through
    // the secondary indexes by the selectivity planner.
    designer.register_source(DataSourceCard {
        name: "bargain_bin".into(),
        category: "hybrid".into(),
        fields: ["title", "genre", "description", "detail_url", "price"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    });
    let root = designer.canvas().root_id();
    designer
        .apply(DesignOp::AddElement {
            parent: root,
            element: Element::search_box("Search GamerQueen…"),
        })
        .expect("ok");
    let list = designer
        .apply(DesignOp::DropSource {
            source: "inventory".into(),
            target: root,
            max_results: 10,
        })
        .expect("ok")
        .expect("creates list");
    // Drag web search onto the result layout (supplemental reviews).
    designer
        .apply(DesignOp::AddElement {
            parent: list,
            element: Element::result_list(
                "reviews",
                Element::column(vec![
                    Element::link_field("url", "{title}").with_class("review-link"),
                    Element::rich_text("{snippet}"),
                ]),
                3,
            ),
        })
        .expect("ok");
    // Pricing and stock as service-based supplemental content.
    designer
        .apply(DesignOp::AddElement {
            parent: list,
            element: Element::result_list("pricing", Element::text("Now ${price} {currency}"), 1),
        })
        .expect("ok");
    designer
        .apply(DesignOp::AddElement {
            parent: list,
            element: Element::result_list(
                "stock",
                Element::text("In stock: {quantity} ({warehouse})"),
                1,
            ),
        })
        .expect("ok");
    // Bargain-bin list (hybrid: in-stock under $30) beside the results.
    designer
        .apply(DesignOp::AddElement {
            parent: root,
            element: Element::result_list(
                "bargain_bin",
                Element::column(vec![
                    Element::link_field("detail_url", "{title}").with_class("bargain-link"),
                    Element::text("Only ${price}!"),
                ]),
                3,
            ),
        })
        .expect("ok");
    // Ads column under the results.
    designer
        .apply(DesignOp::AddElement {
            parent: root,
            element: Element::result_list("sponsored", symphony_designer::template::ad_layout(), 2),
        })
        .expect("ok");
    println!(
        "layout outline:\n{}",
        indent(&render_outline(designer.canvas().root()))
    );

    let app_config = AppBuilder::new("GamerQueen", tenant)
        .layout(designer.into_canvas())
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .source(
            "reviews",
            DataSourceDef::WebVertical {
                vertical: Vertical::Web,
                config: SearchConfig::default().restrict_to([
                    "gamespot.com",
                    "ign.com",
                    "teamxbox.com",
                ]),
            },
        )
        .source(
            "pricing",
            DataSourceDef::Service {
                endpoint: "pricing".into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy: CallPolicy::default(),
            },
        )
        .source(
            "stock",
            DataSourceDef::Service {
                endpoint: "stock".into(),
                operation: "CheckStock".into(),
                item_param: "item".into(),
                policy: CallPolicy::default(),
            },
        )
        .source(
            "bargain_bin",
            DataSourceDef::Hybrid {
                table: "inventory".into(),
                // in_stock = true AND price < 30 (cols 5 and 4).
                filter: Filter::eq(5, Value::Bool(true)).and(Filter::cmp(
                    4,
                    CmpOp::Lt,
                    Value::Float(30.0),
                )),
            },
        )
        .source("sponsored", DataSourceDef::Ads { slots: 2 })
        .supplemental("reviews", "{title} review")
        .supplemental("pricing", "{title}")
        .supplemental("stock", "{title}")
        .build()
        .expect("valid app");

    heading("publish: embed snippet + social canvas");
    let app = platform.register_app(app_config).expect("registers");
    platform.publish(app).expect("publishes");
    println!("{}", indent(&platform.embed_code(app).expect("exists")));
    let mut facebook = SocialCanvasHost::new();
    let canvas_url = facebook
        .install(platform.social_manifest(app).expect("exists"))
        .expect("valid manifest");
    println!("\npublished to social canvas: {canvas_url}");

    heading("customer query: \"space shooter\" (Fig. 2 execution)");
    let resp = platform.query(app, "space shooter").expect("published");
    println!("{}", resp.trace.render());
    assert!(resp.html.contains("Galactic Raiders"));
    assert!(resp.html.contains("review"));
    // The bargain bin surfaces the in-stock shooter under $30 (Laser
    // Golf) while the $49.99 Galactic Raiders is filtered out of it.
    assert!(resp.html.contains("Laser Golf"));
    println!(
        "HTML response: {} bytes, {} impressions recorded",
        resp.html.len(),
        resp.impressions.len()
    );

    heading("hybrid query + join: in-stock bargains by product");
    {
        let space = platform.store().space(tenant, &key).expect("tenant");
        let inv = space.table("inventory").expect("uploaded");
        let hq = symphony_store::HybridQuery::new(
            symphony_text::Query::parse("space shooter"),
            Filter::eq(5, Value::Bool(true)).and(Filter::cmp(4, CmpOp::Lt, Value::Float(30.0))),
            5,
        );
        let result = inv.hybrid_query(&hq).expect("fulltext enabled");
        println!(
            "planner chose {} (access {:?}, est {:?} of {} rows)",
            result.explain.plan.name(),
            result.explain.access,
            result.explain.estimated_matches,
            result.explain.table_rows,
        );
        // Join the hits back on the typed product-title column: each
        // review/pricing vertical keys on the same title, so this is
        // the tenant-table side of a product join.
        let keys: Vec<Value> = result
            .hits
            .iter()
            .filter_map(|h| inv.table().get(h.record))
            .map(|r| r.get(0).clone())
            .collect();
        for (product, records) in join_on_column(inv, 0, &keys) {
            for id in records {
                let rec = inv.table().get(id).expect("joined id is live");
                println!(
                    "  {} -> ${} (in stock: {})",
                    product.display_string(),
                    rec.get(4).display_string(),
                    rec.get(5).display_string(),
                );
            }
        }
        assert!(keys.contains(&Value::Text("Laser Golf".into())));
        assert!(!keys.contains(&Value::Text("Galactic Raiders".into())));
    }

    heading("customer clicks");
    // Click the first inventory result and the sponsored ad.
    let game_click = resp
        .impressions
        .iter()
        .find(|i| i.source == "inventory")
        .expect("inventory impression");
    platform
        .click(app, "space shooter", game_click)
        .expect("click logged");
    if let Some(ad_click) = resp.impressions.iter().find(|i| i.is_ad) {
        let credited = platform
            .click(app, "space shooter", ad_click)
            .expect("click billed");
        println!(
            "ad click billed; Ann credited {} cents automatically",
            credited.unwrap_or(0)
        );
    }

    heading("monetization summaries");
    let summary = platform.traffic_summary(app).expect("exists");
    println!(
        "impressions={} clicks={} ad_clicks={} ctr={:.2}",
        summary.impressions,
        summary.clicks,
        summary.ad_clicks,
        summary.ctr()
    );
    println!(
        "publisher earnings so far: {} cents",
        platform.publisher_earnings_cents(app).unwrap_or(0)
    );
    println!(
        "\nreferral audit CSV:\n{}",
        indent(&platform.referral_audit_csv(app).expect("exists"))
    );
}
