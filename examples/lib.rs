//! Shared helpers for the Symphony examples.

#![warn(missing_docs)]

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Print a sub-section heading.
pub fn heading(title: &str) {
    println!("\n--- {title} ---");
}

/// Indent a multi-line block for display.
pub fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indent_prefixes_every_line() {
        assert_eq!(indent("a\nb"), "    a\n    b");
    }
}
