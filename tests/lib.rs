//! Integration-test package; all tests live in `tests/`.

#![warn(missing_docs)]
