//! Table-I and comparison-quality integration tests over the live
//! baseline models.

use symphony_baselines::{
    build_matrix, ndcg_at_k, BossModel, EureksterModel, GoogleBaseModel, GoogleCustomModel,
    RollyoModel, Scenario, SymphonyModel, SystemModel, EVAL_QUERIES,
};

fn all_models(scenario: &Scenario) -> Vec<Box<dyn SystemModel>> {
    vec![
        Box::new(SymphonyModel::new(scenario)),
        Box::new(BossModel::new(scenario.engine.clone())),
        Box::new(RollyoModel::new(scenario.engine.clone())),
        Box::new(EureksterModel::new(scenario.engine.clone())),
        Box::new(GoogleCustomModel::new(scenario.engine.clone())),
        Box::new(GoogleBaseModel::new(scenario.engine.clone())),
    ]
}

#[test]
fn table1_capability_claims_hold() {
    let scenario = Scenario::small();
    let mut models = all_models(&scenario);
    let rows = build_matrix(&mut models);
    let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap();

    // Column "Proprietary, Structured Data": Symphony and Google Base
    // only — and both earned it by actually ingesting files.
    assert!(get("Symphony")
        .proprietary_data
        .to_lowercase()
        .contains("upload"));
    assert!(get("Google Base")
        .proprietary_data
        .to_lowercase()
        .contains("upload"));
    assert_eq!(get("Rollyo").proprietary_data, "No");
    assert_eq!(get("Eurekster").proprietary_data, "No");
    assert_eq!(get("Google Custom").proprietary_data, "No");
    assert!(get("Y! BOSS").proprietary_data.contains("partners"));

    // Column "Custom Sites": everyone but Google Base.
    for sys in [
        "Symphony",
        "Y! BOSS",
        "Rollyo",
        "Eurekster",
        "Google Custom",
    ] {
        assert_eq!(get(sys).custom_sites, "Supported", "{sys}");
    }
    assert_eq!(get("Google Base").custom_sites, "No");

    // Column "Custom UI": only Symphony is no-code drag'n'drop.
    assert!(get("Symphony").custom_ui.contains("Drag'n'drop"));
    assert!(get("Y! BOSS").custom_ui.contains("code required"));
    for sys in ["Rollyo", "Eurekster", "Google Custom"] {
        assert!(get(sys).custom_ui.contains("Basic styling"), "{sys}");
    }
    assert_eq!(get("Google Base").custom_ui, "No");

    // Column "Monetization".
    assert!(get("Symphony").monetization.contains("voluntary"));
    assert!(get("Y! BOSS").monetization.contains("mandatory"));
    assert!(get("Rollyo").monetization.contains("own ads"));
    assert_eq!(get("Google Base").monetization, "No");

    // Column "Deployment": only Symphony hosts + embeds + social.
    assert!(get("Symphony").deployment.contains("social canvas"));
    assert!(get("Y! BOSS").deployment.contains("No assistance"));
    for sys in ["Rollyo", "Eurekster"] {
        assert!(get(sys).deployment.contains("search box"), "{sys}");
    }
}

#[test]
fn symphony_wins_scenario_quality_comparison() {
    // E5's core shape assertion: mean NDCG@10 over the evaluation
    // queries — Symphony (proprietary + focused supplemental) must
    // dominate every baseline.
    let scenario = Scenario::small();
    let mut models = all_models(&scenario);
    let mut mean_scores: Vec<(String, f64)> = Vec::new();
    for m in &mut models {
        let mut total = 0.0;
        for (query, target) in EVAL_QUERIES {
            let results = m.answer(query, 10);
            total += ndcg_at_k(&results, target, 10);
        }
        mean_scores.push((m.name().to_string(), total / EVAL_QUERIES.len() as f64));
    }
    let symphony = mean_scores.iter().find(|(n, _)| n == "Symphony").unwrap().1;
    for (name, score) in &mean_scores {
        if name != "Symphony" {
            assert!(
                symphony > *score,
                "Symphony ({symphony:.3}) must beat {name} ({score:.3})"
            );
        }
    }
    // And it must be substantially good in absolute terms.
    assert!(symphony > 0.5, "symphony mean ndcg = {symphony:.3}");
}

#[test]
fn baselines_beat_nothing_where_expected() {
    // Rollyo (restricted to the review sites) should still find
    // reviews: better than zero, worse than Symphony.
    let scenario = Scenario::small();
    let mut rollyo = RollyoModel::new(scenario.engine.clone());
    let mut any = 0.0;
    for (query, target) in EVAL_QUERIES {
        // Rollyo users search the *title* on their searchroll.
        let results = rollyo.answer(&format!("{target} review"), 10);
        any += ndcg_at_k(&results, target, 10);
        let _ = query;
    }
    assert!(any > 0.0, "site-restricted search finds some reviews");
}
