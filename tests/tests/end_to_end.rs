//! Full-platform integration test: the GamerQueen lifecycle from CSV
//! upload to referral audit, asserting cross-crate invariants along
//! the way.

use symphony_ads::{Ad, Keyword, MatchType};
use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_core::SocialCanvasHost;
use symphony_designer::{Canvas, Element};
use symphony_services::{CallPolicy, LatencyModel, PricingService};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_web::{Corpus, CorpusConfig, SearchConfig, SearchEngine, Topic, Vertical};

const INVENTORY: &str = "\
title,genre,description,detail_url,price
Galactic Raiders,shooter,a fast space shooter with lasers,http://gamerqueen.example.com/games/galactic-raiders,49.99
Farm Story,sim,calm farming with crops and animals,http://gamerqueen.example.com/games/farm-story,19.99
";

fn build_world() -> (Platform, symphony_core::AppId) {
    let corpus = Corpus::generate(
        &CorpusConfig {
            sites_per_topic: 2,
            pages_per_site: 4,
            ..CorpusConfig::default()
        }
        .with_entities(Topic::Games, ["Galactic Raiders", "Farm Story"]),
    );
    let mut platform = Platform::new(SearchEngine::new(corpus));
    let (tenant, key) = platform.create_tenant("GamerQueen");
    let (table, _) = ingest("inventory", INVENTORY, DataFormat::Csv).unwrap();
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
        .unwrap();
    platform.upload_table(tenant, &key, indexed).unwrap();
    platform
        .transport_mut()
        .register("pricing", Box::new(PricingService), LatencyModel::fast());
    let adv = platform.ads_mut().add_advertiser("MegaGames");
    platform.ads_mut().add_campaign(
        adv,
        "games",
        1_000,
        vec![Keyword::new("shooter", MatchType::Broad, 50)],
        Ad {
            title: "Mega Sale".into(),
            display_url: "mega.example.com".into(),
            target_url: "http://mega.example.com".into(),
            text: "deals".into(),
        },
        0.9,
    );

    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas.insert(root, Element::search_box("Search…")).unwrap();
    let item = Element::column(vec![
        Element::link_field("detail_url", "{title}"),
        Element::text("{description}"),
        Element::result_list(
            "reviews",
            Element::column(vec![
                Element::link_field("url", "{title}"),
                Element::rich_text("{snippet}"),
            ]),
            2,
        ),
        Element::result_list("pricing", Element::text("${price}"), 1),
    ]);
    canvas
        .insert(root, Element::result_list("inventory", item, 10))
        .unwrap();
    canvas
        .insert(
            root,
            Element::result_list("sponsored", symphony_designer::template::ad_layout(), 1),
        )
        .unwrap();

    let config = AppBuilder::new("GamerQueen", tenant)
        .layout(canvas)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .source(
            "reviews",
            DataSourceDef::WebVertical {
                vertical: Vertical::Web,
                config: SearchConfig::default().restrict_to([
                    "gamespot.com",
                    "ign.com",
                    "teamxbox.com",
                ]),
            },
        )
        .source(
            "pricing",
            DataSourceDef::Service {
                endpoint: "pricing".into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy: CallPolicy::default(),
            },
        )
        .source("sponsored", DataSourceDef::Ads { slots: 1 })
        .supplemental("reviews", "{title} review")
        .supplemental("pricing", "{title}")
        .build()
        .unwrap();
    let id = platform.register_app(config).unwrap();
    platform.publish(id).unwrap();
    (platform, id)
}

#[test]
fn query_merges_all_four_source_kinds() {
    let (platform, id) = build_world();
    let resp = platform.query(id, "space shooter").unwrap();
    // Proprietary result.
    assert!(resp.html.contains("Galactic Raiders"));
    // Supplemental review link from a designated site.
    assert!(
        resp.html.contains("gamespot.com")
            || resp.html.contains("ign.com")
            || resp.html.contains("teamxbox.com"),
        "no review-site link in: {}",
        resp.html
    );
    // Pricing service value.
    assert!(resp.html.contains('$'));
    // Sponsored slot.
    assert!(resp.html.contains("Sponsored"));
    // Sources per impression origin.
    let sources: std::collections::HashSet<&str> =
        resp.impressions.iter().map(|i| i.source.as_str()).collect();
    for s in ["inventory", "reviews", "pricing", "sponsored"] {
        assert!(sources.contains(s), "missing impressions from {s}");
    }
}

#[test]
fn supplemental_queries_are_driven_by_primary_fields() {
    let (platform, id) = build_world();
    let resp = platform.query(id, "farming").unwrap();
    let fanout = resp.trace.find("supplemental fan-out").unwrap();
    assert!(fanout
        .children
        .iter()
        .any(|c| c.detail.contains("Farm Story review")));
    // The other game did not match; no fan-out for it.
    assert!(!fanout
        .children
        .iter()
        .any(|c| c.detail.contains("Galactic Raiders")));
}

#[test]
fn ad_click_credits_publisher_and_ledger_matches_summary() {
    let (platform, id) = build_world();
    let resp = platform.query(id, "space shooter").unwrap();
    let ad = resp
        .impressions
        .iter()
        .find(|i| i.is_ad)
        .expect("an ad rendered")
        .clone();
    let credited = platform.click(id, "space shooter", &ad).unwrap().unwrap();
    assert!(credited > 0);
    assert_eq!(
        platform.publisher_earnings_cents(id).unwrap(),
        credited as u64
    );
    let summary = platform.traffic_summary(id).unwrap();
    assert_eq!(summary.ad_clicks, 1);
    // Ledger consistency: platform cut + publisher share == campaign
    // spend.
    let ledger = platform.ads().ledger();
    assert_eq!(
        ledger.platform_cut_cents() + credited as u64,
        ledger.campaign_spend_cents(symphony_ads::CampaignId(0))
    );
}

#[test]
fn audit_csv_reparses_through_store_parser() {
    let (platform, id) = build_world();
    let resp = platform.query(id, "space shooter").unwrap();
    for imp in resp.impressions.iter().take(3) {
        platform.click(id, "space shooter", imp).unwrap();
    }
    let csv = platform.referral_audit_csv(id).unwrap();
    let parsed = symphony_store::formats::csv::parse_delimited(&csv, ',').unwrap();
    assert_eq!(
        parsed.names,
        vec!["at_ms", "query", "source", "url", "is_ad"]
    );
    assert_eq!(parsed.rows.len(), 3);
}

#[test]
fn social_publish_roundtrip() {
    let (platform, id) = build_world();
    let mut host = SocialCanvasHost::new();
    let url = host.install(platform.social_manifest(id).unwrap()).unwrap();
    assert!(url.contains("/apps/0/canvas"));
    assert_eq!(host.installed_apps(), vec!["GamerQueen"]);
}

#[test]
fn cache_serves_identical_html_within_ttl() {
    let (platform, id) = build_world();
    let a = platform.query(id, "space shooter").unwrap();
    let b = platform.query(id, "SPACE   shooter").unwrap();
    assert!(b.trace.cache_hit, "normalized query should hit");
    assert_eq!(a.html, b.html);
}

#[test]
fn unpublish_clears_cache_and_blocks_queries() {
    let (mut platform, id) = build_world();
    platform.query(id, "space shooter").unwrap();
    platform.unpublish(id).unwrap();
    assert!(platform.query(id, "space shooter").is_err());
    platform.publish(id).unwrap();
    let resp = platform.query(id, "space shooter").unwrap();
    assert!(!resp.trace.cache_hit, "cache was cleared on unpublish");
}

#[test]
fn tenant_data_is_isolated_between_apps() {
    let (mut platform, _id) = build_world();
    // A second tenant registers an app pointing at a table name that
    // only exists in the *first* tenant's space.
    let (tenant2, _key2) = platform.create_tenant("Imposter");
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(
            root,
            Element::result_list("inventory", Element::text("{title}"), 5),
        )
        .unwrap();
    let config = AppBuilder::new("Imposter", tenant2)
        .layout(canvas)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .build()
        .unwrap();
    let id2 = platform.register_app(config).unwrap();
    platform.publish(id2).unwrap();
    let resp = platform.query(id2, "space shooter").unwrap();
    // The imposter's space has no "inventory" table: zero results, and
    // definitely not GamerQueen's data.
    assert!(!resp.html.contains("Galactic Raiders"));
    assert!(resp.impressions.is_empty());
}
