//! Integration tests for the paper's §IV future-work extensions:
//! structured constraints, supplemental-site recommendation,
//! click-feedback relevance signals, and application composition.

use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_core::{recommend_sites, PlatformError};
use symphony_designer::{Canvas, Element};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::{CmpOp, Filter, IndexedTable, Value};
use symphony_web::{
    generate_logs, Corpus, CorpusConfig, LogConfig, SearchConfig, SearchEngine, Topic, Vertical,
};

const INVENTORY: &str = "\
title,genre,description,price,stock
Galactic Raiders,shooter,a fast space shooter,49.99,3
Laser Golf,sports,golf with lasers a silly shooter,9.99,0
";

fn corpus() -> Corpus {
    Corpus::generate(
        &CorpusConfig {
            sites_per_topic: 2,
            pages_per_site: 4,
            ..CorpusConfig::default()
        }
        .with_entities(Topic::Games, ["Galactic Raiders", "Laser Golf"]),
    )
}

fn inventory_table() -> IndexedTable {
    let (table, _) = ingest("inventory", INVENTORY, DataFormat::Csv).unwrap();
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("description", 1.0)])
        .unwrap();
    indexed
}

fn simple_layout(source: &str) -> Canvas {
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(
            root,
            Element::result_list(source, Element::text("{title}"), 10),
        )
        .unwrap();
    canvas
}

#[test]
fn structured_constraint_hides_out_of_stock_items() {
    let mut platform = Platform::new(SearchEngine::new(corpus()));
    let (tenant, key) = platform.create_tenant("Shop");
    let indexed = inventory_table();
    let stock_col = indexed.table().schema().col("stock").unwrap();
    platform.upload_table(tenant, &key, indexed).unwrap();

    // Both games match "shooter"; the constrained app only shows
    // in-stock items.
    let unconstrained = AppBuilder::new("All", tenant)
        .layout(simple_layout("inventory"))
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .build()
        .unwrap();
    let constrained = AppBuilder::new("InStock", tenant)
        .layout(simple_layout("inventory"))
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .constraint(
            "inventory",
            Filter::cmp(stock_col, CmpOp::Gt, Value::Int(0)),
        )
        .build()
        .unwrap();
    let a = platform.register_app(unconstrained).unwrap();
    let b = platform.register_app(constrained).unwrap();
    platform.publish(a).unwrap();
    platform.publish(b).unwrap();

    let all = platform.query(a, "shooter").unwrap();
    let in_stock = platform.query(b, "shooter").unwrap();
    assert_eq!(all.impressions.len(), 2);
    assert_eq!(in_stock.impressions.len(), 1);
    assert!(in_stock.html.contains("Galactic Raiders"));
    assert!(!in_stock.html.contains("Laser Golf"));
}

#[test]
fn recommendation_recovers_the_hand_picked_review_sites() {
    let engine = SearchEngine::new(corpus());
    let recs = recommend_sites(&engine, &inventory_table(), "title", 8, 2);
    let domains: Vec<&str> = recs.iter().take(3).map(|r| r.domain.as_str()).collect();
    for site in ["gamespot.com", "ign.com", "teamxbox.com"] {
        assert!(domains.contains(&site), "missing {site} in {domains:?}");
    }
}

#[test]
fn click_feedback_flows_from_logs_into_engine_ranking() {
    let mut engine = SearchEngine::new(corpus());
    let logs = generate_logs(
        &engine,
        &LogConfig {
            sessions: 200,
            topics: vec![Topic::Games],
            ..LogConfig::default()
        },
    );
    assert!(!logs.is_empty());
    engine.apply_click_feedback(&logs, 0.8);
    assert!(engine.click_boosted_urls() > 0);
    // The engine still answers queries sensibly after boosting.
    let rs = engine.search(
        Vertical::Web,
        "Galactic Raiders review",
        &SearchConfig::default(),
        5,
    );
    assert!(!rs.is_empty());
    for w in rs.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
}

#[test]
fn composed_app_serves_child_results_through_parent() {
    let mut platform = Platform::new(SearchEngine::new(corpus()));
    let (tenant, key) = platform.create_tenant("Mall");
    platform
        .upload_table(tenant, &key, inventory_table())
        .unwrap();

    // Child: the plain inventory app.
    let child_cfg = AppBuilder::new("GamerQueen", tenant)
        .layout(simple_layout("inventory"))
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .build()
        .unwrap();
    let child = platform.register_app(child_cfg).unwrap();
    platform.publish(child).unwrap();

    // Parent: a "mall" app whose only source is the child app.
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(
            root,
            Element::result_list(
                "gamerqueen",
                Element::column(vec![
                    Element::link_field("url", "{title}"),
                    Element::text("from {app}"),
                ]),
                5,
            ),
        )
        .unwrap();
    let parent_cfg = AppBuilder::new("Mall", tenant)
        .layout(canvas)
        .source("gamerqueen", DataSourceDef::ComposedApp { app: child })
        .build()
        .unwrap();
    let parent = platform.register_app(parent_cfg).unwrap();
    platform.publish(parent).unwrap();

    let resp = platform.query(parent, "shooter").unwrap();
    assert!(resp.html.contains("Galactic Raiders"), "{}", resp.html);
    assert!(resp.html.contains("from GamerQueen"));
    // The child's virtual time is accounted in the parent's stage.
    let stage = resp.trace.find("primary: gamerqueen").unwrap();
    assert!(stage.virtual_ms > 0);
    // Both apps logged traffic.
    assert!(platform.traffic_summary(parent).unwrap().impressions > 0);
    assert!(platform.traffic_summary(child).unwrap().impressions > 0);
}

#[test]
fn composition_cycles_terminate_gracefully() {
    let mut platform = Platform::new(SearchEngine::new(corpus()));
    let (tenant, key) = platform.create_tenant("T");
    platform
        .upload_table(tenant, &key, inventory_table())
        .unwrap();

    // App 0 will compose app 1; app 1 composes app 0 (a cycle).
    // Register app 0 first with a placeholder source pointing at the
    // future app 1 (id 1), then app 1 pointing back at app 0.
    let cfg_a = AppBuilder::new("A", tenant)
        .layout(simple_layout("b"))
        .source(
            "b",
            DataSourceDef::ComposedApp {
                app: symphony_core::AppId(1),
            },
        )
        .build()
        .unwrap();
    let a = platform.register_app(cfg_a).unwrap();
    let cfg_b = AppBuilder::new("B", tenant)
        .layout(simple_layout("a"))
        .source("a", DataSourceDef::ComposedApp { app: a })
        .build()
        .unwrap();
    let b = platform.register_app(cfg_b).unwrap();
    platform.publish(a).unwrap();
    platform.publish(b).unwrap();

    // Terminates (depth limit) and serves an empty-but-valid page.
    let resp = platform.query(a, "anything").unwrap();
    assert!(resp.trace.total_ms > 0);
    let _ = b;
}

#[test]
fn depth_limited_composition_does_not_poison_the_child_cache() {
    let mut platform = Platform::new(SearchEngine::new(corpus()));
    let (tenant, key) = platform.create_tenant("T");
    platform
        .upload_table(tenant, &key, inventory_table())
        .unwrap();

    let child_cfg = AppBuilder::new("Child", tenant)
        .layout(simple_layout("inventory"))
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .build()
        .unwrap();
    let child = platform.register_app(child_cfg).unwrap();
    platform.publish(child).unwrap();
    let mid_cfg = AppBuilder::new("Mid", tenant)
        .layout(simple_layout("c"))
        .source("c", DataSourceDef::ComposedApp { app: child })
        .build()
        .unwrap();
    let mid = platform.register_app(mid_cfg).unwrap();
    platform.publish(mid).unwrap();
    let top_cfg = AppBuilder::new("Top", tenant)
        .layout(simple_layout("m"))
        .source("m", DataSourceDef::ComposedApp { app: mid })
        .build()
        .unwrap();
    let top = platform.register_app(top_cfg).unwrap();
    platform.publish(top).unwrap();

    // Querying Top runs Mid at depth 1, where Mid's own composed
    // source hits the depth limit: Mid computes — and caches — an
    // empty depth-limited rendering for this query string.
    let via_top = platform.query(top, "shooter").unwrap();
    assert!(via_top.impressions.is_empty());

    // Regression: responses computed under parent overrides are cached
    // under an override-scoped key, so a direct query of Mid must not
    // be served the depth-limited rendering.
    let direct = platform.query(mid, "shooter").unwrap();
    assert!(!direct.trace.cache_hit, "served the poisoned entry");
    assert!(!direct.trace.degraded);
    assert!(direct.html.contains("Galactic Raiders"), "{}", direct.html);

    // Both renderings now coexist in the cache, each behind its own
    // key: the composed path stays depth-limited while direct queries
    // keep serving the real results. (The direct path re-executes once
    // more because its override key covers the child outcome, which
    // changes shape when the child starts answering from its own
    // cache; from then on the key is stable and hits.)
    let via_top2 = platform.query(top, "shooter").unwrap();
    assert!(via_top2.impressions.is_empty());
    let direct2 = platform.query(mid, "shooter").unwrap();
    assert!(direct2.html.contains("Galactic Raiders"));
    let direct3 = platform.query(mid, "shooter").unwrap();
    assert!(direct3.trace.cache_hit);
    assert!(direct3.html.contains("Galactic Raiders"));
}

#[test]
fn composed_source_cannot_be_supplemental() {
    let mut platform = Platform::new(SearchEngine::new(corpus()));
    let (tenant, key) = platform.create_tenant("T");
    platform
        .upload_table(tenant, &key, inventory_table())
        .unwrap();
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    let item = Element::column(vec![
        Element::text("{title}"),
        Element::result_list("child", Element::text("{title}"), 2),
    ]);
    canvas
        .insert(root, Element::result_list("inventory", item, 5))
        .unwrap();
    let err = AppBuilder::new("Bad", tenant)
        .layout(canvas)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .source(
            "child",
            DataSourceDef::ComposedApp {
                app: symphony_core::AppId(0),
            },
        )
        .supplemental("child", "{title}")
        .build()
        .unwrap_err();
    assert!(matches!(err, PlatformError::InvalidConfig(_)));
}

#[test]
fn unpublished_child_degrades_softly() {
    let mut platform = Platform::new(SearchEngine::new(corpus()));
    let (tenant, key) = platform.create_tenant("T");
    platform
        .upload_table(tenant, &key, inventory_table())
        .unwrap();
    let child_cfg = AppBuilder::new("Child", tenant)
        .layout(simple_layout("inventory"))
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .build()
        .unwrap();
    let child = platform.register_app(child_cfg).unwrap(); // never published
    let parent_cfg = AppBuilder::new("Parent", tenant)
        .layout(simple_layout("c"))
        .source("c", DataSourceDef::ComposedApp { app: child })
        .build()
        .unwrap();
    let parent = platform.register_app(parent_cfg).unwrap();
    platform.publish(parent).unwrap();
    let resp = platform.query(parent, "shooter").unwrap();
    let stage = resp.trace.find("primary: c").unwrap();
    assert!(stage.detail.contains("not published"), "{}", stage.detail);
    assert!(resp.impressions.is_empty());
}
