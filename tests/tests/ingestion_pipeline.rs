//! Ingestion integration: every upload format yields an equivalent
//! searchable table; crawling the synthetic web feeds the store; the
//! tenant boundary holds.

use symphony_store::ingest::{crawl, ingest, ingest_upload, DataFormat, UploadMethod};
use symphony_store::{FieldType, IndexedTable, Store, StoreError};
use symphony_text::Query;
use symphony_web::{Corpus, CorpusConfig, CorpusFetcher};

/// The same two-game inventory in every supported format.
const AS_CSV: &str = "title,price\nGalactic Raiders,49.99\nFarm Story,19.99\n";
const AS_TSV: &str = "title\tprice\nGalactic Raiders\t49.99\nFarm Story\t19.99\n";
const AS_JSON: &str =
    r#"[{"title":"Galactic Raiders","price":49.99},{"title":"Farm Story","price":19.99}]"#;
const AS_XML: &str = "<inv>\
    <game><title>Galactic Raiders</title><price>49.99</price></game>\
    <game><title>Farm Story</title><price>19.99</price></game></inv>";
const AS_WORKSHEET: &str =
    "## sheet: Inventory\ntitle\tprice\nGalactic Raiders\t49.99\nFarm Story\t19.99\n";

#[test]
fn all_formats_produce_equivalent_tables() {
    let inputs = [
        (AS_CSV, DataFormat::Csv),
        (AS_TSV, DataFormat::Tsv),
        (AS_JSON, DataFormat::Json),
        (AS_XML, DataFormat::Xml),
        (AS_WORKSHEET, DataFormat::Worksheet),
    ];
    for (content, format) in inputs {
        let (table, report) = ingest("inv", content, format).unwrap();
        assert_eq!(report.rows, 2, "{format:?}");
        let title_col = table.schema().col("title").unwrap();
        let price_col = table.schema().col("price").unwrap();
        assert_eq!(table.schema().fields()[title_col].ty, FieldType::Text);
        assert_eq!(
            table.schema().fields()[price_col].ty,
            FieldType::Float,
            "{format:?}"
        );
        let titles: Vec<String> = table
            .iter()
            .map(|(_, r)| r.get(title_col).display_string())
            .collect();
        assert_eq!(titles, vec!["Galactic Raiders", "Farm Story"], "{format:?}");
    }
}

#[test]
fn every_format_is_searchable_after_ingest() {
    for (content, format) in [
        (AS_CSV, DataFormat::Csv),
        (AS_JSON, DataFormat::Json),
        (AS_XML, DataFormat::Xml),
        (AS_WORKSHEET, DataFormat::Worksheet),
    ] {
        let (table, _) = ingest("inv", content, format).unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed.enable_fulltext(&[("title", 1.0)]).unwrap();
        let hits = indexed.search(&Query::parse("raiders"), 5).unwrap();
        assert_eq!(hits.len(), 1, "{format:?}");
    }
}

#[test]
fn upload_methods_dispatch_by_filename() {
    for (filename, payload) in [
        ("inv.csv", AS_CSV),
        ("inv.tsv", AS_TSV),
        ("inv.json", AS_JSON),
        ("inv.xml", AS_XML),
        ("inv.xls", AS_WORKSHEET),
    ] {
        let method = UploadMethod::Http {
            filename: filename.into(),
        };
        let (table, _) = ingest_upload("inv", &method, Some(payload), None, None).unwrap();
        assert_eq!(table.len(), 2, "{filename}");
    }
}

#[test]
fn crawl_of_synthetic_web_is_searchable() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites_per_topic: 2,
        pages_per_site: 5,
        ..CorpusConfig::default()
    });
    let fetcher = CorpusFetcher::new(&corpus);
    let seed = corpus.pages[0].url.clone();
    let (table, report) = crawl("pages", &seed, 30, &fetcher);
    assert!(table.len() >= 10, "crawl should expand: {report:?}");
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("body", 1.0)])
        .unwrap();
    // The crawled pages carry topical vocabulary; some topical word
    // must match.
    let any_hits = ["game", "wine", "movie", "health", "travel", "report"]
        .iter()
        .any(|w| !indexed.search(&Query::parse(w), 5).unwrap().is_empty());
    assert!(any_hits);
}

#[test]
fn tenant_keys_guard_spaces() {
    let mut store = Store::new();
    let (t1, k1) = store.create_tenant("A");
    let (t2, k2) = store.create_tenant("B");
    let (table, _) = ingest("inv", AS_CSV, DataFormat::Csv).unwrap();
    store
        .space_mut(t1, &k1)
        .unwrap()
        .put_table(IndexedTable::new(table));
    // B's key cannot open A's space.
    assert_eq!(store.space(t1, &k2).unwrap_err(), StoreError::AccessDenied);
    // A's data is invisible from B's space.
    assert!(store.space(t2, &k2).unwrap().table("inv").is_err());
    // A sees its own table.
    assert!(store.space(t1, &k1).unwrap().table("inv").is_ok());
}

#[test]
fn dirty_rows_never_abort_ingestion() {
    let dirty = "title,price,stock\nOk Game,49.99,3\nBad Price,not-a-number,\n,,\nTrailing,1.5,2\n";
    let (table, report) = ingest("inv", dirty, DataFormat::Csv).unwrap();
    assert_eq!(report.rows, 4);
    // The unparseable price survives as text, not as a dropped row.
    let price_col = table.schema().col("price").unwrap();
    let prices: Vec<String> = table
        .iter()
        .map(|(_, r)| r.get(price_col).display_string())
        .collect();
    assert!(prices.contains(&"not-a-number".to_string()));
}

#[test]
fn rss_feed_upload_through_fetcher_trait() {
    struct Host;
    impl symphony_store::PageFetcher for Host {
        fn fetch(&self, url: &str) -> Option<symphony_store::FetchedPage> {
            (url == "http://feeds.example.com/games").then(|| symphony_store::FetchedPage {
                url: url.into(),
                title: String::new(),
                body: "<rss><channel><title>Games</title>\
                       <item><title>Galactic Raiders ships</title>\
                       <link>http://news.example.com/gr</link>\
                       <pubDate>Tue, 03 Nov 2009 12:30:00 GMT</pubDate></item>\
                       </channel></rss>"
                    .into(),
                links: vec![],
            })
        }
    }
    let method = UploadMethod::RssFeed {
        url: "http://feeds.example.com/games".into(),
    };
    let (table, _) = ingest_upload("feed", &method, None, None, Some(&Host)).unwrap();
    assert_eq!(table.len(), 1);
    // pubDate was sniffed into a DateTime column.
    let col = table.schema().col("pubDate").unwrap();
    assert_eq!(table.schema().fields()[col].ty, FieldType::DateTime);
}
