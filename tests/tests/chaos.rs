//! Chaos suite: planned faults on the virtual clock, exact assertions.
//!
//! Every scenario here is fully deterministic — fault windows are
//! scheduled in virtual time and the resilient call path draws latency
//! from a pure hash of `(seed, endpoint, request, now, attempt)` — so
//! the tests assert degradation behaviour down to the millisecond:
//! deadlines held, breaker lifecycles, degraded slot rendering, and
//! bit-identical reruns per seed.
//!
//! The CI seed grid sets `CHAOS_SEED`; locally the suite runs over a
//! small built-in grid.

use symphony_core::app::{AppBuilder, ResiliencePolicy};
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_core::{AppId, QueryResponse};
use symphony_designer::{Canvas, Element};
use symphony_services::{
    BreakerConfig, BreakerState, CallPolicy, FaultPlan, LatencyModel, PricingService,
};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_web::{Corpus, CorpusConfig, SearchEngine};

const CSV: &str = "title,description\nGalactic Raiders,a fast space shooter\n";

/// Seeds the suite sweeps. CI overrides via `CHAOS_SEED` to fan the
/// grid out across jobs.
fn seed_grid() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 7, 42],
    }
}

/// One app over a pricing service endpoint with the given call policy,
/// breaker tuning, resilience policy, and fault plan.
fn build_platform(
    seed: u64,
    latency: LatencyModel,
    policy: CallPolicy,
    breakers: BreakerConfig,
    resilience: ResiliencePolicy,
    faults: FaultPlan,
) -> (Platform, AppId) {
    let corpus = Corpus::generate(&CorpusConfig {
        sites_per_topic: 1,
        pages_per_site: 2,
        ..CorpusConfig::default()
    });
    let mut platform = Platform::new(SearchEngine::new(corpus))
        .with_transport_seed(seed)
        .with_breaker_config(breakers);
    platform
        .transport_mut()
        .register("pricing", Box::new(PricingService), latency);
    platform.transport_mut().set_fault_plan(faults);
    let (tenant, key) = platform.create_tenant("T");
    let (table, _) = ingest("inventory", CSV, DataFormat::Csv).unwrap();
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("description", 1.0)])
        .unwrap();
    platform.upload_table(tenant, &key, indexed).unwrap();

    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    let item = Element::column(vec![
        Element::text("{title}"),
        Element::result_list("svc", Element::text("price: {price}"), 1),
    ]);
    canvas
        .insert(root, Element::result_list("inventory", item, 5))
        .unwrap();
    let config = AppBuilder::new("T", tenant)
        .layout(canvas)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .source(
            "svc",
            DataSourceDef::Service {
                endpoint: "pricing".into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy,
            },
        )
        .supplemental("svc", "{title}")
        .resilience(resilience)
        .build()
        .unwrap();
    let id = platform.register_app(config).unwrap();
    platform.publish(id).unwrap();
    (platform, id)
}

/// The acceptance scenario: a planned 2-second outage of the pricing
/// endpoint. The deadline must hold, the primary must render with a
/// degraded supplemental slot, and the breaker must walk
/// Closed → Open → HalfOpen → Closed as the outage passes.
#[test]
fn outage_holds_deadline_and_breaker_walks_full_cycle() {
    let (platform, id) = build_platform(
        0xD1CE,
        LatencyModel {
            base_ms: 10,
            jitter_ms: 0,
            failure_rate: 0.0,
        },
        CallPolicy {
            timeout_ms: 40,
            retries: 1,
            ..CallPolicy::default()
        },
        BreakerConfig {
            failure_threshold: 2,
            open_ms: 1_000,
            half_open_successes: 1,
        },
        ResiliencePolicy {
            query_deadline_ms: 100,
            ..Default::default()
        },
        FaultPlan::new().outage("pricing", 0, 2_000),
    );
    assert_eq!(platform.breaker_state("pricing"), BreakerState::Closed);

    // Query 1 lands inside the outage: both attempts burn the 40-ms
    // timeout and trip the breaker, but the 100-ms deadline holds and
    // the primary result renders.
    let r1 = platform.query(id, "galactic").unwrap();
    assert!(r1.html.contains("Galactic Raiders"), "primary lost");
    assert!(r1.trace.degraded);
    assert_eq!(r1.trace.error_count, 1);
    // receive(1) + inventory(5) + 2 × 40ms timeouts + merge(2).
    assert_eq!(r1.virtual_ms, 88);
    assert!(r1.virtual_ms <= 100, "deadline blown");
    let slot = r1.trace.find("supplemental: svc").unwrap();
    assert!(slot.detail.contains("timed out"), "{}", slot.detail);
    assert_eq!(platform.breaker_state("pricing"), BreakerState::Open);

    // Query 2: the open circuit fast-fails the fetch in ~0 virtual ms.
    let r2 = platform.query(id, "raiders").unwrap();
    assert!(r2.html.contains("Galactic Raiders"));
    assert!(r2.trace.degraded);
    // receive(1) + inventory(5) + fast-fail(0) + merge(2).
    assert_eq!(r2.virtual_ms, 8);
    let slot = r2.trace.find("supplemental: svc").unwrap();
    assert_eq!(slot.virtual_ms, 0);
    assert!(slot.detail.contains("circuit open"), "{}", slot.detail);

    // Past the outage and the cool-down, the breaker half-opens...
    platform.advance_clock(2_000);
    assert_eq!(platform.breaker_state("pricing"), BreakerState::HalfOpen);

    // ...and the probe query succeeds and closes it again.
    let r3 = platform.query(id, "space").unwrap();
    assert!(!r3.trace.degraded);
    assert!(r3.html.contains("price:"), "{}", r3.html);
    // receive(1) + inventory(5) + one clean 10-ms call + merge(2).
    assert_eq!(r3.virtual_ms, 18);
    assert_eq!(platform.breaker_state("pricing"), BreakerState::Closed);

    // The degraded-query error rate reflects the incident.
    let summary = platform.traffic_summary(id).unwrap();
    assert_eq!(summary.queries, 3);
    assert_eq!(summary.degraded_queries, 2);
    assert!((summary.error_rate() - 2.0 / 3.0).abs() < 1e-9);
}

/// A hedged request sidesteps a latency spike that covers only the
/// primary attempt's launch instant.
#[test]
fn hedging_sidesteps_a_latency_spike() {
    let scenario = |hedge: Option<u32>| -> std::sync::Arc<QueryResponse> {
        let (platform, id) = build_platform(
            0xD1CE,
            LatencyModel {
                base_ms: 20,
                jitter_ms: 0,
                failure_rate: 0.0,
            },
            CallPolicy {
                timeout_ms: 400,
                retries: 1,
                hedge_after_ms: hedge,
                ..CallPolicy::default()
            },
            BreakerConfig::default(),
            ResiliencePolicy::default(),
            // The fetch launches at virtual t=6; the spike covers it.
            FaultPlan::new().latency_spike("pricing", 0, 7, 400),
        );
        platform.query(id, "galactic").unwrap()
    };
    // Hedged: the duplicate launched 15 ms later dodges the window and
    // answers at 15 + 20 = 35 ms.
    let hedged = scenario(Some(15));
    assert!(!hedged.trace.degraded);
    assert_eq!(
        hedged.trace.find("supplemental: svc").unwrap().virtual_ms,
        35
    );
    // Naive: the spiked primary (420 ms) blows the 400-ms timeout, and
    // only the retry gets the calm 20-ms draw.
    let naive = scenario(None);
    assert!(!naive.trace.degraded);
    assert_eq!(
        naive.trace.find("supplemental: svc").unwrap().virtual_ms,
        420
    );
    assert!(hedged.virtual_ms < naive.virtual_ms);
}

/// A fault burst degrades queries inside its window and heals after.
#[test]
fn fault_burst_window_degrades_then_recovers() {
    for seed in seed_grid() {
        let (platform, id) = build_platform(
            seed,
            LatencyModel {
                base_ms: 10,
                jitter_ms: 0,
                failure_rate: 0.0,
            },
            CallPolicy {
                timeout_ms: 40,
                retries: 0,
                ..CallPolicy::default()
            },
            // Disabled breaker: the window itself must end the pain.
            BreakerConfig::disabled(),
            ResiliencePolicy::default(),
            FaultPlan::new().fault_burst("pricing", 0, 1_000, 1.0),
        );
        let inside = platform.query(id, "galactic").unwrap();
        assert!(inside.trace.degraded, "seed {seed}: burst had no effect");
        assert!(inside.html.contains("Galactic Raiders"));
        platform.advance_clock(1_000);
        let outside = platform.query(id, "raiders").unwrap();
        assert!(!outside.trace.degraded, "seed {seed}: burst did not heal");
        assert!(outside.html.contains("price:"));
    }
}

/// A degraded response must not pin the outage into the response
/// cache for the full TTL: it is cached on a short fuse, so once the
/// fault window passes the next query re-executes and serves the
/// healthy rendering.
#[test]
fn degraded_responses_age_out_fast_and_recover_after_outage() {
    let (platform, id) = build_platform(
        0xD1CE,
        LatencyModel {
            base_ms: 10,
            jitter_ms: 0,
            failure_rate: 0.0,
        },
        CallPolicy {
            timeout_ms: 40,
            retries: 0,
            ..CallPolicy::default()
        },
        // Disabled breaker: recovery must come from cache TTLs alone.
        BreakerConfig::disabled(),
        ResiliencePolicy::default(),
        FaultPlan::new().outage("pricing", 0, 1_000),
    );

    // Inside the outage: degraded, and cached only on the short fuse.
    let r1 = platform.query(id, "galactic").unwrap();
    assert!(r1.trace.degraded);
    assert!(!r1.html.contains("price:"));

    // Immediately after, the degraded response is still served from
    // the cache — short TTL, not zero.
    let r2 = platform.query(id, "galactic").unwrap();
    assert!(r2.trace.cache_hit);
    assert!(r2.trace.degraded);

    // Past the outage and the short TTL, the same query re-executes —
    // a full-TTL degraded entry would still be serving the outage here.
    platform.advance_clock(1_000);
    let r3 = platform.query(id, "galactic").unwrap();
    assert!(!r3.trace.cache_hit, "degraded entry outlived its short TTL");
    assert!(!r3.trace.degraded);
    assert!(r3.html.contains("price:"), "{}", r3.html);

    // And the healthy response is cached at the full TTL again.
    let r4 = platform.query(id, "galactic").unwrap();
    assert!(r4.trace.cache_hit);
    assert!(!r4.trace.degraded);
}

/// The whole outage scenario replays bit-identically: same seed, same
/// HTML, same rendered traces, same virtual timings — even with
/// latency jitter and a parallel fan-out in play.
#[test]
fn scenarios_replay_identically_per_seed() {
    let run = |seed: u64| -> Vec<String> {
        let (platform, id) = build_platform(
            seed,
            LatencyModel {
                base_ms: 10,
                jitter_ms: 25,
                failure_rate: 0.1,
            },
            CallPolicy {
                timeout_ms: 60,
                retries: 2,
                backoff_base_ms: 10,
                backoff_cap_ms: 100,
                hedge_after_ms: Some(30),
            },
            BreakerConfig {
                failure_threshold: 2,
                open_ms: 500,
                half_open_successes: 1,
            },
            ResiliencePolicy {
                query_deadline_ms: 400,
                per_source_budget_ms: 300,
                max_total_retries: 4,
            },
            FaultPlan::new()
                .outage("pricing", 100, 600)
                .latency_spike("pricing", 600, 900, 35)
                .slow_ramp("pricing", 900, 1_500, 80),
        );
        let mut log = Vec::new();
        for q in ["galactic", "raiders", "space", "shooter", "fast"] {
            let resp = platform.query(id, q).unwrap();
            assert!(
                resp.virtual_ms <= 400,
                "seed {seed}: deadline blown on {q:?}"
            );
            log.push(resp.trace.render());
            log.push(resp.html.clone());
            platform.advance_clock(150);
        }
        log
    };
    for seed in seed_grid() {
        assert_eq!(run(seed), run(seed), "seed {seed} replay diverged");
    }
}

/// Overload × resilience: a flood over the admission rate is shed with
/// cheap degraded shells, and shedding is invisible to every other
/// protection layer — breakers never trip, no source executes, nothing
/// lands in the L2 negative cache or the L1 response cache — and the
/// tenant recovers within one refill window of the token bucket.
#[test]
fn shed_queries_leave_breakers_and_caches_untouched() {
    for seed in seed_grid() {
        let (mut platform, id) = build_platform(
            seed,
            LatencyModel {
                base_ms: 10,
                jitter_ms: 0,
                failure_rate: 0.0,
            },
            CallPolicy {
                timeout_ms: 40,
                retries: 0,
                ..CallPolicy::default()
            },
            // A hair-trigger breaker: if sheds were (wrongly) reported
            // as endpoint failures, two of them would open it.
            BreakerConfig {
                failure_threshold: 2,
                open_ms: 1_000,
                half_open_successes: 1,
            },
            ResiliencePolicy::default(),
            FaultPlan::new(),
        );
        // Re-register the app with a 1-query/s admission rate. The
        // queries below use distinct texts, so the L1 cache never
        // hides the admission path.
        let config = platform.app(id).unwrap().clone();
        let tight = symphony_core::AdmissionPolicy {
            rate_per_sec: 1,
            burst: 1,
            max_concurrency: u32::MAX,
            weight: 1,
        };
        let id = platform
            .register_app({
                let mut c = config;
                c.admission = tight;
                c
            })
            .unwrap();
        platform.publish(id).unwrap();

        // One admitted query drains the burst of 1.
        let first = platform.query(id, "galactic").unwrap();
        assert!(!first.trace.shed, "seed {seed}");
        assert!(!first.trace.degraded, "seed {seed}");
        let executions = platform.source_cache_stats().executions;
        assert_eq!(platform.breaker_state("pricing"), BreakerState::Closed);

        // Flood: every one of these is shed (each SHED_MS advance of
        // the clock refills only 1/1000 of a token at 1/s).
        for i in 0..10 {
            let shed = platform.query(id, &format!("flood {i}")).unwrap();
            assert!(shed.trace.shed, "seed {seed}: flood query {i} admitted");
            assert_eq!(shed.trace.error_count, 0);
            assert!(shed.impressions.is_empty());
        }
        // Invisible to the breaker and to the source layer: no state
        // change, no executions, no negative-cache entries.
        assert_eq!(
            platform.breaker_state("pricing"),
            BreakerState::Closed,
            "seed {seed}: shedding tripped the breaker"
        );
        assert_eq!(
            platform.source_cache_stats().executions,
            executions,
            "seed {seed}: a shed query reached the source layer"
        );
        assert_eq!(
            platform.source_cache_stats().negative_hits,
            0,
            "seed {seed}: shedding poisoned the negative cache"
        );
        let summary = platform.traffic_summary(id).unwrap();
        assert_eq!(summary.shed_queries, 10, "seed {seed}");
        assert_eq!(summary.degraded_queries, 0, "seed {seed}");

        // Recovery within one refill window: at 1 token/s a full token
        // is banked 1000 virtual ms after the last observation, and the
        // next query executes for real — proving the flood left no
        // breaker, L1, or L2 scar behind.
        platform.advance_clock(1_000);
        let healed = platform.query(id, "raiders").unwrap();
        assert!(!healed.trace.shed, "seed {seed}: refill window blown");
        assert!(
            !healed.trace.cache_hit,
            "seed {seed}: a shed response was cached"
        );
        assert!(!healed.trace.degraded, "seed {seed}: flood left a scar");
        assert!(healed.html.contains("price:"), "seed {seed}");
    }
}

/// Deadlines compose with the retry budget: with a tiny budget the
/// query spends nothing on retries, and burned time never exceeds the
/// deadline regardless of seed.
#[test]
fn deadline_and_retry_budget_hold_across_the_seed_grid() {
    for seed in seed_grid() {
        let (platform, id) = build_platform(
            seed,
            LatencyModel {
                base_ms: 30,
                jitter_ms: 50,
                failure_rate: 0.4,
            },
            CallPolicy {
                timeout_ms: 80,
                retries: 3,
                ..CallPolicy::default()
            },
            BreakerConfig::default(),
            ResiliencePolicy {
                query_deadline_ms: 60,
                per_source_budget_ms: 40,
                max_total_retries: 0,
            },
            FaultPlan::new(),
        );
        for q in ["galactic", "raiders", "space"] {
            let resp = platform.query(id, q).unwrap();
            assert!(
                resp.virtual_ms <= 60,
                "seed {seed}: {q:?} took {} ms",
                resp.virtual_ms
            );
            assert!(resp.html.contains("Galactic Raiders"), "primary lost");
            platform.advance_clock(50);
        }
    }
}
