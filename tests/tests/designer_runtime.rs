//! Designer <-> runtime integration: layouts built through drag-and-
//! drop ops render correctly at runtime, the wizard's proposals are
//! executable, and presentation cascades into the response HTML.

use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_designer::canvas::DataSourceCard;
use symphony_designer::ops::{DesignOp, Designer};
use symphony_designer::{render_design_surface, Element, Selector, StyleProps, Stylesheet};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_web::{Corpus, CorpusConfig, SearchEngine};

const CSV: &str = "\
title,detail_url,image_url,description,price
Galactic Raiders,http://shop.example.com/gr,http://shop.example.com/gr.jpg,a fast space shooter,49.99
Farm Story,http://shop.example.com/fs,http://shop.example.com/fs.jpg,calm farming,19.99
";

fn platform_with_inventory() -> (Platform, symphony_store::TenantId) {
    let corpus = Corpus::generate(&CorpusConfig {
        sites_per_topic: 1,
        pages_per_site: 2,
        ..CorpusConfig::default()
    });
    let mut platform = Platform::new(SearchEngine::new(corpus));
    let (tenant, key) = platform.create_tenant("Shop");
    let (table, _) = ingest("inventory", CSV, DataFormat::Csv).unwrap();
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("description", 1.0)])
        .unwrap();
    platform.upload_table(tenant, &key, indexed).unwrap();
    (platform, tenant)
}

fn inventory_card() -> DataSourceCard {
    DataSourceCard {
        name: "inventory".into(),
        category: "proprietary".into(),
        fields: ["title", "detail_url", "image_url", "description", "price"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    }
}

#[test]
fn wizard_layout_runs_end_to_end() {
    let (mut platform, tenant) = platform_with_inventory();
    let mut designer = Designer::new();
    designer.register_source(inventory_card());
    let root = designer.canvas().root_id();
    designer
        .apply(DesignOp::DropSource {
            source: "inventory".into(),
            target: root,
            max_results: 5,
        })
        .unwrap();
    let config = AppBuilder::new("Shop", tenant)
        .layout(designer.into_canvas())
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .build()
        .unwrap();
    let id = platform.register_app(config).unwrap();
    platform.publish(id).unwrap();
    let resp = platform.query(id, "space shooter").unwrap();
    // The wizard bound: link on title->detail_url, image, description,
    // price — all must appear in the final HTML.
    assert!(resp.html.contains("href=\"http://shop.example.com/gr\""));
    assert!(resp.html.contains("src=\"http://shop.example.com/gr.jpg\""));
    assert!(resp.html.contains("a fast space shooter"));
    assert!(resp.html.contains("$49.99"));
}

#[test]
fn undo_changes_what_the_runtime_renders() {
    let (mut platform, tenant) = platform_with_inventory();
    let mut designer = Designer::new();
    designer.register_source(inventory_card());
    let root = designer.canvas().root_id();
    let list = designer
        .apply(DesignOp::DropSource {
            source: "inventory".into(),
            target: root,
            max_results: 5,
        })
        .unwrap()
        .unwrap();
    designer
        .apply(DesignOp::AddElement {
            parent: list,
            element: Element::text("EXTRA-MARKER"),
        })
        .unwrap();
    designer.undo().unwrap();
    let config = AppBuilder::new("Shop", tenant)
        .layout(designer.into_canvas())
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .build()
        .unwrap();
    let id = platform.register_app(config).unwrap();
    platform.publish(id).unwrap();
    let resp = platform.query(id, "shooter").unwrap();
    assert!(!resp.html.contains("EXTRA-MARKER"), "undone element leaked");
}

#[test]
fn stylesheet_cascade_reaches_runtime_html() {
    let (mut platform, tenant) = platform_with_inventory();
    let mut designer = Designer::new();
    designer.register_source(inventory_card());
    let root = designer.canvas().root_id();
    designer
        .apply(DesignOp::DropSource {
            source: "inventory".into(),
            target: root,
            max_results: 5,
        })
        .unwrap();
    let sheet = Stylesheet::new()
        .rule(
            Selector::Class("result-title".into()),
            StyleProps::new().with("color", "#123456"),
        )
        .rule(
            Selector::Kind("text".into()),
            StyleProps::new().with("font-size", "13px"),
        );
    let config = AppBuilder::new("Shop", tenant)
        .layout(designer.into_canvas())
        .stylesheet(sheet)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .build()
        .unwrap();
    let id = platform.register_app(config).unwrap();
    platform.publish(id).unwrap();
    let resp = platform.query(id, "shooter").unwrap();
    assert!(resp.html.contains("color:#123456"), "{}", resp.html);
    assert!(resp.html.contains("font-size:13px"));
}

#[test]
fn design_surface_previews_the_layout() {
    let mut designer = Designer::new();
    designer.register_source(inventory_card());
    let root = designer.canvas().root_id();
    designer
        .apply(DesignOp::DropSource {
            source: "inventory".into(),
            target: root,
            max_results: 5,
        })
        .unwrap();
    let html = render_design_surface(designer.canvas(), &Stylesheet::new());
    // Palette lists the source and its fields; canvas shows chips.
    assert!(html.contains("sym-palette"));
    assert!(html.contains("title, detail_url, image_url, description, price"));
    assert!(html.contains("⟦title⟧"));
    assert!(html.contains("⟦description⟧"));
}

#[test]
fn dropping_supplemental_onto_result_layout_nests() {
    let mut designer = Designer::new();
    designer.register_source(inventory_card());
    designer.register_source(DataSourceCard {
        name: "reviews".into(),
        category: "web".into(),
        fields: vec!["url".into(), "title".into(), "snippet".into()],
    });
    let root = designer.canvas().root_id();
    let list = designer
        .apply(DesignOp::DropSource {
            source: "inventory".into(),
            target: root,
            max_results: 5,
        })
        .unwrap()
        .unwrap();
    designer
        .apply(DesignOp::DropSource {
            source: "reviews".into(),
            target: list,
            max_results: 3,
        })
        .unwrap();
    let sources = designer.canvas().root().sources();
    assert_eq!(sources, vec!["inventory", "reviews"]);
    // In an app config these classify as primary vs supplemental.
    let config_sources = {
        let canvas = designer.canvas().clone();
        let app = AppBuilder::new("X", symphony_store::TenantId(0))
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "reviews",
                DataSourceDef::WebVertical {
                    vertical: symphony_web::Vertical::Web,
                    config: symphony_web::SearchConfig::default(),
                },
            )
            .supplemental("reviews", "{title} review")
            .build()
            .unwrap();
        (app.primary_sources(), app.supplemental_sources())
    };
    assert_eq!(config_sources.0, vec!["inventory"]);
    assert_eq!(config_sources.1, vec!["reviews"]);
}
