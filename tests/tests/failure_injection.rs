//! Failure injection across the platform: flaky services, timeouts,
//! missing tables, quota storms. The paper's hosted model demands
//! graceful degradation — a supplemental failure must never take the
//! primary results down.

use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_designer::{Canvas, Element};
use symphony_services::{
    CallPolicy, LatencyModel, OperationDesc, PricingService, Protocol, Service, ServiceDescription,
    ServiceFault, ServiceRequest, ServiceResponse,
};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_web::{Corpus, CorpusConfig, SearchEngine};

const CSV: &str = "title,description\nGalactic Raiders,a fast space shooter\n";

fn base_platform() -> (Platform, symphony_store::TenantId) {
    let corpus = Corpus::generate(&CorpusConfig {
        sites_per_topic: 1,
        pages_per_site: 2,
        ..CorpusConfig::default()
    });
    let mut platform = Platform::new(SearchEngine::new(corpus));
    let (tenant, key) = platform.create_tenant("T");
    let (table, _) = ingest("inventory", CSV, DataFormat::Csv).unwrap();
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("description", 1.0)])
        .unwrap();
    platform.upload_table(tenant, &key, indexed).unwrap();
    (platform, tenant)
}

fn app_with_service(
    platform: &mut Platform,
    tenant: symphony_store::TenantId,
    endpoint: &str,
    policy: CallPolicy,
) -> symphony_core::AppId {
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    let item = Element::column(vec![
        Element::text("{title}"),
        Element::result_list("svc", Element::text("price: {price}"), 1),
    ]);
    canvas
        .insert(root, Element::result_list("inventory", item, 5))
        .unwrap();
    let config = AppBuilder::new("T", tenant)
        .layout(canvas)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .source(
            "svc",
            DataSourceDef::Service {
                endpoint: endpoint.into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy,
            },
        )
        .supplemental("svc", "{title}")
        .build()
        .unwrap();
    let id = platform.register_app(config).unwrap();
    platform.publish(id).unwrap();
    id
}

#[test]
fn flaky_service_degrades_but_primary_survives() {
    let (mut platform, tenant) = base_platform();
    platform.transport_mut().register(
        "pricing",
        Box::new(PricingService),
        LatencyModel {
            base_ms: 10,
            jitter_ms: 0,
            failure_rate: 1.0, // always fails
        },
    );
    let id = app_with_service(
        &mut platform,
        tenant,
        "pricing",
        CallPolicy {
            timeout_ms: 100,
            retries: 1,
            ..CallPolicy::default()
        },
    );
    let resp = platform.query(id, "shooter").unwrap();
    assert!(resp.html.contains("Galactic Raiders"), "primary lost");
    let node = resp.trace.find("supplemental: svc").unwrap();
    assert!(node.detail.contains("error"), "{}", node.detail);
    // The failed attempts burned virtual time that is accounted.
    assert!(node.virtual_ms >= 20);
}

#[test]
fn slow_service_times_out_within_policy_budget() {
    let (mut platform, tenant) = base_platform();
    platform.transport_mut().register(
        "pricing",
        Box::new(PricingService),
        LatencyModel {
            base_ms: 5_000, // way over budget
            jitter_ms: 0,
            failure_rate: 0.0,
        },
    );
    let id = app_with_service(
        &mut platform,
        tenant,
        "pricing",
        CallPolicy {
            timeout_ms: 150,
            retries: 1,
            ..CallPolicy::default()
        },
    );
    let resp = platform.query(id, "shooter").unwrap();
    let node = resp.trace.find("supplemental: svc").unwrap();
    assert!(node.detail.contains("timed out"), "{}", node.detail);
    // Two attempts x 150ms cap — the runtime never waits 5 s.
    assert_eq!(node.virtual_ms, 300);
}

#[test]
fn unregistered_endpoint_is_a_soft_error() {
    let (mut platform, tenant) = base_platform();
    let id = app_with_service(&mut platform, tenant, "ghost", CallPolicy::default());
    let resp = platform.query(id, "shooter").unwrap();
    assert!(resp.html.contains("Galactic Raiders"));
    let node = resp.trace.find("supplemental: svc").unwrap();
    assert!(node.detail.contains("unknown endpoint"));
}

#[test]
fn service_fault_is_not_retried_and_surfaces_in_trace() {
    struct Faulty;
    impl Service for Faulty {
        fn describe(&self) -> ServiceDescription {
            ServiceDescription {
                name: "Faulty".into(),
                protocol: Protocol::Rest,
                operations: vec![OperationDesc {
                    name: "/price".into(),
                    params: vec!["item".into()],
                    returns: vec![],
                }],
            }
        }
        fn handle(&self, _: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
            Err(ServiceFault {
                code: 500,
                message: "backend exploded".into(),
            })
        }
    }
    let (mut platform, tenant) = base_platform();
    platform
        .transport_mut()
        .register("pricing", Box::new(Faulty), LatencyModel::fast());
    let id = app_with_service(&mut platform, tenant, "pricing", CallPolicy::default());
    let resp = platform.query(id, "shooter").unwrap();
    let node = resp.trace.find("supplemental: svc").unwrap();
    assert!(node.detail.contains("backend exploded"));
}

#[test]
fn panicking_service_is_isolated_to_its_slot() {
    struct Exploder;
    impl Service for Exploder {
        fn describe(&self) -> ServiceDescription {
            ServiceDescription {
                name: "Exploder".into(),
                protocol: Protocol::Rest,
                operations: vec![],
            }
        }
        fn handle(&self, _: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
            panic!("index out of bounds in third-party code");
        }
    }
    let (mut platform, tenant) = base_platform();
    platform
        .transport_mut()
        .register("pricing", Box::new(Exploder), LatencyModel::fast());
    let id = app_with_service(&mut platform, tenant, "pricing", CallPolicy::default());
    // The panic is caught per fan-out slot: the query still answers.
    let resp = platform.query(id, "shooter").unwrap();
    assert!(resp.html.contains("Galactic Raiders"), "primary lost");
    assert!(resp.trace.degraded);
    let node = resp.trace.find("supplemental: svc").unwrap();
    assert!(node.detail.contains("panicked"), "{}", node.detail);
    // The platform stays healthy for the next query.
    assert!(platform.query(id, "fast shooter").is_ok());
    let summary = platform.traffic_summary(id).unwrap();
    assert_eq!(summary.queries, 2);
    assert_eq!(summary.degraded_queries, 2);
    assert!((summary.error_rate() - 1.0).abs() < f64::EPSILON);
}

#[test]
fn missing_table_app_serves_empty_not_500() {
    let (mut platform, tenant) = base_platform();
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(
            root,
            Element::result_list("inventory", Element::text("{title}"), 5),
        )
        .unwrap();
    let config = AppBuilder::new("T", tenant)
        .layout(canvas)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "deleted_table".into(),
            },
        )
        .build()
        .unwrap();
    let id = platform.register_app(config).unwrap();
    platform.publish(id).unwrap();
    let resp = platform.query(id, "anything").unwrap();
    assert!(resp.impressions.is_empty());
    let node = resp.trace.find("primary: inventory").unwrap();
    assert!(node.detail.contains("unknown table"));
}

#[test]
fn quota_storm_rejects_then_recovers_cleanly() {
    let (mut platform, tenant) = base_platform();
    let mut platform = {
        // Rebuild with a tight quota.
        let _ = &mut platform;
        let corpus = Corpus::generate(&CorpusConfig {
            sites_per_topic: 1,
            pages_per_site: 2,
            ..CorpusConfig::default()
        });
        let mut p =
            Platform::new(SearchEngine::new(corpus)).with_quotas(symphony_core::QuotaConfig {
                requests_per_minute: 5,
                ..symphony_core::QuotaConfig::default()
            });
        let (t, k) = p.create_tenant("T");
        let (table, _) = ingest("inventory", CSV, DataFormat::Csv).unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("description", 1.0)])
            .unwrap();
        p.upload_table(t, &k, indexed).unwrap();
        let _ = tenant;
        (p, t)
    };
    let id = {
        let (p, t) = (&mut platform.0, platform.1);
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas
            .insert(
                root,
                Element::result_list("inventory", Element::text("{title}"), 5),
            )
            .unwrap();
        let config = AppBuilder::new("T", t)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .build()
            .unwrap();
        let id = p.register_app(config).unwrap();
        p.publish(id).unwrap();
        id
    };
    let p = &mut platform.0;
    let mut rejected = 0;
    for i in 0..10 {
        match p.query(id, &format!("q{i}")) {
            Ok(_) => {}
            Err(symphony_core::PlatformError::QuotaExceeded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(rejected, 5);
    p.advance_clock(61_000);
    assert!(p.query(id, "fresh").is_ok(), "quota window must slide");
}
