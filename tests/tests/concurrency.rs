//! Multi-threaded stress tests for the platform's `&self` serving
//! path.
//!
//! The central claim under test: running N workloads concurrently
//! against one shared [`Platform`] produces exactly the same aggregate
//! counters — impressions, clicks, cache hits/misses, publisher
//! earnings, ledger totals, even the virtual clock — as running the
//! same workloads sequentially. The workloads use disjoint apps (one
//! per thread) and only deterministic sources (proprietary tables, the
//! simulated web, the ad auction), so every counter is
//! interleaving-independent.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use symphony_ads::{Ad, Keyword, MatchType};
use symphony_core::app::AppBuilder;
use symphony_core::hosting::{Platform, QuotaConfig};
use symphony_core::source::DataSourceDef;
use symphony_core::{AppId, SourceCacheConfig};
use symphony_designer::{template, Canvas, Element};
use symphony_services::{
    CallPolicy, OperationDesc, Protocol, Service, ServiceDescription, ServiceFault, ServiceRequest,
    ServiceResponse,
};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_web::{Corpus, CorpusConfig, SearchConfig, SearchEngine, Topic, Vertical};

const THREADS: usize = 4;
const QUERIES_PER_THREAD: usize = 300;

const INVENTORY: &str = "\
title,genre,description,detail_url
Galactic Raiders,shooter,a fast space shooter game with lasers,http://shop.example.com/gr
Farm Story,sim,a calm farming game with crops and animals,http://shop.example.com/fs
Star Harvest,sim,space farming game,http://shop.example.com/sh
";

/// One platform hosting `apps` structurally-identical applications,
/// each on its own tenant with its own publisher name.
fn build_platform(apps: usize) -> (Platform, Vec<AppId>) {
    let corpus = Corpus::generate(
        &CorpusConfig {
            sites_per_topic: 2,
            pages_per_site: 4,
            ..CorpusConfig::default()
        }
        .with_entities(
            Topic::Games,
            ["Galactic Raiders", "Farm Story", "Star Harvest"],
        ),
    );
    let mut platform = Platform::new(SearchEngine::new(corpus))
        .with_quotas(QuotaConfig {
            requests_per_minute: u32::MAX,
            // The virtual clock advances with every request from every
            // thread; an effectively-infinite TTL keeps per-app cache
            // behavior a function of that app's own query stream alone.
            cache_ttl_ms: u64::MAX / 2,
            ..QuotaConfig::default()
        })
        // The apps share web-vertical fingerprints, so the shared L2
        // source cache would make per-query charges depend on which
        // thread's fetch lands first (hit vs. coalesced) — exact
        // counter equality needs it off. Singleflight determinism is
        // covered separately below with the L2 enabled.
        .with_source_cache(SourceCacheConfig::disabled());

    let adv = platform.ads_mut().add_advertiser("MegaGames");
    platform.ads_mut().add_campaign(
        adv,
        "games-broad",
        u32::MAX,
        vec![
            Keyword::new("game", MatchType::Broad, 60),
            Keyword::new("shooter", MatchType::Broad, 80),
        ],
        Ad {
            title: "Mega Sale".into(),
            display_url: "mega.example.com".into(),
            target_url: "http://mega.example.com".into(),
            text: "deals on games".into(),
        },
        0.9,
    );
    platform.ads_mut().add_campaign(
        adv,
        "farming",
        u32::MAX,
        vec![Keyword::new("farming", MatchType::Broad, 40)],
        Ad {
            title: "Farm Bundle".into(),
            display_url: "farm.example.com".into(),
            target_url: "http://farm.example.com".into(),
            text: "grow crops".into(),
        },
        0.7,
    );

    let mut ids = Vec::new();
    for i in 0..apps {
        let (tenant, key) = platform.create_tenant(&format!("Tenant{i}"));
        let (table, _) = ingest("inventory", INVENTORY, DataFormat::Csv).unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
            .unwrap();
        platform.upload_table(tenant, &key, indexed).unwrap();

        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas.insert(root, Element::search_box("Search…")).unwrap();
        let item = Element::column(vec![
            Element::link_field("detail_url", "{title}"),
            Element::text("{description}"),
            Element::result_list(
                "reviews",
                Element::column(vec![
                    Element::link_field("url", "{title}"),
                    Element::rich_text("{snippet}"),
                ]),
                2,
            ),
        ]);
        canvas
            .insert(root, Element::result_list("inventory", item, 10))
            .unwrap();
        canvas
            .insert(
                root,
                Element::result_list("sponsored", template::ad_layout(), 1),
            )
            .unwrap();

        let config = AppBuilder::new(&format!("App{i}"), tenant)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "reviews",
                DataSourceDef::WebVertical {
                    vertical: Vertical::Web,
                    config: SearchConfig::default().restrict_to(["gamespot.com", "ign.com"]),
                },
            )
            .source("sponsored", DataSourceDef::Ads { slots: 1 })
            .supplemental("reviews", "{title} review")
            .build()
            .unwrap();
        let id = platform.register_app(config).unwrap();
        platform.publish(id).unwrap();
        ids.push(id);
    }
    (platform, ids)
}

/// Deterministic per-thread query stream: a head-heavy mix so each
/// stream produces both cache hits and misses.
fn workload(thread: usize) -> Vec<String> {
    let pool = [
        "space shooter game",
        "calm farming game",
        "shooter",
        "farming",
        "fast lasers game",
        "crops and animals",
        "galactic game",
        "star harvest",
    ];
    (0..QUERIES_PER_THREAD)
        .map(|i| pool[(i * (thread + 3)) % pool.len()].to_string())
        .collect()
}

/// Run one thread's workload: query, then click every ad impression.
fn run_workload(platform: &Platform, id: AppId, queries: &[String]) {
    for q in queries {
        let resp = platform.query(id, q).unwrap();
        for imp in resp.impressions.iter().filter(|i| i.is_ad) {
            platform.click(id, q, imp).unwrap();
        }
    }
}

/// Everything we compare between the concurrent and sequential runs.
#[derive(Debug, PartialEq)]
struct Counters {
    per_app: Vec<(u64, u64, u64, u64, u64, u64)>, // impressions, clicks, ad_clicks, hits, misses, earnings
    platform_cut_cents: u64,
    clock_ms: u64,
}

fn counters(platform: &Platform, ids: &[AppId]) -> Counters {
    let per_app = ids
        .iter()
        .map(|&id| {
            let summary = platform.traffic_summary(id).unwrap();
            let cache = platform.cache_stats(id).unwrap();
            (
                summary.impressions,
                summary.clicks,
                summary.ad_clicks,
                cache.hits,
                cache.misses,
                platform.publisher_earnings_cents(id).unwrap(),
            )
        })
        .collect();
    Counters {
        per_app,
        platform_cut_cents: platform.ads().ledger().platform_cut_cents(),
        clock_ms: platform.clock_ms(),
    }
}

#[test]
fn concurrent_counters_match_sequential_run() {
    // Concurrent: THREADS threads share one platform, each serving its
    // own app.
    let (concurrent, ids) = build_platform(THREADS);
    std::thread::scope(|scope| {
        for (t, &id) in ids.iter().enumerate() {
            let platform = &concurrent;
            scope.spawn(move || run_workload(platform, id, &workload(t)));
        }
    });

    // Sequential: an identically-built platform runs the same
    // workloads one after another.
    let (sequential, seq_ids) = build_platform(THREADS);
    for (t, &id) in seq_ids.iter().enumerate() {
        run_workload(&sequential, id, &workload(t));
    }

    let conc = counters(&concurrent, &ids);
    let seq = counters(&sequential, &seq_ids);
    assert_eq!(conc, seq);

    // Sanity on magnitude: every thread really did its full stream.
    for &(impressions, clicks, ad_clicks, hits, misses, earnings) in &conc.per_app {
        assert!(impressions > 0);
        assert_eq!(hits + misses, QUERIES_PER_THREAD as u64);
        assert!(hits > 0, "head-heavy stream must produce cache hits");
        assert!(misses > 0);
        assert!(ad_clicks > 0, "ad clicks must be billed");
        assert_eq!(clicks, ad_clicks, "this workload only clicks ads");
        assert!(earnings > 0);
    }
}

#[test]
fn hammering_one_app_from_many_threads_stays_consistent() {
    // Same app from every thread: exact counters depend on the
    // interleaving (concurrent misses on one key may each execute),
    // but the bookkeeping invariants must hold and every response must
    // be the correct rendering for its query.
    let (platform, ids) = build_platform(1);
    let id = ids[0];
    let expected = platform.query(id, "space shooter game").unwrap();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let platform = &platform;
            let expected_html = expected.html.clone();
            scope.spawn(move || {
                for _ in 0..QUERIES_PER_THREAD {
                    let resp = platform.query(id, "space shooter game").unwrap();
                    assert_eq!(
                        resp.html, expected_html,
                        "every response renders identically"
                    );
                }
            });
        }
    });

    let cache = platform.cache_stats(id).unwrap();
    let total = (THREADS * QUERIES_PER_THREAD) as u64 + 1;
    assert_eq!(
        cache.hits + cache.misses,
        total,
        "every lookup is counted once"
    );
    assert!(cache.hits > 0);
    let summary = platform.traffic_summary(id).unwrap();
    let per_response = expected.impressions.len() as u64;
    assert_eq!(summary.impressions, total * per_response);
}

#[test]
fn concurrent_ad_clicks_never_overdraw_a_budget() {
    // A tight budget clicked from many threads: some clicks fail with
    // a budget error, but total campaign spend must never exceed the
    // budget (the check and the debit are atomic inside AdServer).
    let corpus = Corpus::generate(&CorpusConfig {
        sites_per_topic: 1,
        pages_per_site: 2,
        ..CorpusConfig::default()
    });
    let mut platform = Platform::new(SearchEngine::new(corpus));
    let adv = platform.ads_mut().add_advertiser("A");
    let campaign = platform.ads_mut().add_campaign(
        adv,
        "tight",
        200,
        vec![Keyword::new("game", MatchType::Broad, 50)],
        Ad {
            title: "t".into(),
            display_url: "d".into(),
            target_url: "http://u.example.com".into(),
            text: "x".into(),
        },
        0.9,
    );

    let placements = platform.ads().select("fun game", 1);
    let placement = placements.first().expect("campaign matches").clone();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let ads = platform.ads();
            let placement = placement.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    let _ = ads.record_click(&placement, "pub");
                }
            });
        }
    });
    assert!(platform.ads().ledger().campaign_spend_cents(campaign) <= 200);
    assert!(platform.ads().ledger().campaign_spend_cents(campaign) > 0);
}

#[test]
fn singleflight_executes_a_shared_source_exactly_once() {
    // THREADS apps on one platform share a service-backed source (the
    // L2 key is tenant-agnostic for services). All threads race the
    // same supplemental fetch: the shared source cache must collapse
    // them onto exactly one backend execution — by coalescing onto the
    // in-flight leader or by serving the finished entry — and every
    // thread must render the same response.
    struct CountingService {
        calls: Arc<AtomicUsize>,
    }
    impl Service for CountingService {
        fn describe(&self) -> ServiceDescription {
            ServiceDescription {
                name: "Counting".into(),
                protocol: Protocol::Rest,
                operations: vec![OperationDesc {
                    name: "/price".into(),
                    params: vec!["item".into()],
                    returns: vec!["price".into()],
                }],
            }
        }
        fn handle(&self, _: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            // Hold the leader in real time so racing threads pile onto
            // the in-flight entry rather than a finished cache entry —
            // exactly-once must hold under either interleaving.
            std::thread::sleep(std::time::Duration::from_millis(5));
            Ok(ServiceResponse::single(&[("price", "9.99")]))
        }
    }

    const ONE_ROW: &str = "title,description\nGalactic Raiders,a fast space shooter\n";
    let corpus = Corpus::generate(&CorpusConfig {
        sites_per_topic: 1,
        pages_per_site: 2,
        ..CorpusConfig::default()
    });
    let calls = Arc::new(AtomicUsize::new(0));
    let mut platform = Platform::new(SearchEngine::new(corpus));
    platform.transport_mut().register(
        "pricing",
        Box::new(CountingService {
            calls: Arc::clone(&calls),
        }),
        symphony_services::LatencyModel {
            base_ms: 10,
            jitter_ms: 0,
            failure_rate: 0.0,
        },
    );

    let mut ids = Vec::new();
    for i in 0..THREADS {
        let (tenant, key) = platform.create_tenant(&format!("Tenant{i}"));
        let (table, _) = ingest("inventory", ONE_ROW, DataFormat::Csv).unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("description", 1.0)])
            .unwrap();
        platform.upload_table(tenant, &key, indexed).unwrap();
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        let item = Element::column(vec![
            Element::text("{title}"),
            Element::result_list("svc", Element::text("price: {price}"), 1),
        ]);
        canvas
            .insert(root, Element::result_list("inventory", item, 5))
            .unwrap();
        let config = AppBuilder::new(&format!("App{i}"), tenant)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "svc",
                DataSourceDef::Service {
                    endpoint: "pricing".into(),
                    operation: "/price".into(),
                    item_param: "item".into(),
                    policy: CallPolicy::default(),
                },
            )
            .supplemental("svc", "{title}")
            .build()
            .unwrap();
        let id = platform.register_app(config).unwrap();
        platform.publish(id).unwrap();
        ids.push(id);
    }

    let barrier = Arc::new(Barrier::new(THREADS));
    let htmls: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let platform = &platform;
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let resp = platform.query(id, "galactic").unwrap();
                    assert!(!resp.trace.degraded, "{}", resp.trace.render());
                    resp.html.clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "backend ran more than once"
    );
    for html in &htmls {
        assert!(html.contains("price: 9.99"), "{html}");
        assert_eq!(html, &htmls[0], "responses diverged");
    }
    // Per-tenant proprietary fetches each miss once; the shared
    // service key misses once and is served THREADS-1 times.
    let stats = platform.source_cache_stats();
    assert_eq!(stats.executions, THREADS as u64 + 1);
    assert_eq!(stats.misses, THREADS as u64 + 1);
    assert_eq!(stats.hits + stats.coalesced, THREADS as u64 - 1);
}
