//! Cross-crate property tests: invariants that span ingest, indexing,
//! the runtime, and rendering.

use proptest::prelude::*;
use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_designer::{Canvas, Element};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_web::{Corpus, CorpusConfig, SearchEngine};

/// CSV-safe title strings.
fn title() -> impl Strategy<Value = String> {
    "[a-z]{2,8}( [a-z]{2,8}){0,2}"
}

fn build_app(titles: &[String]) -> (Platform, symphony_core::AppId) {
    let corpus = Corpus::generate(&CorpusConfig {
        sites_per_topic: 1,
        pages_per_site: 2,
        ..CorpusConfig::default()
    });
    let mut platform = Platform::new(SearchEngine::new(corpus));
    let (tenant, key) = platform.create_tenant("T");
    let mut csv = String::from("title\n");
    for t in titles {
        csv.push_str(t);
        csv.push('\n');
    }
    let (table, _) = ingest("inv", &csv, DataFormat::Csv).unwrap();
    let mut indexed = IndexedTable::new(table);
    indexed.enable_fulltext(&[("title", 1.0)]).unwrap();
    platform.upload_table(tenant, &key, indexed).unwrap();
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(
            root,
            Element::result_list("inv", Element::text("{title}"), 50),
        )
        .unwrap();
    let config = AppBuilder::new("T", tenant)
        .layout(canvas)
        .source(
            "inv",
            DataSourceDef::Proprietary {
                table: "inv".into(),
            },
        )
        .build()
        .unwrap();
    let id = platform.register_app(config).unwrap();
    platform.publish(id).unwrap();
    (platform, id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any title ingested through the full pipeline is findable by
    /// querying one of its words, and the produced HTML is well-formed
    /// enough to contain the escaped title.
    #[test]
    fn ingested_titles_are_queryable_end_to_end(
        titles in proptest::collection::vec(title(), 1..6),
    ) {
        let (platform, id) = build_app(&titles);
        let probe = titles[0].split(' ').next().unwrap().to_string();
        let resp = platform.query(id, &probe).unwrap();
        prop_assert!(
            resp.impressions
                .iter()
                .any(|i| i.title.contains(&probe)
                    || i.title.split(' ').any(|w| w.starts_with(probe.as_str()))
                    || titles.contains(&i.title)),
            "query {probe:?} found nothing among {titles:?}"
        );
        // Every impression's title must appear in the HTML (escaped
        // rendering of the same data).
        for imp in &resp.impressions {
            prop_assert!(resp.html.contains(&imp.title));
        }
    }

    /// Cache key normalization: whitespace/case variants of a query
    /// always produce byte-identical HTML.
    #[test]
    fn cache_normalization_is_consistent(
        t in title(),
        spaces in 1usize..4,
    ) {
        let (platform, id) = build_app(std::slice::from_ref(&t));
        let word = t.split(' ').next().unwrap();
        let a = platform.query(id, word).unwrap();
        let variant = format!("{}{}", " ".repeat(spaces), word.to_uppercase());
        let b = platform.query(id, &variant).unwrap();
        prop_assert_eq!(a.html, b.html);
        prop_assert!(b.trace.cache_hit);
    }

    /// The virtual clock is monotone across arbitrary query sequences.
    #[test]
    fn clock_monotone(queries in proptest::collection::vec(title(), 1..8)) {
        let (platform, id) = build_app(&["alpha beta".to_string()]);
        let mut last = platform.clock_ms();
        for q in queries {
            let _ = platform.query(id, &q);
            prop_assert!(platform.clock_ms() >= last);
            last = platform.clock_ms();
        }
    }
}
