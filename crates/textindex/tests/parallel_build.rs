//! Determinism tests for the segmented parallel index build.
//!
//! The differential *property* test (`tests/prop.rs`) covers random
//! corpora; these tests pin the two guarantees the build makes on a
//! fixed mid-size corpus:
//!
//! 1. a parallel build is bit-identical to a sequential build at every
//!    thread count 1..=8, and
//! 2. two parallel builds at the same thread count are bit-identical to
//!    each other (no dependence on thread scheduling).

use symphony_text::{Doc, DocId, FieldId, Index, IndexConfig, Query, Searcher};

/// Deterministic synthetic corpus: a small vocabulary recombined by a
/// fixed LCG, so every build sees the same documents.
fn corpus(n: usize) -> Vec<(String, String)> {
    const VOCAB: [&str; 24] = [
        "galactic", "raiders", "space", "shooter", "farm", "story", "calm", "crops", "trade",
        "stations", "laser", "golf", "puzzle", "palace", "quest", "racer", "drift", "arena",
        "battle", "craft", "pixel", "dungeon", "tower", "defense",
    ];
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut word = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        VOCAB[(state >> 33) as usize % VOCAB.len()]
    };
    (0..n)
        .map(|_| {
            let title = format!("{} {}", word(), word());
            let body = (0..12).map(|_| word()).collect::<Vec<_>>().join(" ");
            (title, body)
        })
        .collect()
}

fn build(docs: &[(String, String)], threads: Option<usize>) -> Index {
    let mut idx = Index::new(IndexConfig::default());
    let title = idx.register_field("title", 2.0);
    let body = idx.register_field("body", 1.0);
    let batch: Vec<Doc> = docs
        .iter()
        .map(|(t, b)| Doc::new().field(title, t.clone()).field(body, b.clone()))
        .collect();
    match threads {
        Some(n) => {
            idx.build_parallel(batch, n);
        }
        None => {
            for d in batch {
                idx.add(d);
            }
        }
    }
    idx.optimize();
    idx
}

/// Bit-level equality: lexicon, per-list compressed bytes, score
/// stats, field lengths, and search results.
fn assert_identical(a: &Index, b: &Index) {
    assert_eq!(a.stats(), b.stats());
    assert_eq!(
        a.lexicon().iter().collect::<Vec<_>>(),
        b.lexicon().iter().collect::<Vec<_>>()
    );
    let fields = [FieldId(0), FieldId(1)];
    for (term, _) in a.lexicon().iter() {
        for field in fields {
            match (
                a.compacted_postings(term, field),
                b.compacted_postings(term, field),
            ) {
                (None, None) => {}
                (Some(ca), Some(cb)) => {
                    assert_eq!(ca.bytes(), cb.bytes(), "postings bytes differ");
                }
                (x, y) => panic!(
                    "postings shape mismatch: {:?} vs {:?}",
                    x.is_some(),
                    y.is_some()
                ),
            }
            assert_eq!(
                a.term_score_stats(term, field),
                b.term_score_stats(term, field)
            );
        }
    }
    for d in 0..a.total_docs() as u32 {
        for field in fields {
            assert_eq!(a.field_len(DocId(d), field), b.field_len(DocId(d), field));
        }
    }
    for q in ["space shooter", "farm", "+puzzle tower", "title:laser"] {
        let query = Query::parse(q);
        let ha = Searcher::new(a).search(&query, 20);
        let hb = Searcher::new(b).search(&query, 20);
        assert_eq!(
            ha.iter()
                .map(|h| (h.doc, h.score.to_bits()))
                .collect::<Vec<_>>(),
            hb.iter()
                .map(|h| (h.doc, h.score.to_bits()))
                .collect::<Vec<_>>(),
            "search results differ for {q:?}"
        );
    }
}

#[test]
fn parallel_build_matches_sequential_at_every_thread_count() {
    let docs = corpus(300);
    let seq = build(&docs, None);
    for threads in 1..=8 {
        let par = build(&docs, Some(threads));
        assert_identical(&seq, &par);
    }
}

#[test]
fn two_eight_thread_builds_are_bit_identical() {
    let docs = corpus(500);
    let a = build(&docs, Some(8));
    let b = build(&docs, Some(8));
    assert_identical(&a, &b);
}

#[test]
fn parallel_build_handles_ragged_and_empty_chunks() {
    // 5 docs over 4 workers gives chunk sizes 2/2/1/0; 1 doc over 8
    // workers collapses to the sequential path.
    for (n, threads) in [(5, 4), (1, 8), (0, 8), (7, 3)] {
        let docs = corpus(n);
        let seq = build(&docs, None);
        let par = build(&docs, Some(threads));
        assert_identical(&seq, &par);
    }
}

#[test]
fn incremental_add_keeps_working_after_parallel_build() {
    let docs = corpus(40);
    let mut idx = build(&docs, Some(8));
    let title = idx.field_id("title").unwrap();
    let body = idx.field_id("body").unwrap();
    let id = idx.add(
        Doc::new()
            .field(title, "fresh entry")
            .field(body, "galactic space entry added incrementally"),
    );
    assert_eq!(id, DocId(40));
    let hits = Searcher::new(&idx).search(&Query::parse("incrementally"), 5);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].doc, id);
}
