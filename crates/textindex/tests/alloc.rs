//! Allocation-count regression tests for the arena lexicon.
//!
//! The pre-arena `HashMap<String, TermId>` lexicon allocated two
//! `String`s per first-sight intern (one map key, one id-to-term entry)
//! and one hashing-side allocation per borrowed lookup was only avoided
//! by accident of the raw-entry API not being used at all. The arena
//! representation must stay amortized: interning N fresh terms costs
//! O(log N) container growths, not O(N) allocations, and lookups cost
//! zero.
//!
//! This file is its own test binary so the counting `#[global_allocator]`
//! cannot skew other suites; all assertions live in a single `#[test]`
//! so parallel test threads cannot pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use symphony_text::Lexicon;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Run `f` and return how many heap allocations it performed.
fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

#[test]
fn intern_is_amortized_and_lookup_is_allocation_free() {
    const N: usize = 10_000;
    // Materialize the inputs first so only the lexicon's own heap
    // traffic is counted.
    let terms: Vec<String> = (0..N).map(|i| format!("term{i:05}")).collect();

    let mut lex = Lexicon::new();
    let (fresh_allocs, ids) =
        allocations(|| terms.iter().map(|t| lex.intern(t)).collect::<Vec<_>>());
    assert_eq!(lex.len(), N);

    // The old representation paid >= 2 String allocations per fresh
    // term (2N total). The arena pays only amortized container growth:
    // doubling the arena, the span table, and the hash table each cost
    // O(log N) allocations. Leave generous slack, but stay far below
    // even one allocation per term.
    assert!(
        fresh_allocs < N / 10,
        "interning {N} fresh terms performed {fresh_allocs} allocations; \
         expected amortized growth only"
    );
    assert!(fresh_allocs >= 1, "growth must allocate at least once");

    // Re-interning every existing term is pure lookup: zero allocations.
    let (hit_allocs, _) = allocations(|| {
        for (t, &id) in terms.iter().zip(&ids) {
            assert_eq!(lex.intern(t), id);
        }
    });
    assert_eq!(hit_allocs, 0, "intern hits must not allocate");

    // Borrowed-key lookup never allocates — present or absent.
    let (get_allocs, _) = allocations(|| {
        for (t, &id) in terms.iter().zip(&ids) {
            assert_eq!(lex.get(t), Some(id));
        }
        assert_eq!(lex.get("never-interned"), None);
    });
    assert_eq!(get_allocs, 0, "Lexicon::get must not allocate");

    // Resolving ids back to strings borrows from the arena.
    let (term_allocs, _) = allocations(|| {
        for (t, &id) in terms.iter().zip(&ids) {
            assert_eq!(lex.term(id), t.as_str());
        }
    });
    assert_eq!(term_allocs, 0, "Lexicon::term must not allocate");
}
