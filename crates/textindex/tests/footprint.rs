//! Index memory-footprint accounting: `Index::bytes_estimate()` must
//! reflect the packed representation, and the packed posting format
//! plus arena lexicon must be smaller than the varint-per-posting and
//! two-`String`s-per-term baseline they replaced.

use symphony_text::postings::PostingList;
use symphony_text::{Doc, Index, IndexConfig};

/// Append `v` as a LEB128 varint — the old per-posting codec.
fn varint_push(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Byte size of a posting list under the pre-packed varint layout:
/// per posting, a delta-varint doc id, a varint tf, then delta-varint
/// positions.
fn varint_baseline_len(list: &PostingList) -> usize {
    let mut out = Vec::new();
    let mut prev_doc = 0u32;
    for p in list.postings() {
        varint_push(&mut out, p.doc.0 - prev_doc);
        prev_doc = p.doc.0;
        varint_push(&mut out, p.positions.len() as u32);
        let mut prev_pos = 0u32;
        for &pos in &p.positions {
            varint_push(&mut out, pos - prev_pos);
            prev_pos = pos;
        }
    }
    out.len()
}

/// Deterministic pseudo-text: Zipf-ish draws from a fixed vocabulary so
/// common terms grow long, dense posting lists (where bit packing pays)
/// and rare terms stay short.
fn corpus(docs: usize) -> Vec<(String, String)> {
    const VOCAB: &[&str] = &[
        "the", "search", "engine", "index", "query", "score", "block", "packed", "cursor",
        "phrase", "term", "arena", "segment", "merge", "wine", "auction", "laser", "orbit",
        "probe", "quartz", "zephyr", "willow", "harbor", "signal",
    ];
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut word = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Square the draw so low indexes (common words) dominate.
        let r = (state >> 11) as f64 / (1u64 << 53) as f64;
        VOCAB[((r * r) * VOCAB.len() as f64) as usize % VOCAB.len()]
    };
    (0..docs)
        .map(|_| {
            let title: Vec<&str> = (0..3).map(|_| word()).collect();
            let body: Vec<&str> = (0..30).map(|_| word()).collect();
            (title.join(" "), body.join(" "))
        })
        .collect()
}

#[test]
fn packed_index_is_smaller_than_varint_baseline() {
    let mut idx = Index::new(IndexConfig::default());
    let title = idx.register_field("title", 2.0);
    let body = idx.register_field("body", 1.0);
    for (t, b) in corpus(400) {
        idx.add(Doc::new().field(title, t).field(body, b));
    }
    idx.optimize();

    let mut packed_postings = 0usize;
    let mut varint_postings = 0usize;
    for (term, _) in idx.lexicon().iter() {
        for field in [title, body] {
            if let Some(c) = idx.compacted_postings(term, field) {
                packed_postings += c.heap_bytes();
                varint_postings += varint_baseline_len(&c.decode());
            }
        }
    }
    assert!(packed_postings > 0, "corpus must produce postings");

    // Old lexicon: HashMap<String, TermId> keyed by an owned String
    // plus a Vec<String> id-to-term column — two String headers and two
    // byte copies per term, plus the map's (hash, key, value) entry.
    let string_header = std::mem::size_of::<String>();
    let varint_lexicon: usize = idx
        .lexicon()
        .iter()
        .map(|(_, t)| 2 * (string_header + t.len()) + std::mem::size_of::<(u64, u32)>())
        .sum();

    let packed_core = packed_postings + idx.lexicon().heap_bytes();
    let varint_core = varint_postings + varint_lexicon;
    assert!(
        packed_core < varint_core,
        "packed postings + arena lexicon ({packed_core} B) must undercut \
         the varint + owned-String baseline ({varint_core} B)"
    );

    // The accessor must account for at least the postings and lexicon
    // it reports on, plus the stored columns on top.
    let estimate = idx.bytes_estimate();
    assert!(
        estimate >= packed_core,
        "bytes_estimate ({estimate}) must cover postings + lexicon ({packed_core})"
    );
    let stored = estimate - packed_postings - idx.lexicon().heap_bytes();
    assert!(stored > 0, "stored columns must contribute to the estimate");
    assert!(
        estimate < varint_core + stored,
        "bytes_estimate ({estimate}) must beat the varint baseline plus \
         the same stored columns ({})",
        varint_core + stored
    );
}

#[test]
fn bytes_estimate_tracks_growth_and_optimize() {
    let mut idx = Index::new(IndexConfig::default());
    let body = idx.register_field("body", 1.0);
    let empty = idx.bytes_estimate();
    for (t, b) in corpus(100) {
        idx.add(Doc::new().field(body, format!("{t} {b}")));
    }
    let grown = idx.bytes_estimate();
    assert!(grown > empty, "adding docs must grow the estimate");
    idx.optimize();
    let optimized = idx.bytes_estimate();
    assert!(
        optimized < grown,
        "optimize must shrink the estimate (raw {grown} B -> packed {optimized} B)"
    );
}
