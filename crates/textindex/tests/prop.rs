//! Property-based tests for the full-text substrate invariants.

use proptest::prelude::*;
use symphony_text::postings::{CompressedPostings, PostingList};
use symphony_text::{
    Analyzer, Doc, DocId, Index, IndexConfig, Query, ScoreMode, Searcher, StandardAnalyzer,
};

/// Strategy: one textual query clause — optional occur prefix, optional
/// field restriction (including an unregistered field), tiny-alphabet
/// token so queries actually collide with document vocabulary.
fn clause() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just(""), Just("+"), Just("-")],
        prop_oneof![Just(""), Just("title:"), Just("body:"), Just("nosuch:")],
        "[ab]{2,3}",
    )
        .prop_map(|(occur, field, tok)| format!("{occur}{field}{tok}"))
}

/// Strategy: a doc-ordered set of (doc, positions) postings.
fn posting_data() -> impl Strategy<Value = Vec<(u32, Vec<u32>)>> {
    proptest::collection::btree_map(
        0u32..10_000,
        proptest::collection::btree_set(0u32..5_000, 1..20),
        0..50,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(doc, pos)| (doc, pos.into_iter().collect::<Vec<u32>>()))
            .collect()
    })
}

proptest! {
    /// Varint/delta compression is lossless.
    #[test]
    fn compression_roundtrip(data in posting_data()) {
        let mut list = PostingList::new();
        for (doc, positions) in &data {
            for &p in positions {
                list.push_occurrence(DocId(*doc), p);
            }
        }
        let decoded = CompressedPostings::encode(&list).decode();
        prop_assert_eq!(decoded.postings(), list.postings());
    }

    /// Analysis is deterministic and produces terms that re-analyze to
    /// themselves (idempotence of normalization).
    #[test]
    fn analyzer_idempotent(text in "\\PC{0,200}") {
        let an = StandardAnalyzer::new();
        let once = an.analyze(&text);
        for tok in &once {
            let again = an.analyze(&tok.term);
            // A normalized term must analyze to at most one token and,
            // when it survives, to itself.
            prop_assert!(again.len() <= 1);
            if let Some(t) = again.first() {
                prop_assert_eq!(&t.term, &tok.term);
            }
        }
        let twice = an.analyze(&text);
        prop_assert_eq!(once, twice);
    }

    /// Token byte offsets always slice the original text cleanly.
    #[test]
    fn token_offsets_are_valid_slices(text in "\\PC{0,200}") {
        let an = StandardAnalyzer::new();
        for tok in an.analyze(&text) {
            prop_assert!(tok.start < tok.end);
            prop_assert!(tok.end <= text.len());
            prop_assert!(text.is_char_boundary(tok.start));
            prop_assert!(text.is_char_boundary(tok.end));
        }
    }

    /// Every document that a single-term query returns really contains
    /// the term, and scores are positive and sorted.
    #[test]
    fn search_results_sound(
        docs in proptest::collection::vec("[a-z]{1,6}( [a-z]{1,6}){0,10}", 1..20),
        needle in "[a-z]{1,6}",
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        for d in &docs {
            idx.add(Doc::new().field(body, d.clone()));
        }
        let analyzer = StandardAnalyzer::new();
        let hits = Searcher::new(&idx).search(&Query::parse(&needle), docs.len());
        let needle_terms: Vec<String> =
            analyzer.analyze(&needle).into_iter().map(|t| t.term).collect();
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            prop_assert!(h.score > 0.0);
            let text = idx.stored_text(h.doc, body).unwrap();
            let doc_terms: Vec<String> =
                analyzer.analyze(text).into_iter().map(|t| t.term).collect();
            prop_assert!(
                needle_terms.iter().any(|n| doc_terms.contains(n)),
                "doc {:?} ({text:?}) does not contain {needle_terms:?}",
                h.doc
            );
        }
    }

    /// Optimizing (compressing) an index never changes search results.
    #[test]
    fn optimize_preserves_results(
        docs in proptest::collection::vec("[a-z]{1,4}( [a-z]{1,4}){0,6}", 1..15),
        query in "[a-z]{1,4}( [a-z]{1,4}){0,2}",
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        for d in &docs {
            idx.add(Doc::new().field(body, d.clone()));
        }
        let q = Query::parse(&query);
        let before = Searcher::new(&idx).search(&q, 100);
        idx.optimize();
        let after = Searcher::new(&idx).search(&q, 100);
        prop_assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert!((a.score - b.score).abs() < 1e-5);
        }
    }

    /// Rank safety of MaxScore pruning: the pruned executor returns the
    /// exact `(doc, score)` list of the exhaustive one — same docs,
    /// bit-identical scores, same tie-break order — across random
    /// corpora, query shapes (should/must/must-not, field-restricted,
    /// unknown fields), k values, index states (raw, optimized, mixed
    /// raw+compressed with stale bounds, tombstoned docs), and filters.
    #[test]
    fn pruned_equals_exhaustive(
        docs in proptest::collection::vec(
            ("[ab]{2,3}( [ab]{2,3}){0,2}", "[ab]{2,3}( [ab]{2,3}){0,8}"),
            1..25,
        ),
        clauses in proptest::collection::vec(clause(), 1..5),
        k in 1usize..8,
        optimize in 0u8..2,
        delete_first in 0u8..2,
        add_after in 0u8..2,
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let title = idx.register_field("title", 2.0);
        let body = idx.register_field("body", 1.0);
        for (t, b) in &docs {
            idx.add(Doc::new().field(title, t.clone()).field(body, b.clone()));
        }
        if delete_first == 1 {
            idx.delete(DocId(0));
        }
        if optimize == 1 {
            idx.optimize();
            if add_after == 1 {
                // Mixed segments: re-expanded lists + stale score stats.
                idx.add(Doc::new().field(title, "ab ba").field(body, "aa bb ab aba"));
            }
        }
        let q = Query::parse(&clauses.join(" "));
        let pruned = Searcher::new(&idx).search(&q, k);
        let exhaustive = Searcher::new(&idx)
            .with_mode(ScoreMode::Exhaustive)
            .search(&q, k);
        prop_assert_eq!(pruned, exhaustive);

        let filter = |d: DocId| d.0.is_multiple_of(2);
        let pruned = Searcher::new(&idx).search_filtered(&q, k, filter);
        let exhaustive = Searcher::new(&idx)
            .with_mode(ScoreMode::Exhaustive)
            .search_filtered(&q, k, filter);
        prop_assert_eq!(pruned, exhaustive);
    }

    /// Query parser never panics and Display output reparses to the
    /// same clause structure.
    #[test]
    fn query_parse_total(input in "\\PC{0,100}") {
        let q = Query::parse(&input);
        let reparsed = Query::parse(&q.to_string());
        // Reparse of canonical form is a fixpoint.
        prop_assert_eq!(Query::parse(&reparsed.to_string()), reparsed);
    }
}
