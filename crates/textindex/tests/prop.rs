//! Property-based tests for the full-text substrate invariants.

use proptest::prelude::*;
use symphony_text::postings::{CompressedPostings, PostingList};
use symphony_text::{
    Analyzer, Doc, DocId, Index, IndexConfig, Query, ScoreMode, Searcher, StandardAnalyzer,
};

/// Strategy: one textual query clause — optional occur prefix, optional
/// field restriction (including an unregistered field), tiny-alphabet
/// token so queries actually collide with document vocabulary.
fn clause() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just(""), Just("+"), Just("-")],
        prop_oneof![Just(""), Just("title:"), Just("body:"), Just("nosuch:")],
        "[ab]{2,3}",
    )
        .prop_map(|(occur, field, tok)| format!("{occur}{field}{tok}"))
}

/// Strategy: a doc-ordered set of (doc, positions) postings.
fn posting_data() -> impl Strategy<Value = Vec<(u32, Vec<u32>)>> {
    proptest::collection::btree_map(
        0u32..10_000,
        proptest::collection::btree_set(0u32..5_000, 1..20),
        0..50,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(doc, pos)| (doc, pos.into_iter().collect::<Vec<u32>>()))
            .collect()
    })
}

proptest! {
    /// Varint/delta compression is lossless.
    #[test]
    fn compression_roundtrip(data in posting_data()) {
        let mut list = PostingList::new();
        for (doc, positions) in &data {
            for &p in positions {
                list.push_occurrence(DocId(*doc), p);
            }
        }
        let decoded = CompressedPostings::encode(&list).decode();
        prop_assert_eq!(decoded.postings(), list.postings());
    }

    /// Analysis is deterministic and produces terms that re-analyze to
    /// themselves (idempotence of normalization).
    #[test]
    fn analyzer_idempotent(text in "\\PC{0,200}") {
        let an = StandardAnalyzer::new();
        let once = an.analyze(&text);
        for tok in &once {
            let again = an.analyze(&tok.term);
            // A normalized term must analyze to at most one token and,
            // when it survives, to itself.
            prop_assert!(again.len() <= 1);
            if let Some(t) = again.first() {
                prop_assert_eq!(&t.term, &tok.term);
            }
        }
        let twice = an.analyze(&text);
        prop_assert_eq!(once, twice);
    }

    /// Token byte offsets always slice the original text cleanly.
    #[test]
    fn token_offsets_are_valid_slices(text in "\\PC{0,200}") {
        let an = StandardAnalyzer::new();
        for tok in an.analyze(&text) {
            prop_assert!(tok.start < tok.end);
            prop_assert!(tok.end <= text.len());
            prop_assert!(text.is_char_boundary(tok.start));
            prop_assert!(text.is_char_boundary(tok.end));
        }
    }

    /// Every document that a single-term query returns really contains
    /// the term, and scores are positive and sorted.
    #[test]
    fn search_results_sound(
        docs in proptest::collection::vec("[a-z]{1,6}( [a-z]{1,6}){0,10}", 1..20),
        needle in "[a-z]{1,6}",
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        for d in &docs {
            idx.add(Doc::new().field(body, d.clone()));
        }
        let analyzer = StandardAnalyzer::new();
        let hits = Searcher::new(&idx).search(&Query::parse(&needle), docs.len());
        let needle_terms: Vec<String> =
            analyzer.analyze(&needle).into_iter().map(|t| t.term).collect();
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            prop_assert!(h.score > 0.0);
            let text = idx.stored_text(h.doc, body).unwrap();
            let doc_terms: Vec<String> =
                analyzer.analyze(text).into_iter().map(|t| t.term).collect();
            prop_assert!(
                needle_terms.iter().any(|n| doc_terms.contains(n)),
                "doc {:?} ({text:?}) does not contain {needle_terms:?}",
                h.doc
            );
        }
    }

    /// Optimizing (compressing) an index never changes search results.
    #[test]
    fn optimize_preserves_results(
        docs in proptest::collection::vec("[a-z]{1,4}( [a-z]{1,4}){0,6}", 1..15),
        query in "[a-z]{1,4}( [a-z]{1,4}){0,2}",
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        for d in &docs {
            idx.add(Doc::new().field(body, d.clone()));
        }
        let q = Query::parse(&query);
        let before = Searcher::new(&idx).search(&q, 100);
        idx.optimize();
        let after = Searcher::new(&idx).search(&q, 100);
        prop_assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert!((a.score - b.score).abs() < 1e-5);
        }
    }

    /// Rank safety of MaxScore pruning: the pruned executor returns the
    /// exact `(doc, score)` list of the exhaustive one — same docs,
    /// bit-identical scores, same tie-break order — across random
    /// corpora, query shapes (should/must/must-not, field-restricted,
    /// unknown fields), k values, index states (raw, optimized, mixed
    /// raw+compressed with stale bounds, tombstoned docs), and filters.
    #[test]
    fn pruned_equals_exhaustive(
        docs in proptest::collection::vec(
            ("[ab]{2,3}( [ab]{2,3}){0,2}", "[ab]{2,3}( [ab]{2,3}){0,8}"),
            1..25,
        ),
        clauses in proptest::collection::vec(clause(), 1..5),
        k in 1usize..8,
        optimize in 0u8..2,
        delete_first in 0u8..2,
        add_after in 0u8..2,
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let title = idx.register_field("title", 2.0);
        let body = idx.register_field("body", 1.0);
        for (t, b) in &docs {
            idx.add(Doc::new().field(title, t.clone()).field(body, b.clone()));
        }
        if delete_first == 1 {
            idx.delete(DocId(0));
        }
        if optimize == 1 {
            idx.optimize();
            if add_after == 1 {
                // Mixed segments: re-expanded lists + stale score stats.
                idx.add(Doc::new().field(title, "ab ba").field(body, "aa bb ab aba"));
            }
        }
        let q = Query::parse(&clauses.join(" "));
        let pruned = Searcher::new(&idx).search(&q, k);
        let exhaustive = Searcher::new(&idx)
            .with_mode(ScoreMode::Exhaustive)
            .search(&q, k);
        prop_assert_eq!(pruned, exhaustive);

        let filter = |d: DocId| d.0.is_multiple_of(2);
        let pruned = Searcher::new(&idx).search_filtered(&q, k, filter);
        let exhaustive = Searcher::new(&idx)
            .with_mode(ScoreMode::Exhaustive)
            .search_filtered(&q, k, filter);
        prop_assert_eq!(pruned, exhaustive);
    }

    /// Query parser never panics and Display output reparses to the
    /// same clause structure.
    #[test]
    fn query_parse_total(input in "\\PC{0,100}") {
        let q = Query::parse(&input);
        let reparsed = Query::parse(&q.to_string());
        // Reparse of canonical form is a fixpoint.
        prop_assert_eq!(Query::parse(&reparsed.to_string()), reparsed);
    }

    /// The segmented parallel build is bit-identical to a sequential
    /// build: same lexicon (ids and strings), same postings bytes after
    /// `optimize()`, same score-bound stats, same `(doc, score)` search
    /// results — over random docs, fields, and thread counts 1..=8.
    #[test]
    fn built_parallel_equals_sequential(
        docs in proptest::collection::vec(
            ("[ab]{2,4}( [abc]{1,4}){0,3}", "[a-d]{1,5}( [a-d]{1,5}){0,8}"),
            0..40,
        ),
        threads in 1usize..9,
    ) {
        let make_docs = |title: symphony_text::FieldId, body: symphony_text::FieldId| {
            docs.iter()
                .map(|(t, b)| Doc::new().field(title, t.clone()).field(body, b.clone()))
                .collect::<Vec<Doc>>()
        };
        let mut seq = Index::new(IndexConfig::default());
        let title = seq.register_field("title", 2.0);
        let body = seq.register_field("body", 1.0);
        for d in make_docs(title, body) {
            seq.add(d);
        }
        seq.optimize();

        let mut par = Index::new(IndexConfig::default());
        let ptitle = par.register_field("title", 2.0);
        let pbody = par.register_field("body", 1.0);
        let ids = par.build_parallel(make_docs(ptitle, pbody), threads);
        par.optimize();

        prop_assert_eq!(&ids, &(0..docs.len() as u32).map(DocId).collect::<Vec<_>>());
        prop_assert_eq!(seq.stats(), par.stats());
        // Lexicon: identical term ids in identical first-encounter order.
        prop_assert_eq!(
            seq.lexicon().iter().collect::<Vec<_>>(),
            par.lexicon().iter().collect::<Vec<_>>()
        );
        // Postings: identical compressed bytes per (term, field); score
        // stats identical too.
        for (term, _) in seq.lexicon().iter() {
            for field in [title, body] {
                let a = seq.postings(term, field);
                let b = par.postings(term, field);
                match (a, b) {
                    (None, None) => {}
                    (Some(symphony_text::postings::Postings::Compressed(ca)),
                     Some(symphony_text::postings::Postings::Compressed(cb))) => {
                        prop_assert_eq!(ca.bytes(), cb.bytes());
                    }
                    (a, b) => prop_assert!(
                        false,
                        "postings shape mismatch: {} vs {}",
                        a.is_some(),
                        b.is_some()
                    ),
                }
                prop_assert_eq!(
                    seq.term_score_stats(term, field),
                    par.term_score_stats(term, field)
                );
            }
        }
        // Per-doc field lengths.
        for d in 0..docs.len() as u32 {
            for field in [title, body] {
                prop_assert_eq!(seq.field_len(DocId(d), field), par.field_len(DocId(d), field));
            }
        }
        // Search: identical (doc, score) lists, bit-for-bit.
        for q in ["ab", "aa bb", "+ab cd", "title:ab", "\"ab ab\""] {
            let query = Query::parse(q);
            let a = Searcher::new(&seq).search(&query, 10);
            let b = Searcher::new(&par).search(&query, 10);
            prop_assert_eq!(
                a.iter().map(|h| (h.doc, h.score.to_bits())).collect::<Vec<_>>(),
                b.iter().map(|h| (h.doc, h.score.to_bits())).collect::<Vec<_>>()
            );
        }
    }
}
