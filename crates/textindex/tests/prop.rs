//! Property-based tests for the full-text substrate invariants.

use proptest::prelude::*;
use symphony_text::postings::{CompressedPostings, PostingList};
use symphony_text::{
    Analyzer, Doc, DocId, Index, IndexConfig, Query, ScoreMode, Searcher, SegmentPolicy,
    StandardAnalyzer,
};

/// One step of a random segment-lifecycle schedule for
/// `incremental_equals_rebuild`.
#[derive(Debug, Clone)]
enum LifecycleOp {
    /// Add a doc with this (title, body).
    Add(String, String),
    /// Tombstone doc `i` (no-op when out of range or already dead).
    Delete(u32),
    /// Replace doc `i` with a fresh (title, body) under a new id.
    Update(u32, String, String),
    /// Force-seal the memtable.
    Seal,
    /// One maintenance tick on the schedule's virtual clock.
    Maintain,
}

fn lifecycle_op() -> impl Strategy<Value = LifecycleOp> {
    // Selector-weighted: adds dominate (4/9) so schedules grow a
    // corpus, maintenance ticks are frequent (2/9), and deletes,
    // updates, and explicit seals each get 1/9.
    (
        0u8..9,
        0u32..40,
        "[ab]{2,3}( [ab]{2,3}){0,2}",
        "[ab]{2,3}( [ab]{2,3}){0,6}",
    )
        .prop_map(|(sel, target, t, b)| match sel {
            0..=3 => LifecycleOp::Add(t, b),
            4 => LifecycleOp::Delete(target),
            5 => LifecycleOp::Update(target, t, b),
            6 => LifecycleOp::Seal,
            _ => LifecycleOp::Maintain,
        })
}

/// Strategy: one textual query clause — optional occur prefix, optional
/// field restriction (including an unregistered field), and either a
/// tiny-alphabet token or a quoted phrase so queries actually collide
/// with document vocabulary and exercise the pruned phrase scorer.
fn clause() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just(""), Just("+"), Just("-")],
        prop_oneof![Just(""), Just("title:"), Just("body:"), Just("nosuch:")],
        prop_oneof![
            "[ab]{2,3}".prop_map(|t| t.to_string()),
            "[ab]{2,3}".prop_map(|t| t.to_string()),
            "[ab]{2,3}".prop_map(|t| t.to_string()),
            "[ab]{2,3}( [ab]{2,3}){1,2}".prop_map(|p| format!("\"{p}\"")),
        ],
    )
        .prop_map(|(occur, field, tok)| format!("{occur}{field}{tok}"))
}

/// Strategy: a doc-ordered set of (doc, positions) postings.
fn posting_data() -> impl Strategy<Value = Vec<(u32, Vec<u32>)>> {
    proptest::collection::btree_map(
        0u32..10_000,
        proptest::collection::btree_set(0u32..5_000, 1..20),
        0..50,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(doc, pos)| (doc, pos.into_iter().collect::<Vec<u32>>()))
            .collect()
    })
}

/// Append `v` to `out` as a LEB128 varint (reference implementation).
fn ref_varint_push(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Test-local reference encoder of the pre-packed varint posting
/// layout: per posting, a delta-varint doc id, a varint tf, then
/// delta-varint positions.
fn ref_varint_encode(list: &PostingList) -> Vec<u8> {
    let mut out = Vec::new();
    let mut prev_doc = 0u32;
    for p in list.postings() {
        ref_varint_push(&mut out, p.doc.0 - prev_doc);
        prev_doc = p.doc.0;
        ref_varint_push(&mut out, p.positions.len() as u32);
        let mut prev_pos = 0u32;
        for &pos in &p.positions {
            ref_varint_push(&mut out, pos - prev_pos);
            prev_pos = pos;
        }
    }
    out
}

/// Decode the reference varint stream back into `(doc, positions)`.
fn ref_varint_decode(bytes: &[u8]) -> Vec<(u32, Vec<u32>)> {
    let mut read = {
        let mut at = 0usize;
        move |bytes: &[u8]| -> Option<u32> {
            if at >= bytes.len() {
                return None;
            }
            let mut v = 0u32;
            let mut shift = 0u32;
            loop {
                let b = bytes[at];
                at += 1;
                v |= u32::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    return Some(v);
                }
                shift += 7;
            }
        }
    };
    let mut out = Vec::new();
    let mut doc = 0u32;
    while let Some(delta) = read(bytes) {
        doc += delta;
        let tf = read(bytes).expect("tf follows doc delta");
        let mut positions = Vec::with_capacity(tf as usize);
        let mut pos = 0u32;
        for _ in 0..tf {
            pos += read(bytes).expect("position follows tf");
            positions.push(pos);
        }
        out.push((doc, positions));
    }
    out
}

proptest! {
    /// Varint/delta compression is lossless.
    #[test]
    fn compression_roundtrip(data in posting_data()) {
        let mut list = PostingList::new();
        for (doc, positions) in &data {
            for &p in positions {
                list.push_occurrence(DocId(*doc), p);
            }
        }
        let decoded = CompressedPostings::encode(&list).decode();
        prop_assert_eq!(decoded.postings(), list.postings());
    }

    /// The bit-packed block format decodes to exactly what a reference
    /// varint codec of the old one-posting-at-a-time layout yields:
    /// same docs, same tfs, same positions.
    #[test]
    fn packed_decode_equals_varint_reference(data in posting_data()) {
        let mut list = PostingList::new();
        for (doc, positions) in &data {
            for &p in positions {
                list.push_occurrence(DocId(*doc), p);
            }
        }
        let reference = ref_varint_decode(&ref_varint_encode(&list));
        let packed = CompressedPostings::encode(&list);
        let unpacked: Vec<(u32, Vec<u32>)> = packed
            .decode()
            .postings()
            .iter()
            .map(|p| (p.doc.0, p.positions.clone()))
            .collect();
        prop_assert_eq!(unpacked, reference);
    }

    /// The packed block-skipping cursor agrees with the plain linear
    /// [`RawCursor`] under arbitrary interleavings of `next` and
    /// forward `seek` — same doc ids, tfs, and positions at every step,
    /// and identical exhaustion behavior.
    #[test]
    fn packed_cursor_equals_raw_cursor(
        data in posting_data(),
        ops in proptest::collection::vec((0u8..3, 0u32..11_000), 1..80),
    ) {
        let mut list = PostingList::new();
        for (doc, positions) in &data {
            for &p in positions {
                list.push_occurrence(DocId(*doc), p);
            }
        }
        let packed = CompressedPostings::encode(&list);
        let mut a = packed.cursor();
        let mut b = list.cursor();
        prop_assert_eq!(a.last_doc(), b.last_doc());
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        for (op, target) in ops {
            match op {
                0 => {
                    a.next();
                    b.next();
                }
                1 => {
                    a.seek(target);
                    b.seek(target);
                }
                _ => {
                    // Seek relative to the current doc, so in-block
                    // short hops get exercised, not just far jumps.
                    let t = a.doc().saturating_add(target % 7);
                    a.seek(t);
                    b.seek(t);
                }
            }
            prop_assert_eq!(a.doc(), b.doc());
            if a.doc() != symphony_text::postings::NO_DOC {
                prop_assert_eq!(a.tf(), b.tf());
                a.positions(&mut pa);
                b.positions(&mut pb);
                prop_assert_eq!(&pa, &pb);
            }
        }
    }

    /// Analysis is deterministic and produces terms that re-analyze to
    /// themselves (idempotence of normalization).
    #[test]
    fn analyzer_idempotent(text in "\\PC{0,200}") {
        let an = StandardAnalyzer::new();
        let once = an.analyze(&text);
        for tok in &once {
            let again = an.analyze(&tok.term);
            // A normalized term must analyze to at most one token and,
            // when it survives, to itself.
            prop_assert!(again.len() <= 1);
            if let Some(t) = again.first() {
                prop_assert_eq!(&t.term, &tok.term);
            }
        }
        let twice = an.analyze(&text);
        prop_assert_eq!(once, twice);
    }

    /// Token byte offsets always slice the original text cleanly.
    #[test]
    fn token_offsets_are_valid_slices(text in "\\PC{0,200}") {
        let an = StandardAnalyzer::new();
        for tok in an.analyze(&text) {
            prop_assert!(tok.start < tok.end);
            prop_assert!(tok.end <= text.len());
            prop_assert!(text.is_char_boundary(tok.start));
            prop_assert!(text.is_char_boundary(tok.end));
        }
    }

    /// Every document that a single-term query returns really contains
    /// the term, and scores are positive and sorted.
    #[test]
    fn search_results_sound(
        docs in proptest::collection::vec("[a-z]{1,6}( [a-z]{1,6}){0,10}", 1..20),
        needle in "[a-z]{1,6}",
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        for d in &docs {
            idx.add(Doc::new().field(body, d.clone()));
        }
        let analyzer = StandardAnalyzer::new();
        let hits = Searcher::new(&idx).search(&Query::parse(&needle), docs.len());
        let needle_terms: Vec<String> =
            analyzer.analyze(&needle).into_iter().map(|t| t.term).collect();
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            prop_assert!(h.score > 0.0);
            let text = idx.stored_text(h.doc, body).unwrap();
            let doc_terms: Vec<String> =
                analyzer.analyze(text).into_iter().map(|t| t.term).collect();
            prop_assert!(
                needle_terms.iter().any(|n| doc_terms.contains(n)),
                "doc {:?} ({text:?}) does not contain {needle_terms:?}",
                h.doc
            );
        }
    }

    /// Optimizing (compressing) an index never changes search results.
    #[test]
    fn optimize_preserves_results(
        docs in proptest::collection::vec("[a-z]{1,4}( [a-z]{1,4}){0,6}", 1..15),
        query in "[a-z]{1,4}( [a-z]{1,4}){0,2}",
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        for d in &docs {
            idx.add(Doc::new().field(body, d.clone()));
        }
        let q = Query::parse(&query);
        let before = Searcher::new(&idx).search(&q, 100);
        idx.optimize();
        let after = Searcher::new(&idx).search(&q, 100);
        prop_assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert!((a.score - b.score).abs() < 1e-5);
        }
    }

    /// Rank safety of MaxScore pruning: the pruned executor returns the
    /// exact `(doc, score)` list of the exhaustive one — same docs,
    /// bit-identical scores, same tie-break order — across random
    /// corpora, query shapes (should/must/must-not, field-restricted,
    /// unknown fields), k values, index states (raw, optimized, mixed
    /// raw+compressed with stale bounds, tombstoned docs), and filters.
    #[test]
    fn pruned_equals_exhaustive(
        docs in proptest::collection::vec(
            ("[ab]{2,3}( [ab]{2,3}){0,2}", "[ab]{2,3}( [ab]{2,3}){0,8}"),
            1..25,
        ),
        clauses in proptest::collection::vec(clause(), 1..5),
        k in 1usize..8,
        optimize in 0u8..2,
        delete_first in 0u8..2,
        add_after in 0u8..2,
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let title = idx.register_field("title", 2.0);
        let body = idx.register_field("body", 1.0);
        for (t, b) in &docs {
            idx.add(Doc::new().field(title, t.clone()).field(body, b.clone()));
        }
        if delete_first == 1 {
            idx.delete(DocId(0));
        }
        if optimize == 1 {
            idx.optimize();
            if add_after == 1 {
                // Mixed segments: re-expanded lists + stale score stats.
                idx.add(Doc::new().field(title, "ab ba").field(body, "aa bb ab aba"));
            }
        }
        let q = Query::parse(&clauses.join(" "));
        let pruned = Searcher::new(&idx).search(&q, k);
        let exhaustive = Searcher::new(&idx)
            .with_mode(ScoreMode::Exhaustive)
            .search(&q, k);
        prop_assert_eq!(pruned, exhaustive);

        let filter = |d: DocId| d.0.is_multiple_of(2);
        let pruned = Searcher::new(&idx).search_filtered(&q, k, filter);
        let exhaustive = Searcher::new(&idx)
            .with_mode(ScoreMode::Exhaustive)
            .search_filtered(&q, k, filter);
        prop_assert_eq!(pruned, exhaustive);
    }

    /// Rank safety of the filter-cursor pushdown: for a random corpus,
    /// query, and allowed doc-id set, `search_docset` (the non-scoring
    /// conjunctive [`DocSet`] cursor riding the MaxScore executor)
    /// returns the exact `(doc, score)` list of the closure-filtered
    /// path, in both executors — four-way bit-identical. The set's
    /// density is drawn wide enough to cover both the sorted-vec and
    /// bitset representations.
    #[test]
    fn filter_cursor_equals_closure(
        docs in proptest::collection::vec(
            ("[ab]{2,3}( [ab]{2,3}){0,2}", "[ab]{2,3}( [ab]{2,3}){0,8}"),
            1..25,
        ),
        clauses in proptest::collection::vec(clause(), 1..5),
        k in 1usize..8,
        allowed_mask in proptest::collection::vec(any::<bool>(), 25..26),
        optimize in 0u8..2,
        delete_first in 0u8..2,
    ) {
        let mut idx = Index::new(IndexConfig::default());
        let title = idx.register_field("title", 2.0);
        let body = idx.register_field("body", 1.0);
        for (t, b) in &docs {
            idx.add(Doc::new().field(title, t.clone()).field(body, b.clone()));
        }
        if delete_first == 1 {
            idx.delete(DocId(0));
        }
        if optimize == 1 {
            idx.optimize();
        }
        let allowed: Vec<u32> = (0..docs.len() as u32)
            .filter(|&d| allowed_mask[d as usize])
            .collect();
        let set = symphony_text::DocSet::from_sorted(allowed.clone());
        let q = Query::parse(&clauses.join(" "));

        let via_set = Searcher::new(&idx).search_docset(&q, k, &set);
        let via_set_ex = Searcher::new(&idx)
            .with_mode(ScoreMode::Exhaustive)
            .search_docset(&q, k, &set);
        let closure = |d: DocId| allowed.binary_search(&d.0).is_ok();
        let via_closure = Searcher::new(&idx).search_filtered(&q, k, closure);
        let via_closure_ex = Searcher::new(&idx)
            .with_mode(ScoreMode::Exhaustive)
            .search_filtered(&q, k, closure);

        let key = |hits: &[symphony_text::SearchHit]| {
            hits.iter().map(|h| (h.doc, h.score.to_bits())).collect::<Vec<_>>()
        };
        prop_assert_eq!(key(&via_set), key(&via_closure));
        prop_assert_eq!(key(&via_set), key(&via_set_ex));
        prop_assert_eq!(key(&via_set), key(&via_closure_ex));
    }

    /// Query parser never panics and Display output reparses to the
    /// same clause structure.
    #[test]
    fn query_parse_total(input in "\\PC{0,100}") {
        let q = Query::parse(&input);
        let reparsed = Query::parse(&q.to_string());
        // Reparse of canonical form is a fixpoint.
        prop_assert_eq!(Query::parse(&reparsed.to_string()), reparsed);
    }

    /// The segmented parallel build is bit-identical to a sequential
    /// build: same lexicon (ids and strings), same postings bytes after
    /// `optimize()`, same score-bound stats, same `(doc, score)` search
    /// results — over random docs, fields, and thread counts 1..=8.
    #[test]
    fn built_parallel_equals_sequential(
        docs in proptest::collection::vec(
            ("[ab]{2,4}( [abc]{1,4}){0,3}", "[a-d]{1,5}( [a-d]{1,5}){0,8}"),
            0..40,
        ),
        threads in 1usize..9,
    ) {
        let make_docs = |title: symphony_text::FieldId, body: symphony_text::FieldId| {
            docs.iter()
                .map(|(t, b)| Doc::new().field(title, t.clone()).field(body, b.clone()))
                .collect::<Vec<Doc>>()
        };
        let mut seq = Index::new(IndexConfig::default());
        let title = seq.register_field("title", 2.0);
        let body = seq.register_field("body", 1.0);
        for d in make_docs(title, body) {
            seq.add(d);
        }
        seq.optimize();

        let mut par = Index::new(IndexConfig::default());
        let ptitle = par.register_field("title", 2.0);
        let pbody = par.register_field("body", 1.0);
        let ids = par.build_parallel(make_docs(ptitle, pbody), threads);
        par.optimize();

        prop_assert_eq!(&ids, &(0..docs.len() as u32).map(DocId).collect::<Vec<_>>());
        prop_assert_eq!(seq.stats(), par.stats());
        // Lexicon: identical term ids in identical first-encounter order.
        prop_assert_eq!(
            seq.lexicon().iter().collect::<Vec<_>>(),
            par.lexicon().iter().collect::<Vec<_>>()
        );
        // Postings: identical compressed bytes per (term, field) in the
        // fully-compacted segment; score stats identical too.
        for (term, _) in seq.lexicon().iter() {
            for field in [title, body] {
                let a = seq.compacted_postings(term, field);
                let b = par.compacted_postings(term, field);
                match (a, b) {
                    (None, None) => {}
                    (Some(ca), Some(cb)) => prop_assert_eq!(ca.bytes(), cb.bytes()),
                    (a, b) => prop_assert!(
                        false,
                        "postings shape mismatch: {} vs {}",
                        a.is_some(),
                        b.is_some()
                    ),
                }
                prop_assert_eq!(
                    seq.term_score_stats(term, field),
                    par.term_score_stats(term, field)
                );
            }
        }
        // Per-doc field lengths.
        for d in 0..docs.len() as u32 {
            for field in [title, body] {
                prop_assert_eq!(seq.field_len(DocId(d), field), par.field_len(DocId(d), field));
            }
        }
        // Search: identical (doc, score) lists, bit-for-bit.
        for q in ["ab", "aa bb", "+ab cd", "title:ab", "\"ab ab\""] {
            let query = Query::parse(q);
            let a = Searcher::new(&seq).search(&query, 10);
            let b = Searcher::new(&par).search(&query, 10);
            prop_assert_eq!(
                a.iter().map(|h| (h.doc, h.score.to_bits())).collect::<Vec<_>>(),
                b.iter().map(|h| (h.doc, h.score.to_bits())).collect::<Vec<_>>()
            );
        }
    }

    /// Differential proof of the segment lifecycle: ANY interleaving of
    /// add/delete/update/seal/maintain, once fully compacted, yields
    /// `(doc, score)` lists **bit-identical** to a from-scratch
    /// `build_parallel` of the surviving documents — across thread
    /// counts, under filters, in both executors. Tombstone purge, df
    /// and stats rebuild, live-corpus idf, and rank-safe pruning over
    /// mixed segments all have to be exact for this to hold (doc ids
    /// are compared through the order-preserving live-ordinal map,
    /// scores bit-for-bit).
    #[test]
    fn incremental_equals_rebuild(
        ops in proptest::collection::vec(lifecycle_op(), 1..40),
        threads in 1usize..9,
    ) {
        // Aggressive policy so short schedules still exercise seals and
        // tiered merges.
        let policy = SegmentPolicy {
            memtable_max_docs: 3,
            staleness_window_ms: 50,
            merge_fanin: 2,
            near_real_time: false,
        };
        let mut idx = Index::with_policy(IndexConfig::default(), policy);
        let title = idx.register_field("title", 2.0);
        let body = idx.register_field("body", 1.0);
        // Shadow model: doc id -> its (title, body) while live.
        let mut model: Vec<Option<(String, String)>> = Vec::new();
        let mut clock = 0u64;
        for op in &ops {
            match op {
                LifecycleOp::Add(t, b) => {
                    let id = idx.add(Doc::new().field(title, t.clone()).field(body, b.clone()));
                    prop_assert_eq!(id.as_usize(), model.len());
                    model.push(Some((t.clone(), b.clone())));
                }
                LifecycleOp::Delete(i) => {
                    let expect = (*i as usize) < model.len() && model[*i as usize].is_some();
                    prop_assert_eq!(idx.delete(DocId(*i)), expect);
                    if expect {
                        model[*i as usize] = None;
                    }
                }
                LifecycleOp::Update(i, t, b) => {
                    let live = (*i as usize) < model.len() && model[*i as usize].is_some();
                    let got = idx.update(
                        DocId(*i),
                        Doc::new().field(title, t.clone()).field(body, b.clone()),
                    );
                    prop_assert_eq!(got.is_some(), live);
                    if live {
                        prop_assert_eq!(got.unwrap().as_usize(), model.len());
                        model[*i as usize] = None;
                        model.push(Some((t.clone(), b.clone())));
                    }
                }
                LifecycleOp::Seal => {
                    idx.seal();
                }
                LifecycleOp::Maintain => {
                    clock += 37;
                    idx.maintain(clock);
                }
            }
        }

        let queries = ["aa", "ab ba", "+ab aa", "ab -ba", "title:ab", "aa bb ab"];

        // Mid-lifecycle (mixed memtable + sealed segments, pending
        // tombstones): the two executors must already agree.
        for q in queries {
            let query = Query::parse(q);
            let pruned = Searcher::new(&idx).search(&query, 7);
            let exhaustive = Searcher::new(&idx)
                .with_mode(ScoreMode::Exhaustive)
                .search(&query, 7);
            prop_assert_eq!(pruned, exhaustive, "mixed-segment executors disagree on {}", q);
        }

        // Full compaction, then rebuild the live corpus from scratch.
        idx.optimize();
        let live_ids: Vec<u32> = model
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|_| i as u32))
            .collect();
        let mut rebuilt = Index::new(IndexConfig::default());
        let rtitle = rebuilt.register_field("title", 2.0);
        let rbody = rebuilt.register_field("body", 1.0);
        let live_docs: Vec<Doc> = model
            .iter()
            .flatten()
            .map(|(t, b)| Doc::new().field(rtitle, t.clone()).field(rbody, b.clone()))
            .collect();
        rebuilt.build_parallel(live_docs, threads);
        rebuilt.optimize();

        prop_assert_eq!(idx.live_docs(), rebuilt.live_docs());
        // Doc ids differ (the incremental index has holes where purged
        // docs sat), so hits are compared through the order-preserving
        // live-ordinal map; scores must match bit-for-bit.
        let ordinal = |d: DocId| live_ids.binary_search(&d.0).map(|i| i as u32);
        for q in queries {
            let query = Query::parse(q);
            let a = Searcher::new(&idx).search(&query, 50);
            let b = Searcher::new(&rebuilt).search(&query, 50);
            let a_mapped: Vec<(u32, u32)> = a
                .iter()
                .map(|h| (ordinal(h.doc).expect("hit must be live"), h.score.to_bits()))
                .collect();
            let b_mapped: Vec<(u32, u32)> =
                b.iter().map(|h| (h.doc.0, h.score.to_bits())).collect();
            prop_assert_eq!(a_mapped, b_mapped, "rebuild mismatch on {} ops={:?}", q, ops);

            // Same check under a caller filter (expressed in live
            // ordinals so both indexes accept the same documents).
            let fa = Searcher::new(&idx)
                .search_filtered(&query, 50, |d| ordinal(d).is_ok_and(|i| i % 2 == 0));
            let fb = Searcher::new(&rebuilt)
                .search_filtered(&query, 50, |d| d.0.is_multiple_of(2));
            prop_assert_eq!(
                fa.iter()
                    .map(|h| (ordinal(h.doc).unwrap(), h.score.to_bits()))
                    .collect::<Vec<_>>(),
                fb.iter().map(|h| (h.doc.0, h.score.to_bits())).collect::<Vec<_>>(),
                "filtered rebuild mismatch on {}",
                q
            );
        }
    }
}
