//! Positional posting lists.
//!
//! Two representations are provided:
//!
//! * [`PostingList`] — the mutable, indexing-time representation: a
//!   doc-ordered `Vec` of postings, each carrying its positions.
//! * [`CompressedPostings`] — an immutable varint/delta-encoded byte
//!   stream produced by [`Index::optimize`](crate::Index::optimize).
//!
//! Both are consumed through the callback-style [`Postings::for_each`],
//! which sidesteps lending-iterator gymnastics and keeps decoding
//! allocation-free on the hot path (the decoder reuses one scratch
//! buffer across postings).
//!
//! The compressed form exists for the E3 ablation in DESIGN.md: it
//! trades decode CPU for memory footprint, which matters once the
//! simulated web corpus reaches hundreds of thousands of pages.

use crate::DocId;

/// One document's entry in a posting list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Term positions within the field, strictly increasing. The term
    /// frequency is `positions.len()`.
    pub positions: Vec<u32>,
}

/// Mutable doc-ordered posting list.
#[derive(Debug, Default, Clone)]
pub struct PostingList {
    postings: Vec<Posting>,
}

impl PostingList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an occurrence of the term in `doc` at `position`.
    ///
    /// Documents must be added in increasing doc-id order (the index
    /// guarantees this: doc ids are assigned at insertion).
    pub fn push_occurrence(&mut self, doc: DocId, position: u32) {
        match self.postings.last_mut() {
            Some(last) if last.doc == doc => last.positions.push(position),
            Some(last) => {
                debug_assert!(last.doc < doc, "postings must be appended in doc order");
                self.postings.push(Posting {
                    doc,
                    positions: vec![position],
                });
            }
            None => self.postings.push(Posting {
                doc,
                positions: vec![position],
            }),
        }
    }

    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        self.postings.len()
    }

    /// Borrow the raw postings.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Approximate heap size in bytes (for the E3 space ablation).
    pub fn heap_bytes(&self) -> usize {
        self.postings.capacity() * std::mem::size_of::<Posting>()
            + self
                .postings
                .iter()
                .map(|p| p.positions.capacity() * 4)
                .sum::<usize>()
    }
}

/// Immutable varint/delta-compressed posting list.
///
/// Layout per posting: `delta(doc)` `tf` `delta(pos)*tf`, all LEB128
/// varints. Doc deltas are relative to the previous posting's doc id
/// (first is absolute + 1 to keep zero unused); position deltas are
/// relative within the posting.
#[derive(Debug, Clone, Default)]
pub struct CompressedPostings {
    data: Vec<u8>,
    doc_count: u32,
}

impl CompressedPostings {
    /// Compress a raw list.
    pub fn encode(list: &PostingList) -> Self {
        let mut data = Vec::with_capacity(list.postings.len() * 3);
        let mut prev_doc = 0u32;
        let mut first = true;
        for p in &list.postings {
            let delta = if first {
                first = false;
                p.doc.0.wrapping_add(1)
            } else {
                p.doc.0 - prev_doc
            };
            prev_doc = p.doc.0;
            write_varint(&mut data, delta);
            write_varint(&mut data, p.positions.len() as u32);
            let mut prev_pos = 0u32;
            for (i, &pos) in p.positions.iter().enumerate() {
                let d = if i == 0 { pos } else { pos - prev_pos };
                prev_pos = pos;
                write_varint(&mut data, d);
            }
        }
        CompressedPostings {
            data,
            doc_count: list.postings.len() as u32,
        }
    }

    /// Decode back into a raw list (used by tests and by re-indexing).
    pub fn decode(&self) -> PostingList {
        let mut list = PostingList::new();
        self.for_each(|doc, positions| {
            for &p in positions {
                list.push_occurrence(doc, p);
            }
        });
        list
    }

    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        self.doc_count as usize
    }

    /// Compressed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Visit every posting, reusing one scratch buffer for positions.
    pub fn for_each(&self, mut f: impl FnMut(DocId, &[u32])) {
        let mut cursor = 0usize;
        let mut doc = 0u32;
        let mut first = true;
        let mut positions: Vec<u32> = Vec::with_capacity(8);
        while cursor < self.data.len() {
            let delta = read_varint(&self.data, &mut cursor);
            doc = if first {
                first = false;
                delta.wrapping_sub(1)
            } else {
                doc + delta
            };
            let tf = read_varint(&self.data, &mut cursor);
            positions.clear();
            let mut pos = 0u32;
            for i in 0..tf {
                let d = read_varint(&self.data, &mut cursor);
                pos = if i == 0 { d } else { pos + d };
                positions.push(pos);
            }
            f(DocId(doc), &positions);
        }
    }
}

/// A posting list in either representation.
#[derive(Debug, Clone)]
pub enum Postings {
    /// Indexing-time representation.
    Raw(PostingList),
    /// Optimized representation.
    Compressed(CompressedPostings),
}

impl Postings {
    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        match self {
            Postings::Raw(l) => l.doc_count(),
            Postings::Compressed(c) => c.doc_count(),
        }
    }

    /// Visit every `(doc, positions)` pair in doc order.
    pub fn for_each(&self, mut f: impl FnMut(DocId, &[u32])) {
        match self {
            Postings::Raw(l) => {
                for p in l.postings() {
                    f(p.doc, &p.positions);
                }
            }
            Postings::Compressed(c) => c.for_each(f),
        }
    }

    /// Approximate heap bytes of this representation (E3 ablation).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Postings::Raw(l) => l.heap_bytes(),
            Postings::Compressed(c) => c.byte_len(),
        }
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], cursor: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = data[*cursor];
        *cursor += 1;
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PostingList {
        let mut l = PostingList::new();
        l.push_occurrence(DocId(0), 0);
        l.push_occurrence(DocId(0), 5);
        l.push_occurrence(DocId(3), 2);
        l.push_occurrence(DocId(300), 1);
        l.push_occurrence(DocId(300), 9);
        l.push_occurrence(DocId(300), 100);
        l
    }

    #[test]
    fn push_merges_same_doc_occurrences() {
        let l = sample();
        assert_eq!(l.doc_count(), 3);
        assert_eq!(l.postings()[0].positions, vec![0, 5]);
    }

    #[test]
    fn compression_roundtrip() {
        let l = sample();
        let c = CompressedPostings::encode(&l);
        assert_eq!(c.doc_count(), 3);
        let back = c.decode();
        assert_eq!(back.postings(), l.postings());
    }

    #[test]
    fn roundtrip_with_doc_zero_only() {
        let mut l = PostingList::new();
        l.push_occurrence(DocId(0), 7);
        let back = CompressedPostings::encode(&l).decode();
        assert_eq!(back.postings(), l.postings());
    }

    #[test]
    fn empty_list_roundtrip() {
        let l = PostingList::new();
        let c = CompressedPostings::encode(&l);
        assert_eq!(c.doc_count(), 0);
        assert_eq!(c.byte_len(), 0);
        assert_eq!(c.decode().doc_count(), 0);
    }

    #[test]
    fn compressed_is_smaller_for_clustered_docs() {
        let mut l = PostingList::new();
        for d in 0..1000u32 {
            l.push_occurrence(DocId(d), 3);
        }
        let c = CompressedPostings::encode(&l);
        assert!(c.byte_len() < l.heap_bytes());
    }

    #[test]
    fn for_each_visits_in_doc_order() {
        let l = sample();
        let mut docs = Vec::new();
        Postings::Raw(l.clone()).for_each(|d, _| docs.push(d.0));
        assert_eq!(docs, vec![0, 3, 300]);
        docs.clear();
        Postings::Compressed(CompressedPostings::encode(&l)).for_each(|d, _| docs.push(d.0));
        assert_eq!(docs, vec![0, 3, 300]);
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 127, 128, 16383, 16384, u32::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            let mut c = 0;
            assert_eq!(read_varint(&buf, &mut c), v);
            assert_eq!(c, buf.len());
        }
    }
}
