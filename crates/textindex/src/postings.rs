//! Positional posting lists.
//!
//! Two representations are provided:
//!
//! * [`PostingList`] — the mutable, indexing-time representation: a
//!   doc-ordered `Vec` of postings, each carrying its positions.
//! * [`CompressedPostings`] — an immutable varint/delta-encoded byte
//!   stream produced by [`Index::optimize`](crate::Index::optimize),
//!   carved into blocks of [`BLOCK_SIZE`] documents. Each block records
//!   its last doc id, its decoder entry state, its byte offset, and its
//!   largest term frequency, which lets a [`PostingsCursor`] skip whole
//!   blocks during [`PostingsCursor::seek`].
//!
//! Exhaustive consumers use the callback-style [`Postings::for_each`],
//! which sidesteps lending-iterator gymnastics and keeps decoding
//! allocation-free on the hot path (the decoder reuses one scratch
//! buffer across postings). The document-at-a-time query executor
//! instead opens a [`PostingsCursor`] per list (`doc` / `next` /
//! `seek`) and never materializes positions.
//!
//! The compressed form exists for the E3 ablation in DESIGN.md: it
//! trades decode CPU for memory footprint, which matters once the
//! simulated web corpus reaches hundreds of thousands of pages.

use crate::DocId;

/// Documents per skip block in [`CompressedPostings`].
pub const BLOCK_SIZE: usize = 128;

/// Sentinel doc value a [`PostingsCursor`] reports once exhausted.
/// Real doc ids are dense from zero, so `u32::MAX` is never a valid
/// document in any index this substrate can build.
pub const NO_DOC: u32 = u32::MAX;

/// One document's entry in a posting list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Term positions within the field, strictly increasing. The term
    /// frequency is `positions.len()`.
    pub positions: Vec<u32>,
}

/// Mutable doc-ordered posting list.
#[derive(Debug, Default, Clone)]
pub struct PostingList {
    postings: Vec<Posting>,
}

impl PostingList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an occurrence of the term in `doc` at `position`.
    ///
    /// Documents must be added in increasing doc-id order (the index
    /// guarantees this: doc ids are assigned at insertion).
    pub fn push_occurrence(&mut self, doc: DocId, position: u32) {
        match self.postings.last_mut() {
            Some(last) if last.doc == doc => last.positions.push(position),
            Some(last) => {
                debug_assert!(last.doc < doc, "postings must be appended in doc order");
                self.postings.push(Posting {
                    doc,
                    positions: vec![position],
                });
            }
            None => self.postings.push(Posting {
                doc,
                positions: vec![position],
            }),
        }
    }

    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        self.postings.len()
    }

    /// Concatenate `other` onto the end of this list. The caller must
    /// guarantee every doc id in `other` is greater than every doc id
    /// here — segment merges satisfy this by construction because
    /// segments hold contiguous, increasing doc-id ranges.
    pub fn append(&mut self, mut other: PostingList) {
        if let (Some(last), Some(first)) = (self.postings.last(), other.postings.first()) {
            debug_assert!(
                last.doc < first.doc,
                "segment posting lists must concatenate in doc order"
            );
        }
        self.postings.append(&mut other.postings);
    }

    /// Borrow the raw postings.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Open a document-at-a-time cursor positioned on the first
    /// posting.
    pub fn cursor(&self) -> RawCursor<'_> {
        RawCursor {
            postings: &self.postings,
            idx: 0,
        }
    }

    /// Approximate heap size in bytes (for the E3 space ablation).
    pub fn heap_bytes(&self) -> usize {
        self.postings.capacity() * std::mem::size_of::<Posting>()
            + self
                .postings
                .iter()
                .map(|p| p.positions.capacity() * 4)
                .sum::<usize>()
    }
}

/// Skip metadata for one block of [`BLOCK_SIZE`] postings.
#[derive(Debug, Clone)]
struct BlockMeta {
    /// Doc id of the block's last posting: a `seek(target)` may skip
    /// the whole block when `max_doc < target`.
    max_doc: u32,
    /// Decoder doc-state on block entry (the previous block's last doc
    /// id, or `u32::MAX` for the first block so that the uniform
    /// `state.wrapping_add(delta)` recovers the absolute first doc).
    prev_doc: u32,
    /// Byte offset of the block's first posting in `data`.
    offset: u32,
    /// Largest term frequency among the block's postings.
    max_tf: u32,
}

/// Immutable varint/delta-compressed posting list with skip blocks.
///
/// Layout per posting: `delta(doc)` `tf` `delta(pos)*tf`, all LEB128
/// varints. Doc deltas are relative to the previous posting's doc id
/// (first is absolute + 1 to keep zero unused); position deltas are
/// relative within the posting. Every [`BLOCK_SIZE`] postings a
/// [`BlockMeta`] records the decoder state at the block boundary, so a
/// cursor can re-enter the stream mid-list without decoding the prefix.
#[derive(Debug, Clone, Default)]
pub struct CompressedPostings {
    data: Vec<u8>,
    doc_count: u32,
    blocks: Vec<BlockMeta>,
    max_tf: u32,
}

impl CompressedPostings {
    /// Compress a raw list.
    pub fn encode(list: &PostingList) -> Self {
        let mut data = Vec::with_capacity(list.postings.len() * 3);
        let mut blocks: Vec<BlockMeta> =
            Vec::with_capacity(list.postings.len().div_ceil(BLOCK_SIZE));
        let mut max_tf = 0u32;
        let mut prev_doc = 0u32;
        let mut first = true;
        for (i, p) in list.postings.iter().enumerate() {
            if i % BLOCK_SIZE == 0 {
                blocks.push(BlockMeta {
                    max_doc: p.doc.0,
                    prev_doc: if first { u32::MAX } else { prev_doc },
                    offset: data.len() as u32,
                    max_tf: 0,
                });
            }
            let delta = if first {
                first = false;
                p.doc.0.wrapping_add(1)
            } else {
                p.doc.0 - prev_doc
            };
            prev_doc = p.doc.0;
            let tf = p.positions.len() as u32;
            let block = blocks.last_mut().expect("block pushed above");
            block.max_doc = p.doc.0;
            block.max_tf = block.max_tf.max(tf);
            max_tf = max_tf.max(tf);
            write_varint(&mut data, delta);
            write_varint(&mut data, tf);
            let mut prev_pos = 0u32;
            for (i, &pos) in p.positions.iter().enumerate() {
                let d = if i == 0 { pos } else { pos - prev_pos };
                prev_pos = pos;
                write_varint(&mut data, d);
            }
        }
        CompressedPostings {
            data,
            doc_count: list.postings.len() as u32,
            blocks,
            max_tf,
        }
    }

    /// Decode back into a raw list (used by tests and by re-indexing).
    pub fn decode(&self) -> PostingList {
        let mut list = PostingList::new();
        self.for_each(|doc, positions| {
            for &p in positions {
                list.push_occurrence(doc, p);
            }
        });
        list
    }

    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        self.doc_count as usize
    }

    /// Compressed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// The raw varint/delta byte stream (the determinism tests assert
    /// parallel and sequential builds produce bit-identical streams).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Largest term frequency across the whole list.
    pub fn max_tf(&self) -> u32 {
        self.max_tf
    }

    /// Open a document-at-a-time cursor positioned on the first
    /// posting.
    pub fn cursor(&self) -> CompressedCursor<'_> {
        let mut c = CompressedCursor {
            post: self,
            pos: 0,
            decoded: 0,
            doc: u32::MAX,
            tf: 0,
        };
        c.next();
        c
    }

    /// Visit every posting, reusing one scratch buffer for positions.
    pub fn for_each(&self, mut f: impl FnMut(DocId, &[u32])) {
        let mut cursor = 0usize;
        let mut doc = 0u32;
        let mut first = true;
        let mut positions: Vec<u32> = Vec::with_capacity(8);
        while cursor < self.data.len() {
            let delta = read_varint(&self.data, &mut cursor);
            doc = if first {
                first = false;
                delta.wrapping_sub(1)
            } else {
                doc + delta
            };
            let tf = read_varint(&self.data, &mut cursor);
            positions.clear();
            let mut pos = 0u32;
            for i in 0..tf {
                let d = read_varint(&self.data, &mut cursor);
                pos = if i == 0 { d } else { pos + d };
                positions.push(pos);
            }
            f(DocId(doc), &positions);
        }
    }
}

/// Document-at-a-time cursor over a [`CompressedPostings`] stream.
///
/// Decodes one posting at a time (doc id + term frequency, skipping
/// position payloads) and uses the block directory to leap over runs of
/// documents during [`CompressedCursor::seek`].
#[derive(Debug, Clone)]
pub struct CompressedCursor<'a> {
    post: &'a CompressedPostings,
    /// Byte offset of the next undecoded posting.
    pos: usize,
    /// Postings decoded so far; the current posting is `decoded - 1`.
    decoded: u32,
    /// Current doc id, or [`NO_DOC`] once exhausted. Doubles as the
    /// delta-decoder state (`u32::MAX` before the first decode, which
    /// makes `state.wrapping_add(delta)` uniform across postings).
    doc: u32,
    /// Current term frequency.
    tf: u32,
}

impl CompressedCursor<'_> {
    /// Current doc id, or [`NO_DOC`] when exhausted.
    pub fn doc(&self) -> u32 {
        self.doc
    }

    /// Term frequency of the current posting.
    pub fn tf(&self) -> u32 {
        self.tf
    }

    /// Doc id of the list's final posting (independent of cursor
    /// position); [`NO_DOC`] for an empty list. Read from the block
    /// directory, so no decoding happens.
    pub fn last_doc(&self) -> u32 {
        self.post.blocks.last().map_or(NO_DOC, |b| b.max_doc)
    }

    /// Largest term frequency in the block holding the current posting
    /// (the whole-list maximum once exhausted). Block-local bounds let
    /// future block-max refinements tighten the global score bound.
    pub fn block_max_tf(&self) -> u32 {
        if self.doc == NO_DOC || self.decoded == 0 {
            return self.post.max_tf;
        }
        let block = (self.decoded as usize - 1) / BLOCK_SIZE;
        self.post.blocks[block].max_tf
    }

    /// Advance to the next posting.
    pub fn next(&mut self) {
        if self.decoded >= self.post.doc_count {
            self.doc = NO_DOC;
            return;
        }
        let data = &self.post.data;
        let delta = read_varint(data, &mut self.pos);
        self.doc = self.doc.wrapping_add(delta);
        self.tf = read_varint(data, &mut self.pos);
        for _ in 0..self.tf {
            read_varint(data, &mut self.pos);
        }
        self.decoded += 1;
    }

    /// Advance to the first posting with `doc >= target` (no-op when
    /// already there). Skips whole blocks via the block directory
    /// before scanning within the destination block.
    pub fn seek(&mut self, target: u32) {
        if self.doc >= target {
            // Covers exhaustion too: NO_DOC >= any target.
            return;
        }
        // Current block index; the cursor has decoded >= 1 postings
        // here (doc() < target < NO_DOC implies a current posting).
        let cur_block = (self.decoded as usize - 1) / BLOCK_SIZE;
        if self.post.blocks[cur_block].max_doc < target {
            // Binary-search the block directory for the first block
            // that can contain `target`.
            let blocks = &self.post.blocks;
            let dest =
                cur_block + 1 + blocks[cur_block + 1..].partition_point(|b| b.max_doc < target);
            if dest >= blocks.len() {
                self.doc = NO_DOC;
                self.decoded = self.post.doc_count;
                self.pos = self.post.data.len();
                return;
            }
            self.pos = blocks[dest].offset as usize;
            self.doc = blocks[dest].prev_doc;
            self.decoded = (dest * BLOCK_SIZE) as u32;
            self.next();
        }
        while self.doc < target {
            self.next();
        }
    }
}

/// Document-at-a-time cursor over a raw [`PostingList`].
#[derive(Debug, Clone)]
pub struct RawCursor<'a> {
    postings: &'a [Posting],
    idx: usize,
}

impl RawCursor<'_> {
    /// Current doc id, or [`NO_DOC`] when exhausted.
    pub fn doc(&self) -> u32 {
        match self.postings.get(self.idx) {
            Some(p) => p.doc.0,
            None => NO_DOC,
        }
    }

    /// Doc id of the list's final posting (independent of cursor
    /// position); [`NO_DOC`] for an empty list.
    pub fn last_doc(&self) -> u32 {
        self.postings.last().map_or(NO_DOC, |p| p.doc.0)
    }

    /// Term frequency of the current posting.
    pub fn tf(&self) -> u32 {
        self.postings[self.idx].positions.len() as u32
    }

    /// Advance to the next posting.
    pub fn next(&mut self) {
        self.idx += 1;
    }

    /// Advance to the first posting with `doc >= target`.
    pub fn seek(&mut self, target: u32) {
        if self.doc() >= target {
            return;
        }
        self.idx += 1 + self.postings[self.idx + 1..].partition_point(|p| p.doc.0 < target);
    }
}

/// A cursor chaining several per-segment cursors into one logical
/// doc-ordered stream.
///
/// The segment-lifecycle index stores one posting list per segment for
/// a given `(term, field)`; segments cover disjoint, strictly
/// increasing doc-id ranges, so simple concatenation — no merge heap —
/// preserves global doc order. [`ChainedCursor::seek`] skips whole
/// parts by comparing against each part's [`last_doc`] (a block-
/// directory read for compressed parts, so skipped segments are never
/// decoded).
///
/// [`last_doc`]: PostingsCursor::last_doc
#[derive(Debug, Clone)]
pub struct ChainedCursor<'a> {
    /// Per-segment cursors in segment (hence doc) order. Every part is
    /// non-empty and positioned on its first posting at construction.
    parts: Vec<PostingsCursor<'a>>,
    idx: usize,
}

impl<'a> ChainedCursor<'a> {
    /// Chain per-segment cursors. Callers must pass at least one
    /// cursor, each freshly positioned on a non-empty list, with
    /// strictly increasing doc ranges (part `i`'s last doc is below
    /// part `i + 1`'s first doc).
    pub fn new(parts: Vec<PostingsCursor<'a>>) -> Self {
        debug_assert!(!parts.is_empty(), "chained cursor needs at least one part");
        debug_assert!(parts.iter().all(|p| p.doc() != NO_DOC));
        debug_assert!(parts.windows(2).all(|w| w[0].last_doc() < w[1].doc()));
        ChainedCursor { parts, idx: 0 }
    }

    /// Current doc id, or [`NO_DOC`] when every part is exhausted.
    #[inline]
    pub fn doc(&self) -> u32 {
        self.parts[self.idx].doc()
    }

    /// Term frequency of the current posting.
    #[inline]
    pub fn tf(&self) -> u32 {
        self.parts[self.idx].tf()
    }

    /// Doc id of the final posting across all parts.
    pub fn last_doc(&self) -> u32 {
        self.parts.last().map_or(NO_DOC, |p| p.last_doc())
    }

    /// Advance to the next posting, falling through to the next part
    /// when the current one is exhausted (fresh parts are already
    /// positioned on their first posting).
    pub fn next(&mut self) {
        self.parts[self.idx].next();
        if self.parts[self.idx].doc() == NO_DOC && self.idx + 1 < self.parts.len() {
            self.idx += 1;
        }
    }

    /// Advance to the first posting with `doc >= target`. Parts whose
    /// `last_doc` is below the target are skipped whole — for
    /// compressed parts that is a metadata comparison, no decoding.
    pub fn seek(&mut self, target: u32) {
        if self.parts[self.idx].doc() >= target {
            // Covers exhaustion too: NO_DOC >= any target.
            return;
        }
        while self.idx + 1 < self.parts.len() && self.parts[self.idx].last_doc() < target {
            self.idx += 1;
        }
        // Either this part contains a doc >= target (last_doc bound),
        // or it is the final part and seeking exhausts the chain.
        self.parts[self.idx].seek(target);
    }
}

/// A document-at-a-time cursor over either posting representation.
///
/// The cursor walks doc ids and term frequencies in increasing doc
/// order; positions are never materialized, which is what makes the
/// DAAT scoring loop allocation-free. After the last posting,
/// [`PostingsCursor::doc`] reports [`NO_DOC`] (which compares greater
/// than every real doc id, so `seek`/min-merge loops need no special
/// casing).
#[derive(Debug, Clone)]
pub enum PostingsCursor<'a> {
    /// Cursor over the indexing-time representation.
    Raw(RawCursor<'a>),
    /// Cursor over the optimized block-compressed representation.
    Compressed(CompressedCursor<'a>),
    /// Concatenation of per-segment cursors over disjoint increasing
    /// doc ranges.
    Chained(ChainedCursor<'a>),
}

impl PostingsCursor<'_> {
    /// Current doc id, or [`NO_DOC`] when exhausted.
    #[inline]
    pub fn doc(&self) -> u32 {
        match self {
            PostingsCursor::Raw(c) => c.doc(),
            PostingsCursor::Compressed(c) => c.doc(),
            PostingsCursor::Chained(c) => c.doc(),
        }
    }

    /// Term frequency of the current posting.
    #[inline]
    pub fn tf(&self) -> u32 {
        match self {
            PostingsCursor::Raw(c) => c.tf(),
            PostingsCursor::Compressed(c) => c.tf(),
            PostingsCursor::Chained(c) => c.tf(),
        }
    }

    /// Doc id of the final posting (independent of cursor position);
    /// [`NO_DOC`] for an empty list.
    #[inline]
    pub fn last_doc(&self) -> u32 {
        match self {
            PostingsCursor::Raw(c) => c.last_doc(),
            PostingsCursor::Compressed(c) => c.last_doc(),
            PostingsCursor::Chained(c) => c.last_doc(),
        }
    }

    /// Advance to the next posting.
    #[inline]
    pub fn next(&mut self) {
        match self {
            PostingsCursor::Raw(c) => c.next(),
            PostingsCursor::Compressed(c) => c.next(),
            PostingsCursor::Chained(c) => c.next(),
        }
    }

    /// Advance to the first posting with `doc >= target`.
    #[inline]
    pub fn seek(&mut self, target: u32) {
        match self {
            PostingsCursor::Raw(c) => c.seek(target),
            PostingsCursor::Compressed(c) => c.seek(target),
            PostingsCursor::Chained(c) => c.seek(target),
        }
    }
}

/// A posting list in either representation.
#[derive(Debug, Clone)]
pub enum Postings {
    /// Indexing-time representation.
    Raw(PostingList),
    /// Optimized representation.
    Compressed(CompressedPostings),
}

impl Postings {
    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        match self {
            Postings::Raw(l) => l.doc_count(),
            Postings::Compressed(c) => c.doc_count(),
        }
    }

    /// Visit every `(doc, positions)` pair in doc order.
    pub fn for_each(&self, mut f: impl FnMut(DocId, &[u32])) {
        match self {
            Postings::Raw(l) => {
                for p in l.postings() {
                    f(p.doc, &p.positions);
                }
            }
            Postings::Compressed(c) => c.for_each(f),
        }
    }

    /// Open a document-at-a-time cursor positioned on the first
    /// posting.
    pub fn cursor(&self) -> PostingsCursor<'_> {
        match self {
            Postings::Raw(l) => PostingsCursor::Raw(RawCursor {
                postings: l.postings(),
                idx: 0,
            }),
            Postings::Compressed(c) => PostingsCursor::Compressed(c.cursor()),
        }
    }

    /// Approximate heap bytes of this representation (E3 ablation).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Postings::Raw(l) => l.heap_bytes(),
            Postings::Compressed(c) => c.byte_len(),
        }
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], cursor: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = data[*cursor];
        *cursor += 1;
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PostingList {
        let mut l = PostingList::new();
        l.push_occurrence(DocId(0), 0);
        l.push_occurrence(DocId(0), 5);
        l.push_occurrence(DocId(3), 2);
        l.push_occurrence(DocId(300), 1);
        l.push_occurrence(DocId(300), 9);
        l.push_occurrence(DocId(300), 100);
        l
    }

    #[test]
    fn push_merges_same_doc_occurrences() {
        let l = sample();
        assert_eq!(l.doc_count(), 3);
        assert_eq!(l.postings()[0].positions, vec![0, 5]);
    }

    #[test]
    fn compression_roundtrip() {
        let l = sample();
        let c = CompressedPostings::encode(&l);
        assert_eq!(c.doc_count(), 3);
        let back = c.decode();
        assert_eq!(back.postings(), l.postings());
    }

    #[test]
    fn roundtrip_with_doc_zero_only() {
        let mut l = PostingList::new();
        l.push_occurrence(DocId(0), 7);
        let back = CompressedPostings::encode(&l).decode();
        assert_eq!(back.postings(), l.postings());
    }

    #[test]
    fn empty_list_roundtrip() {
        let l = PostingList::new();
        let c = CompressedPostings::encode(&l);
        assert_eq!(c.doc_count(), 0);
        assert_eq!(c.byte_len(), 0);
        assert_eq!(c.decode().doc_count(), 0);
    }

    #[test]
    fn compressed_is_smaller_for_clustered_docs() {
        let mut l = PostingList::new();
        for d in 0..1000u32 {
            l.push_occurrence(DocId(d), 3);
        }
        let c = CompressedPostings::encode(&l);
        assert!(c.byte_len() < l.heap_bytes());
    }

    #[test]
    fn for_each_visits_in_doc_order() {
        let l = sample();
        let mut docs = Vec::new();
        Postings::Raw(l.clone()).for_each(|d, _| docs.push(d.0));
        assert_eq!(docs, vec![0, 3, 300]);
        docs.clear();
        Postings::Compressed(CompressedPostings::encode(&l)).for_each(|d, _| docs.push(d.0));
        assert_eq!(docs, vec![0, 3, 300]);
    }

    fn long_list(n: u32, stride: u32) -> PostingList {
        let mut l = PostingList::new();
        for d in 0..n {
            // tf varies so block max_tf differs between blocks.
            for p in 0..=(d % 4) {
                l.push_occurrence(DocId(d * stride), p);
            }
        }
        l
    }

    #[test]
    fn cursor_walks_both_representations_identically() {
        let l = long_list(300, 3);
        for postings in [
            Postings::Raw(l.clone()),
            Postings::Compressed(CompressedPostings::encode(&l)),
        ] {
            let mut cur = postings.cursor();
            for p in l.postings() {
                assert_eq!(cur.doc(), p.doc.0);
                assert_eq!(cur.tf(), p.positions.len() as u32);
                cur.next();
            }
            assert_eq!(cur.doc(), NO_DOC);
            cur.next();
            assert_eq!(cur.doc(), NO_DOC);
        }
    }

    #[test]
    fn cursor_seek_matches_linear_scan() {
        let l = long_list(1000, 7);
        let docs: Vec<u32> = l.postings().iter().map(|p| p.doc.0).collect();
        for postings in [
            Postings::Raw(l.clone()),
            Postings::Compressed(CompressedPostings::encode(&l)),
        ] {
            // Seek to every third position plus off-list targets.
            let mut cur = postings.cursor();
            for target in (0..7200).step_by(31) {
                if target < cur.doc() && cur.doc() != NO_DOC {
                    continue; // seek never goes backwards
                }
                cur.seek(target);
                let expect = docs.iter().copied().find(|&d| d >= target);
                assert_eq!(cur.doc(), expect.unwrap_or(NO_DOC), "target {target}");
                if let Some(d) = expect {
                    let p = &l.postings()[docs.iter().position(|&x| x == d).unwrap()];
                    assert_eq!(cur.tf(), p.positions.len() as u32);
                }
            }
            // Seeking past the end exhausts.
            let mut cur = postings.cursor();
            cur.seek(u32::MAX);
            assert_eq!(cur.doc(), NO_DOC);
        }
    }

    #[test]
    fn seek_to_current_doc_is_a_noop() {
        let l = long_list(400, 2);
        let postings = Postings::Compressed(CompressedPostings::encode(&l));
        let mut cur = postings.cursor();
        cur.seek(500);
        let at = cur.doc();
        let tf = cur.tf();
        cur.seek(500);
        cur.seek(at);
        assert_eq!(cur.doc(), at);
        assert_eq!(cur.tf(), tf);
    }

    #[test]
    fn block_metadata_tracks_max_tf() {
        let l = long_list(1000, 1);
        let c = CompressedPostings::encode(&l);
        assert_eq!(c.max_tf(), 4);
        assert_eq!(c.blocks.len(), 1000usize.div_ceil(BLOCK_SIZE));
        let mut cur = c.cursor();
        assert_eq!(cur.block_max_tf(), c.blocks[0].max_tf);
        cur.seek(999);
        assert_eq!(cur.block_max_tf(), c.blocks.last().unwrap().max_tf);
        for b in &c.blocks {
            assert!(b.max_tf >= 1 && b.max_tf <= 4);
        }
    }

    #[test]
    fn empty_list_cursor_is_exhausted() {
        let c = CompressedPostings::encode(&PostingList::new());
        let mut cur = c.cursor();
        assert_eq!(cur.doc(), NO_DOC);
        cur.seek(7);
        assert_eq!(cur.doc(), NO_DOC);
    }

    /// Three disjoint doc ranges split across raw and compressed
    /// parts, mirroring a memtable behind two sealed segments.
    fn chained_fixture(lists: &[PostingList]) -> (Vec<CompressedPostings>, Vec<PostingList>) {
        // First parts compressed (sealed), final part raw (memtable).
        let (last, sealed) = lists.split_last().unwrap();
        (
            sealed.iter().map(CompressedPostings::encode).collect(),
            vec![last.clone()],
        )
    }

    fn split_list(l: &PostingList, cuts: &[usize]) -> Vec<PostingList> {
        let mut out = Vec::new();
        let mut start = 0;
        for &c in cuts.iter().chain(std::iter::once(&l.postings.len())) {
            let mut part = PostingList::new();
            for p in &l.postings[start..c] {
                for &pos in &p.positions {
                    part.push_occurrence(p.doc, pos);
                }
            }
            start = c;
            out.push(part);
        }
        out
    }

    #[test]
    fn chained_cursor_walks_like_single_list() {
        let l = long_list(500, 3);
        let parts = split_list(&l, &[137, 256, 400]);
        let (sealed, raw) = chained_fixture(&parts);
        let mut cursors: Vec<PostingsCursor<'_>> = sealed
            .iter()
            .map(|c| PostingsCursor::Compressed(c.cursor()))
            .collect();
        cursors.extend(raw.iter().map(|r| {
            PostingsCursor::Raw(RawCursor {
                postings: r.postings(),
                idx: 0,
            })
        }));
        let mut chained = ChainedCursor::new(cursors);
        assert_eq!(chained.last_doc(), l.postings.last().unwrap().doc.0);
        for p in l.postings() {
            assert_eq!(chained.doc(), p.doc.0);
            assert_eq!(chained.tf(), p.positions.len() as u32);
            chained.next();
        }
        assert_eq!(chained.doc(), NO_DOC);
        chained.next();
        assert_eq!(chained.doc(), NO_DOC);
    }

    #[test]
    fn chained_cursor_seek_matches_linear_scan() {
        let l = long_list(900, 5);
        let parts = split_list(&l, &[100, 101, 512, 800]);
        let docs: Vec<u32> = l.postings().iter().map(|p| p.doc.0).collect();
        let (sealed, raw) = chained_fixture(&parts);
        let make = || {
            let mut cursors: Vec<PostingsCursor<'_>> = sealed
                .iter()
                .map(|c| PostingsCursor::Compressed(c.cursor()))
                .collect();
            cursors.extend(raw.iter().map(|r| {
                PostingsCursor::Raw(RawCursor {
                    postings: r.postings(),
                    idx: 0,
                })
            }));
            ChainedCursor::new(cursors)
        };
        let mut cur = make();
        for target in (0..5000).step_by(43) {
            if cur.doc() != NO_DOC && target < cur.doc() {
                continue; // seek never goes backwards
            }
            cur.seek(target);
            let expect = docs.iter().copied().find(|&d| d >= target);
            assert_eq!(cur.doc(), expect.unwrap_or(NO_DOC), "target {target}");
        }
        // Seeking far past the end exhausts; a long-range seek from the
        // first part skips middle parts entirely.
        let mut cur = make();
        cur.seek(docs[docs.len() - 2]);
        assert_eq!(cur.doc(), docs[docs.len() - 2]);
        cur.seek(u32::MAX);
        assert_eq!(cur.doc(), NO_DOC);
    }

    #[test]
    fn cursor_last_doc_reads_metadata() {
        let l = long_list(300, 2);
        let c = CompressedPostings::encode(&l);
        let cur = c.cursor();
        assert_eq!(cur.last_doc(), l.postings().last().unwrap().doc.0);
        let raw = RawCursor {
            postings: l.postings(),
            idx: 0,
        };
        assert_eq!(raw.last_doc(), l.postings().last().unwrap().doc.0);
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 127, 128, 16383, 16384, u32::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            let mut c = 0;
            assert_eq!(read_varint(&buf, &mut c), v);
            assert_eq!(c, buf.len());
        }
    }
}
