//! Positional posting lists.
//!
//! Two representations are provided:
//!
//! * [`PostingList`] — the mutable, indexing-time representation: a
//!   doc-ordered `Vec` of postings, each carrying its positions.
//! * [`CompressedPostings`] — an immutable bit-packed byte stream
//!   produced by [`Index::optimize`](crate::Index::optimize), carved
//!   into blocks of [`BLOCK_SIZE`] documents. Within a block, doc-id
//!   deltas and term frequencies are packed at the minimal fixed bit
//!   width for that block (chosen per block from its largest delta and
//!   largest `tf - 1`), so a whole block unpacks with one branchless
//!   fixed-width loop into the cursor's block buffer. Positions live in
//!   a separate varint stream addressed per block, so doc/tf decoding
//!   never touches position bytes and positional access skips straight
//!   to the enclosing block. Per-block metadata (last doc id, entry
//!   base, byte offsets, bit widths, max tf) lets a [`PostingsCursor`]
//!   skip whole blocks during [`PostingsCursor::seek`] without
//!   decoding them.
//!
//! Exhaustive consumers use the callback-style [`Postings::for_each`],
//! which sidesteps lending-iterator gymnastics and keeps decoding
//! allocation-free on the hot path. The document-at-a-time query
//! executor instead opens a [`PostingsCursor`] per list (`doc` /
//! `next` / `seek`) and materializes positions only on demand
//! ([`PostingsCursor::positions`]) for phrase verification.
//!
//! The compressed form exists for the E3 ablation in DESIGN.md: it
//! trades decode CPU for memory footprint, which matters once the
//! simulated web corpus reaches hundreds of thousands of pages.

use crate::DocId;

/// Documents per skip block in [`CompressedPostings`].
pub const BLOCK_SIZE: usize = 128;

/// Sentinel doc value a [`PostingsCursor`] reports once exhausted.
/// Real doc ids are dense from zero, so `u32::MAX` is never a valid
/// document in any index this substrate can build.
pub const NO_DOC: u32 = u32::MAX;

/// One document's entry in a posting list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Term positions within the field, strictly increasing. The term
    /// frequency is `positions.len()`.
    pub positions: Vec<u32>,
}

/// Mutable doc-ordered posting list.
#[derive(Debug, Default, Clone)]
pub struct PostingList {
    postings: Vec<Posting>,
}

impl PostingList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an occurrence of the term in `doc` at `position`.
    ///
    /// Documents must be added in increasing doc-id order (the index
    /// guarantees this: doc ids are assigned at insertion).
    pub fn push_occurrence(&mut self, doc: DocId, position: u32) {
        match self.postings.last_mut() {
            Some(last) if last.doc == doc => last.positions.push(position),
            Some(last) => {
                debug_assert!(last.doc < doc, "postings must be appended in doc order");
                self.postings.push(Posting {
                    doc,
                    positions: vec![position],
                });
            }
            None => self.postings.push(Posting {
                doc,
                positions: vec![position],
            }),
        }
    }

    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        self.postings.len()
    }

    /// Concatenate `other` onto the end of this list. The caller must
    /// guarantee every doc id in `other` is greater than every doc id
    /// here — segment merges satisfy this by construction because
    /// segments hold contiguous, increasing doc-id ranges.
    pub fn append(&mut self, mut other: PostingList) {
        if let (Some(last), Some(first)) = (self.postings.last(), other.postings.first()) {
            debug_assert!(
                last.doc < first.doc,
                "segment posting lists must concatenate in doc order"
            );
        }
        self.postings.append(&mut other.postings);
    }

    /// Borrow the raw postings.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Open a document-at-a-time cursor positioned on the first
    /// posting.
    pub fn cursor(&self) -> RawCursor<'_> {
        RawCursor {
            postings: &self.postings,
            idx: 0,
        }
    }

    /// Approximate heap size in bytes (for the E3 space ablation).
    pub fn heap_bytes(&self) -> usize {
        self.postings.capacity() * std::mem::size_of::<Posting>()
            + self
                .postings
                .iter()
                .map(|p| p.positions.capacity() * 4)
                .sum::<usize>()
    }
}

/// Skip metadata for one block of up to [`BLOCK_SIZE`] postings.
#[derive(Debug, Clone)]
struct BlockMeta {
    /// Doc id of the block's last posting: a `seek(target)` may skip
    /// the whole block when `last_doc < target`.
    last_doc: u32,
    /// Delta-decoder base on block entry: the previous block's last
    /// doc id, or `0` for the first block (the first delta is then the
    /// absolute doc id).
    base_doc: u32,
    /// Byte offset of the block's packed doc deltas in `data`; the
    /// packed tfs follow immediately after.
    offset: u32,
    /// Byte offset of the block's first position varint in `pos_data`.
    pos_offset: u32,
    /// Largest term frequency among the block's postings.
    max_tf: u32,
    /// Fixed bit width of the block's packed doc deltas.
    doc_bits: u8,
    /// Fixed bit width of the block's packed `tf - 1` values.
    tf_bits: u8,
}

/// Minimal bit width able to represent `v` (`0` for `v == 0`).
#[inline]
fn bits_for(v: u32) -> u32 {
    32 - v.leading_zeros()
}

/// Bytes occupied by `count` values packed at `bits` bits each.
#[inline]
fn packed_len(count: usize, bits: u32) -> usize {
    (count * bits as usize).div_ceil(8)
}

/// Append `values` to `out`, each packed at `bits` bits, LSB first.
fn pack_bits(out: &mut Vec<u8>, values: &[u32], bits: u32) {
    if bits == 0 {
        return;
    }
    debug_assert!(values.iter().all(|&v| bits == 32 || v < (1u32 << bits)));
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &v in values {
        acc |= (v as u64) << nbits;
        nbits += bits;
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
}

/// Unpack `count` values of `bits` bits each from `data`, starting at
/// byte `start`, into `out[..count]`. A streaming `u64` accumulator is
/// refilled one byte at a time (LSB-first, mirroring [`pack_bits`]), so
/// each value is a shift and a mask and each input byte is touched
/// exactly once — no per-value wide loads or slice re-checks.
fn unpack_bits(data: &[u8], start: usize, bits: u32, count: usize, out: &mut [u32]) {
    if bits == 0 {
        out[..count].fill(0);
        return;
    }
    let mask = if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    let bytes = &data[start..start + packed_len(count, bits)];
    let mut acc = 0u64;
    let mut have = 0u32;
    let mut at = 0usize;
    for slot in out[..count].iter_mut() {
        if have < bits {
            if at + 4 <= bytes.len() {
                // Bulk refill: `have < bits <= 32`, so 32 fresh bits top
                // out at bit 62 and never collide or overflow.
                let w = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"));
                acc |= u64::from(w) << have;
                at += 4;
                have += 32;
            } else {
                while have < bits {
                    acc |= u64::from(bytes[at]) << have;
                    at += 1;
                    have += 8;
                }
            }
        }
        *slot = (acc as u32) & mask;
        acc >>= bits;
        have -= bits;
    }
}

/// Immutable bit-packed posting list with skip blocks.
///
/// Layout: postings are carved into blocks of [`BLOCK_SIZE`]
/// documents. Per block, `data` holds the doc-id deltas packed at the
/// block's minimal fixed bit width, immediately followed by the
/// `tf - 1` values packed likewise (a block where every tf is 1 spends
/// zero tf bytes). `pos_data` is a separate varint stream of position
/// deltas (first absolute, then gaps), addressed per block through
/// [`BlockMeta::pos_offset`], so doc/tf decoding never walks position
/// bytes. All widths, offsets, and entry bases live in the in-memory
/// block directory, which a cursor binary-searches to skip blocks
/// decode-free.
#[derive(Debug, Clone, Default)]
pub struct CompressedPostings {
    data: Vec<u8>,
    pos_data: Vec<u8>,
    doc_count: u32,
    blocks: Vec<BlockMeta>,
    max_tf: u32,
}

impl CompressedPostings {
    /// Compress a raw list. Pure function of the list contents: equal
    /// lists encode to bit-identical streams (the parallel-build
    /// determinism tests rely on this).
    pub fn encode(list: &PostingList) -> Self {
        let mut data = Vec::with_capacity(list.postings.len() * 2);
        let mut pos_data = Vec::with_capacity(list.postings.len());
        let mut blocks: Vec<BlockMeta> =
            Vec::with_capacity(list.postings.len().div_ceil(BLOCK_SIZE));
        let mut max_tf = 0u32;
        let mut deltas = [0u32; BLOCK_SIZE];
        let mut tfs = [0u32; BLOCK_SIZE];
        let mut base = 0u32;
        for chunk in list.postings.chunks(BLOCK_SIZE) {
            let pos_offset = pos_data.len() as u32;
            let mut prev = base;
            let mut block_max_tf = 0u32;
            let mut max_delta = 0u32;
            let mut max_tfm1 = 0u32;
            for (i, p) in chunk.iter().enumerate() {
                deltas[i] = p.doc.0 - prev;
                prev = p.doc.0;
                let tf = p.positions.len() as u32;
                tfs[i] = tf - 1;
                max_delta = max_delta.max(deltas[i]);
                max_tfm1 = max_tfm1.max(tfs[i]);
                block_max_tf = block_max_tf.max(tf);
                let mut prev_pos = 0u32;
                for (j, &pos) in p.positions.iter().enumerate() {
                    let d = if j == 0 { pos } else { pos - prev_pos };
                    prev_pos = pos;
                    write_varint(&mut pos_data, d);
                }
            }
            let doc_bits = bits_for(max_delta);
            let tf_bits = bits_for(max_tfm1);
            blocks.push(BlockMeta {
                last_doc: prev,
                base_doc: base,
                offset: data.len() as u32,
                pos_offset,
                max_tf: block_max_tf,
                doc_bits: doc_bits as u8,
                tf_bits: tf_bits as u8,
            });
            pack_bits(&mut data, &deltas[..chunk.len()], doc_bits);
            pack_bits(&mut data, &tfs[..chunk.len()], tf_bits);
            max_tf = max_tf.max(block_max_tf);
            base = prev;
        }
        CompressedPostings {
            data,
            pos_data,
            doc_count: list.postings.len() as u32,
            blocks,
            max_tf,
        }
    }

    /// Postings in block `b` (all blocks are full except possibly the
    /// last).
    #[inline]
    fn block_len(&self, b: usize) -> usize {
        (self.doc_count as usize - b * BLOCK_SIZE).min(BLOCK_SIZE)
    }

    /// Unpack block `b`'s absolute doc ids and tfs into the provided
    /// buffers, returning the block length.
    fn unpack_block(
        &self,
        b: usize,
        docs: &mut [u32; BLOCK_SIZE],
        tfs: &mut [u32; BLOCK_SIZE],
    ) -> usize {
        let meta = &self.blocks[b];
        let count = self.block_len(b);
        unpack_bits(
            &self.data,
            meta.offset as usize,
            meta.doc_bits as u32,
            count,
            docs,
        );
        let mut d = meta.base_doc;
        for slot in docs[..count].iter_mut() {
            d += *slot;
            *slot = d;
        }
        let tf_start = meta.offset as usize + packed_len(count, meta.doc_bits as u32);
        unpack_bits(&self.data, tf_start, meta.tf_bits as u32, count, tfs);
        for slot in tfs[..count].iter_mut() {
            *slot += 1;
        }
        count
    }

    /// Decode back into a raw list (used by tests and by re-indexing).
    pub fn decode(&self) -> PostingList {
        let mut list = PostingList::new();
        self.for_each(|doc, positions| {
            for &p in positions {
                list.push_occurrence(doc, p);
            }
        });
        list
    }

    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        self.doc_count as usize
    }

    /// Compressed size in bytes (doc/tf stream plus position stream;
    /// excludes the block directory — see [`heap_bytes`]).
    ///
    /// [`heap_bytes`]: CompressedPostings::heap_bytes
    pub fn byte_len(&self) -> usize {
        self.data.len() + self.pos_data.len()
    }

    /// Total heap footprint: packed streams plus the block directory.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() + self.pos_data.len() + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// The packed doc/tf byte stream (the determinism tests assert
    /// parallel and sequential builds produce bit-identical streams).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// The varint position byte stream.
    pub fn position_bytes(&self) -> &[u8] {
        &self.pos_data
    }

    /// Largest term frequency across the whole list.
    pub fn max_tf(&self) -> u32 {
        self.max_tf
    }

    /// Open a document-at-a-time cursor positioned on the first
    /// posting.
    pub fn cursor(&self) -> CompressedCursor<'_> {
        let mut c = CompressedCursor {
            post: self,
            block: 0,
            idx: 0,
            len: 0,
            doc: NO_DOC,
            docs: [0; BLOCK_SIZE],
            tfs: [0; BLOCK_SIZE],
            pos_block: usize::MAX,
            pos_idx: 0,
            pos_at: 0,
        };
        if self.doc_count > 0 {
            c.len = self.unpack_block(0, &mut c.docs, &mut c.tfs);
            c.doc = c.docs[0];
        }
        c
    }

    /// Visit every posting, reusing one scratch buffer for positions.
    pub fn for_each(&self, mut f: impl FnMut(DocId, &[u32])) {
        let mut docs = [0u32; BLOCK_SIZE];
        let mut tfs = [0u32; BLOCK_SIZE];
        let mut positions: Vec<u32> = Vec::with_capacity(8);
        let mut pos_cursor = 0usize;
        for b in 0..self.blocks.len() {
            let count = self.unpack_block(b, &mut docs, &mut tfs);
            debug_assert_eq!(pos_cursor, self.blocks[b].pos_offset as usize);
            for i in 0..count {
                positions.clear();
                let mut pos = 0u32;
                for j in 0..tfs[i] {
                    let d = read_varint(&self.pos_data, &mut pos_cursor);
                    pos = if j == 0 { d } else { pos + d };
                    positions.push(pos);
                }
                f(DocId(docs[i]), &positions);
            }
        }
    }
}

/// Document-at-a-time cursor over a [`CompressedPostings`] stream.
///
/// Holds one unpacked block in inline buffers: block entry unpacks all
/// doc ids and tfs at once (branchless fixed-width loops), after which
/// `doc`/`tf`/`next` are plain array reads. [`CompressedCursor::seek`]
/// binary-searches the block directory and unpacks only the
/// destination block — skipped blocks are never decoded.
#[derive(Debug, Clone)]
pub struct CompressedCursor<'a> {
    post: &'a CompressedPostings,
    /// Index of the block currently held in the buffers.
    block: usize,
    /// Index of the current posting within the block.
    idx: usize,
    /// Postings in the current block.
    len: usize,
    /// Current doc id, or [`NO_DOC`] once exhausted.
    doc: u32,
    /// Unpacked absolute doc ids of the current block.
    docs: [u32; BLOCK_SIZE],
    /// Unpacked term frequencies of the current block.
    tfs: [u32; BLOCK_SIZE],
    /// Position-stream memo: block whose positions were last read.
    pos_block: usize,
    /// Posting index within `pos_block` that `pos_at` points at.
    pos_idx: usize,
    /// Byte offset into `pos_data` of posting `pos_idx`'s positions.
    pos_at: usize,
}

impl CompressedCursor<'_> {
    /// Current doc id, or [`NO_DOC`] when exhausted.
    #[inline]
    pub fn doc(&self) -> u32 {
        self.doc
    }

    /// Term frequency of the current posting.
    #[inline]
    pub fn tf(&self) -> u32 {
        self.tfs[self.idx]
    }

    /// Doc id of the list's final posting (independent of cursor
    /// position); [`NO_DOC`] for an empty list. Read from the block
    /// directory, so no decoding happens.
    pub fn last_doc(&self) -> u32 {
        self.post.blocks.last().map_or(NO_DOC, |b| b.last_doc)
    }

    /// Largest term frequency in the block holding the current posting
    /// (the whole-list maximum once exhausted). Block-local bounds let
    /// the executor tighten the global score bound per block.
    pub fn block_max_tf(&self) -> u32 {
        if self.doc == NO_DOC {
            return self.post.max_tf;
        }
        self.post.blocks[self.block].max_tf
    }

    /// Last doc id of the block holding the current posting — the
    /// range through which [`block_max_tf`] upper-bounds every tf.
    /// Read from the block directory, no decoding.
    ///
    /// [`block_max_tf`]: CompressedCursor::block_max_tf
    pub fn block_last_doc(&self) -> u32 {
        if self.doc == NO_DOC {
            return NO_DOC;
        }
        self.post.blocks[self.block].last_doc
    }

    /// Append the current posting's positions to `out` (which is
    /// cleared first). Walks only the current block's slice of the
    /// position stream: earlier blocks are skipped through the block
    /// directory, and within the block a streaming memo remembers where
    /// the last read stopped, so monotone per-doc reads (the phrase
    /// verifier's access pattern) cost amortized O(1) varint skips per
    /// posting instead of re-skipping from the block start every time.
    pub fn positions(&mut self, out: &mut Vec<u32>) {
        out.clear();
        debug_assert!(self.doc != NO_DOC, "positions() on an exhausted cursor");
        if self.pos_block != self.block || self.pos_idx > self.idx {
            self.pos_block = self.block;
            self.pos_idx = 0;
            self.pos_at = self.post.blocks[self.block].pos_offset as usize;
        }
        while self.pos_idx < self.idx {
            for _ in 0..self.tfs[self.pos_idx] {
                read_varint(&self.post.pos_data, &mut self.pos_at);
            }
            self.pos_idx += 1;
        }
        let mut cursor = self.pos_at;
        let mut pos = 0u32;
        for j in 0..self.tfs[self.idx] {
            let d = read_varint(&self.post.pos_data, &mut cursor);
            pos = if j == 0 { d } else { pos + d };
            out.push(pos);
        }
    }

    /// Advance to the next posting.
    #[inline]
    pub fn next(&mut self) {
        if self.doc == NO_DOC {
            return;
        }
        if self.idx + 1 < self.len {
            self.idx += 1;
            self.doc = self.docs[self.idx];
            return;
        }
        if self.block + 1 < self.post.blocks.len() {
            let b = self.block + 1;
            self.len = self.post.unpack_block(b, &mut self.docs, &mut self.tfs);
            self.block = b;
            self.idx = 0;
            self.doc = self.docs[0];
        } else {
            self.doc = NO_DOC;
        }
    }

    /// Advance to the first posting with `doc >= target` (no-op when
    /// already there). Skips whole blocks via the block directory —
    /// only the destination block is ever unpacked — then searches the
    /// unpacked doc ids: a short linear scan first (seeks in a DAAT
    /// loop usually hop a few postings), binary search for the rest.
    #[inline]
    pub fn seek(&mut self, target: u32) {
        if self.doc >= target {
            // Covers exhaustion too: NO_DOC >= any target.
            return;
        }
        if self.post.blocks[self.block].last_doc < target {
            let blocks = &self.post.blocks;
            // Adjacent-block fast path, then a directory binary search
            // for genuine long jumps.
            let next = self.block + 1;
            let dest = if next < blocks.len() && blocks[next].last_doc >= target {
                next
            } else {
                next + 1
                    + blocks[(next + 1).min(blocks.len())..]
                        .partition_point(|b| b.last_doc < target)
            };
            if dest >= blocks.len() {
                self.doc = NO_DOC;
                return;
            }
            self.len = self.post.unpack_block(dest, &mut self.docs, &mut self.tfs);
            self.block = dest;
            self.idx = 0;
        }
        // The current block's last doc is >= target, so the scan always
        // lands on a real posting.
        let mut i = self.idx;
        let stop = (i + 8).min(self.len);
        while i < stop && self.docs[i] < target {
            i += 1;
        }
        if i == stop && i < self.len && self.docs[i] < target {
            i += self.docs[i..self.len].partition_point(|&d| d < target);
        }
        debug_assert!(i < self.len, "block last_doc guarantee violated");
        self.idx = i;
        self.doc = self.docs[i];
    }
}

/// Document-at-a-time cursor over a raw [`PostingList`].
#[derive(Debug, Clone)]
pub struct RawCursor<'a> {
    postings: &'a [Posting],
    idx: usize,
}

impl RawCursor<'_> {
    /// Current doc id, or [`NO_DOC`] when exhausted.
    pub fn doc(&self) -> u32 {
        match self.postings.get(self.idx) {
            Some(p) => p.doc.0,
            None => NO_DOC,
        }
    }

    /// Doc id of the list's final posting (independent of cursor
    /// position); [`NO_DOC`] for an empty list.
    pub fn last_doc(&self) -> u32 {
        self.postings.last().map_or(NO_DOC, |p| p.doc.0)
    }

    /// Term frequency of the current posting.
    pub fn tf(&self) -> u32 {
        self.postings[self.idx].positions.len() as u32
    }

    /// Append the current posting's positions to `out` (cleared
    /// first). Takes `&mut self` for parity with the compressed
    /// cursor's streaming position memo.
    pub fn positions(&mut self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.postings[self.idx].positions);
    }

    /// Largest term frequency in the "block" around the current
    /// posting. Raw lists carry no block directory, so this is the
    /// unknown sentinel `u32::MAX` — callers fall back to the global
    /// bound.
    pub fn block_max_tf(&self) -> u32 {
        u32::MAX
    }

    /// Last doc id through which [`block_max_tf`] stays valid. Raw
    /// lists have no blocks, so the guarantee covers only the current
    /// posting.
    ///
    /// [`block_max_tf`]: RawCursor::block_max_tf
    pub fn block_last_doc(&self) -> u32 {
        self.doc()
    }

    /// Advance to the next posting.
    pub fn next(&mut self) {
        self.idx += 1;
    }

    /// Advance to the first posting with `doc >= target`.
    pub fn seek(&mut self, target: u32) {
        if self.doc() >= target {
            return;
        }
        self.idx += 1 + self.postings[self.idx + 1..].partition_point(|p| p.doc.0 < target);
    }
}

/// A cursor chaining several per-segment cursors into one logical
/// doc-ordered stream.
///
/// The segment-lifecycle index stores one posting list per segment for
/// a given `(term, field)`; segments cover disjoint, strictly
/// increasing doc-id ranges, so simple concatenation — no merge heap —
/// preserves global doc order. [`ChainedCursor::seek`] skips whole
/// parts by comparing against each part's [`last_doc`] (a block-
/// directory read for compressed parts, so skipped segments are never
/// decoded).
///
/// [`last_doc`]: PostingsCursor::last_doc
#[derive(Debug, Clone)]
pub struct ChainedCursor<'a> {
    /// Per-segment cursors in segment (hence doc) order. Every part is
    /// non-empty and positioned on its first posting at construction.
    parts: Vec<PostingsCursor<'a>>,
    idx: usize,
}

impl<'a> ChainedCursor<'a> {
    /// Chain per-segment cursors. Callers must pass at least one
    /// cursor, each freshly positioned on a non-empty list, with
    /// strictly increasing doc ranges (part `i`'s last doc is below
    /// part `i + 1`'s first doc).
    pub fn new(parts: Vec<PostingsCursor<'a>>) -> Self {
        debug_assert!(!parts.is_empty(), "chained cursor needs at least one part");
        debug_assert!(parts.iter().all(|p| p.doc() != NO_DOC));
        debug_assert!(parts.windows(2).all(|w| w[0].last_doc() < w[1].doc()));
        ChainedCursor { parts, idx: 0 }
    }

    /// Current doc id, or [`NO_DOC`] when every part is exhausted.
    #[inline]
    pub fn doc(&self) -> u32 {
        self.parts[self.idx].doc()
    }

    /// Term frequency of the current posting.
    #[inline]
    pub fn tf(&self) -> u32 {
        self.parts[self.idx].tf()
    }

    /// Append the current posting's positions to `out` (cleared
    /// first).
    pub fn positions(&mut self, out: &mut Vec<u32>) {
        self.parts[self.idx].positions(out);
    }

    /// Largest term frequency in the current part's current block, or
    /// the unknown sentinel `u32::MAX` for raw parts.
    pub fn block_max_tf(&self) -> u32 {
        self.parts[self.idx].block_max_tf()
    }

    /// Last doc id through which [`block_max_tf`] stays valid — the
    /// current part's block boundary (parts cover disjoint increasing
    /// ranges, so the next part starts past it).
    ///
    /// [`block_max_tf`]: ChainedCursor::block_max_tf
    pub fn block_last_doc(&self) -> u32 {
        self.parts[self.idx].block_last_doc()
    }

    /// Doc id of the final posting across all parts.
    pub fn last_doc(&self) -> u32 {
        self.parts.last().map_or(NO_DOC, |p| p.last_doc())
    }

    /// Advance to the next posting, falling through to the next part
    /// when the current one is exhausted (fresh parts are already
    /// positioned on their first posting).
    pub fn next(&mut self) {
        self.parts[self.idx].next();
        if self.parts[self.idx].doc() == NO_DOC && self.idx + 1 < self.parts.len() {
            self.idx += 1;
        }
    }

    /// Advance to the first posting with `doc >= target`. Parts whose
    /// `last_doc` is below the target are skipped whole — for
    /// compressed parts that is a metadata comparison, no decoding.
    pub fn seek(&mut self, target: u32) {
        if self.parts[self.idx].doc() >= target {
            // Covers exhaustion too: NO_DOC >= any target.
            return;
        }
        while self.idx + 1 < self.parts.len() && self.parts[self.idx].last_doc() < target {
            self.idx += 1;
        }
        // Either this part contains a doc >= target (last_doc bound),
        // or it is the final part and seeking exhausts the chain.
        self.parts[self.idx].seek(target);
    }
}

/// A document-at-a-time cursor over either posting representation.
///
/// The cursor walks doc ids and term frequencies in increasing doc
/// order; positions are materialized only on demand via
/// [`PostingsCursor::positions`] (phrase verification), which is what
/// keeps the DAAT scoring loop allocation-free. After the last
/// posting, [`PostingsCursor::doc`] reports [`NO_DOC`] (which compares
/// greater than every real doc id, so `seek`/min-merge loops need no
/// special casing).
// The size skew is the design: the compressed cursor carries its
// unpacked 128-doc block inline so the DAAT hot loop reads plain
// arrays with no heap indirection. Boxing it would trade that locality
// for a pointer chase on every doc()/tf() call.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PostingsCursor<'a> {
    /// Cursor over the indexing-time representation.
    Raw(RawCursor<'a>),
    /// Cursor over the optimized block-packed representation.
    Compressed(CompressedCursor<'a>),
    /// Concatenation of per-segment cursors over disjoint increasing
    /// doc ranges.
    Chained(ChainedCursor<'a>),
}

impl PostingsCursor<'_> {
    /// Current doc id, or [`NO_DOC`] when exhausted.
    #[inline]
    pub fn doc(&self) -> u32 {
        match self {
            PostingsCursor::Raw(c) => c.doc(),
            PostingsCursor::Compressed(c) => c.doc(),
            PostingsCursor::Chained(c) => c.doc(),
        }
    }

    /// Term frequency of the current posting.
    #[inline]
    pub fn tf(&self) -> u32 {
        match self {
            PostingsCursor::Raw(c) => c.tf(),
            PostingsCursor::Compressed(c) => c.tf(),
            PostingsCursor::Chained(c) => c.tf(),
        }
    }

    /// Append the current posting's positions to `out` (cleared
    /// first). Only valid while `doc() != NO_DOC`.
    pub fn positions(&mut self, out: &mut Vec<u32>) {
        match self {
            PostingsCursor::Raw(c) => c.positions(out),
            PostingsCursor::Compressed(c) => c.positions(out),
            PostingsCursor::Chained(c) => c.positions(out),
        }
    }

    /// Largest term frequency in the block holding the current posting,
    /// or the unknown sentinel `u32::MAX` when the underlying
    /// representation carries no block directory. Never underestimates:
    /// a real value upper-bounds every tf in the current block, so it
    /// can tighten (never loosen) a score bound.
    #[inline]
    pub fn block_max_tf(&self) -> u32 {
        match self {
            PostingsCursor::Raw(c) => c.block_max_tf(),
            PostingsCursor::Compressed(c) => c.block_max_tf(),
            PostingsCursor::Chained(c) => c.block_max_tf(),
        }
    }

    /// Last doc id through which [`block_max_tf`] stays valid: the
    /// current block's final doc for block-packed lists, the current
    /// doc otherwise. Lets a scorer rule out every candidate up to the
    /// boundary in one step (block-max WAND range skip).
    ///
    /// [`block_max_tf`]: PostingsCursor::block_max_tf
    #[inline]
    pub fn block_last_doc(&self) -> u32 {
        match self {
            PostingsCursor::Raw(c) => c.block_last_doc(),
            PostingsCursor::Compressed(c) => c.block_last_doc(),
            PostingsCursor::Chained(c) => c.block_last_doc(),
        }
    }

    /// Doc id of the final posting (independent of cursor position);
    /// [`NO_DOC`] for an empty list.
    #[inline]
    pub fn last_doc(&self) -> u32 {
        match self {
            PostingsCursor::Raw(c) => c.last_doc(),
            PostingsCursor::Compressed(c) => c.last_doc(),
            PostingsCursor::Chained(c) => c.last_doc(),
        }
    }

    /// Advance to the next posting.
    #[inline]
    pub fn next(&mut self) {
        match self {
            PostingsCursor::Raw(c) => c.next(),
            PostingsCursor::Compressed(c) => c.next(),
            PostingsCursor::Chained(c) => c.next(),
        }
    }

    /// Advance to the first posting with `doc >= target`.
    #[inline]
    pub fn seek(&mut self, target: u32) {
        match self {
            PostingsCursor::Raw(c) => c.seek(target),
            PostingsCursor::Compressed(c) => c.seek(target),
            PostingsCursor::Chained(c) => c.seek(target),
        }
    }
}

/// A posting list in either representation.
#[derive(Debug, Clone)]
pub enum Postings {
    /// Indexing-time representation.
    Raw(PostingList),
    /// Optimized representation.
    Compressed(CompressedPostings),
}

impl Postings {
    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        match self {
            Postings::Raw(l) => l.doc_count(),
            Postings::Compressed(c) => c.doc_count(),
        }
    }

    /// Visit every `(doc, positions)` pair in doc order.
    pub fn for_each(&self, mut f: impl FnMut(DocId, &[u32])) {
        match self {
            Postings::Raw(l) => {
                for p in l.postings() {
                    f(p.doc, &p.positions);
                }
            }
            Postings::Compressed(c) => c.for_each(f),
        }
    }

    /// Open a document-at-a-time cursor positioned on the first
    /// posting.
    pub fn cursor(&self) -> PostingsCursor<'_> {
        match self {
            Postings::Raw(l) => PostingsCursor::Raw(RawCursor {
                postings: l.postings(),
                idx: 0,
            }),
            Postings::Compressed(c) => PostingsCursor::Compressed(c.cursor()),
        }
    }

    /// Approximate heap bytes of this representation (E3 ablation).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Postings::Raw(l) => l.heap_bytes(),
            Postings::Compressed(c) => c.heap_bytes(),
        }
    }
}

pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn read_varint(data: &[u8], cursor: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = data[*cursor];
        *cursor += 1;
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PostingList {
        let mut l = PostingList::new();
        l.push_occurrence(DocId(0), 0);
        l.push_occurrence(DocId(0), 5);
        l.push_occurrence(DocId(3), 2);
        l.push_occurrence(DocId(300), 1);
        l.push_occurrence(DocId(300), 9);
        l.push_occurrence(DocId(300), 100);
        l
    }

    #[test]
    fn push_merges_same_doc_occurrences() {
        let l = sample();
        assert_eq!(l.doc_count(), 3);
        assert_eq!(l.postings()[0].positions, vec![0, 5]);
    }

    #[test]
    fn compression_roundtrip() {
        let l = sample();
        let c = CompressedPostings::encode(&l);
        assert_eq!(c.doc_count(), 3);
        let back = c.decode();
        assert_eq!(back.postings(), l.postings());
    }

    #[test]
    fn roundtrip_with_doc_zero_only() {
        let mut l = PostingList::new();
        l.push_occurrence(DocId(0), 7);
        let back = CompressedPostings::encode(&l).decode();
        assert_eq!(back.postings(), l.postings());
    }

    #[test]
    fn empty_list_roundtrip() {
        let l = PostingList::new();
        let c = CompressedPostings::encode(&l);
        assert_eq!(c.doc_count(), 0);
        assert_eq!(c.byte_len(), 0);
        assert_eq!(c.decode().doc_count(), 0);
    }

    #[test]
    fn compressed_is_smaller_for_clustered_docs() {
        let mut l = PostingList::new();
        for d in 0..1000u32 {
            l.push_occurrence(DocId(d), 3);
        }
        let c = CompressedPostings::encode(&l);
        assert!(c.byte_len() < l.heap_bytes());
    }

    #[test]
    fn pack_unpack_boundaries() {
        let mut out = [0u32; BLOCK_SIZE];
        for bits in 0..=32u32 {
            let max = if bits == 32 {
                u32::MAX
            } else {
                (1u64 << bits) as u32 - 1
            };
            let values: Vec<u32> = (0..BLOCK_SIZE as u32)
                .map(|i| {
                    if bits == 0 {
                        0
                    } else {
                        (i.wrapping_mul(2654435761)) & max
                    }
                })
                .collect();
            let mut buf = Vec::new();
            pack_bits(&mut buf, &values, bits);
            assert_eq!(buf.len(), packed_len(values.len(), bits), "bits {bits}");
            unpack_bits(&buf, 0, bits, values.len(), &mut out);
            assert_eq!(&out[..values.len()], &values[..], "bits {bits}");
        }
    }

    #[test]
    fn single_tf_block_spends_no_tf_bytes() {
        // 128 docs, every tf == 1, consecutive ids: deltas are 1 bit,
        // tfs are 0 bits -> exactly 16 bytes of doc data per block.
        let mut l = PostingList::new();
        for d in 0..BLOCK_SIZE as u32 {
            l.push_occurrence(DocId(d), 0);
        }
        let c = CompressedPostings::encode(&l);
        assert_eq!(c.bytes().len(), BLOCK_SIZE / 8);
        assert_eq!(c.blocks[0].tf_bits, 0);
        assert_eq!(c.blocks[0].doc_bits, 1);
    }

    #[test]
    fn for_each_visits_in_doc_order() {
        let l = sample();
        let mut docs = Vec::new();
        Postings::Raw(l.clone()).for_each(|d, _| docs.push(d.0));
        assert_eq!(docs, vec![0, 3, 300]);
        docs.clear();
        Postings::Compressed(CompressedPostings::encode(&l)).for_each(|d, _| docs.push(d.0));
        assert_eq!(docs, vec![0, 3, 300]);
    }

    fn long_list(n: u32, stride: u32) -> PostingList {
        let mut l = PostingList::new();
        for d in 0..n {
            // tf varies so block max_tf differs between blocks.
            for p in 0..=(d % 4) {
                l.push_occurrence(DocId(d * stride), p);
            }
        }
        l
    }

    #[test]
    fn cursor_walks_both_representations_identically() {
        let l = long_list(300, 3);
        for postings in [
            Postings::Raw(l.clone()),
            Postings::Compressed(CompressedPostings::encode(&l)),
        ] {
            let mut cur = postings.cursor();
            for p in l.postings() {
                assert_eq!(cur.doc(), p.doc.0);
                assert_eq!(cur.tf(), p.positions.len() as u32);
                cur.next();
            }
            assert_eq!(cur.doc(), NO_DOC);
            cur.next();
            assert_eq!(cur.doc(), NO_DOC);
        }
    }

    #[test]
    fn cursor_positions_match_raw_postings() {
        let l = long_list(500, 7);
        let mut buf = Vec::new();
        for postings in [
            Postings::Raw(l.clone()),
            Postings::Compressed(CompressedPostings::encode(&l)),
        ] {
            // Walk via next().
            let mut cur = postings.cursor();
            for p in l.postings() {
                cur.positions(&mut buf);
                assert_eq!(buf, p.positions, "doc {}", p.doc.0);
                cur.next();
            }
            // And via seek() to scattered docs.
            let mut cur = postings.cursor();
            for p in l.postings().iter().step_by(37) {
                cur.seek(p.doc.0);
                cur.positions(&mut buf);
                assert_eq!(buf, p.positions, "seek doc {}", p.doc.0);
            }
        }
    }

    #[test]
    fn cursor_seek_matches_linear_scan() {
        let l = long_list(1000, 7);
        let docs: Vec<u32> = l.postings().iter().map(|p| p.doc.0).collect();
        for postings in [
            Postings::Raw(l.clone()),
            Postings::Compressed(CompressedPostings::encode(&l)),
        ] {
            // Seek to every third position plus off-list targets.
            let mut cur = postings.cursor();
            for target in (0..7200).step_by(31) {
                if target < cur.doc() && cur.doc() != NO_DOC {
                    continue; // seek never goes backwards
                }
                cur.seek(target);
                let expect = docs.iter().copied().find(|&d| d >= target);
                assert_eq!(cur.doc(), expect.unwrap_or(NO_DOC), "target {target}");
                if let Some(d) = expect {
                    let p = &l.postings()[docs.iter().position(|&x| x == d).unwrap()];
                    assert_eq!(cur.tf(), p.positions.len() as u32);
                }
            }
            // Seeking past the end exhausts.
            let mut cur = postings.cursor();
            cur.seek(u32::MAX);
            assert_eq!(cur.doc(), NO_DOC);
        }
    }

    #[test]
    fn seek_to_current_doc_is_a_noop() {
        let l = long_list(400, 2);
        let postings = Postings::Compressed(CompressedPostings::encode(&l));
        let mut cur = postings.cursor();
        cur.seek(500);
        let at = cur.doc();
        let tf = cur.tf();
        cur.seek(500);
        cur.seek(at);
        assert_eq!(cur.doc(), at);
        assert_eq!(cur.tf(), tf);
    }

    #[test]
    fn exhausted_cursor_stays_exhausted() {
        let l = long_list(300, 3);
        let c = CompressedPostings::encode(&l);
        // Exhaust from the first block with a long-range seek; the
        // cursor must not resurrect on a subsequent next().
        let mut cur = c.cursor();
        cur.seek(u32::MAX);
        assert_eq!(cur.doc(), NO_DOC);
        cur.next();
        assert_eq!(cur.doc(), NO_DOC);
        cur.seek(0);
        assert_eq!(cur.doc(), NO_DOC);
    }

    #[test]
    fn block_metadata_tracks_max_tf() {
        let l = long_list(1000, 1);
        let c = CompressedPostings::encode(&l);
        assert_eq!(c.max_tf(), 4);
        assert_eq!(c.blocks.len(), 1000usize.div_ceil(BLOCK_SIZE));
        let mut cur = c.cursor();
        assert_eq!(cur.block_max_tf(), c.blocks[0].max_tf);
        cur.seek(999);
        assert_eq!(cur.block_max_tf(), c.blocks.last().unwrap().max_tf);
        for b in &c.blocks {
            assert!(b.max_tf >= 1 && b.max_tf <= 4);
        }
    }

    #[test]
    fn block_directory_records_widths_and_offsets() {
        let l = long_list(1000, 9);
        let c = CompressedPostings::encode(&l);
        let mut expected_offset = 0u32;
        for (b, meta) in c.blocks.iter().enumerate() {
            assert_eq!(meta.offset, expected_offset, "block {b}");
            let count = c.block_len(b);
            expected_offset += (packed_len(count, meta.doc_bits as u32)
                + packed_len(count, meta.tf_bits as u32)) as u32;
        }
        assert_eq!(expected_offset as usize, c.bytes().len());
    }

    #[test]
    fn empty_list_cursor_is_exhausted() {
        let c = CompressedPostings::encode(&PostingList::new());
        let mut cur = c.cursor();
        assert_eq!(cur.doc(), NO_DOC);
        cur.seek(7);
        assert_eq!(cur.doc(), NO_DOC);
    }

    /// Three disjoint doc ranges split across raw and compressed
    /// parts, mirroring a memtable behind two sealed segments.
    fn chained_fixture(lists: &[PostingList]) -> (Vec<CompressedPostings>, Vec<PostingList>) {
        // First parts compressed (sealed), final part raw (memtable).
        let (last, sealed) = lists.split_last().unwrap();
        (
            sealed.iter().map(CompressedPostings::encode).collect(),
            vec![last.clone()],
        )
    }

    fn split_list(l: &PostingList, cuts: &[usize]) -> Vec<PostingList> {
        let mut out = Vec::new();
        let mut start = 0;
        for &c in cuts.iter().chain(std::iter::once(&l.postings.len())) {
            let mut part = PostingList::new();
            for p in &l.postings[start..c] {
                for &pos in &p.positions {
                    part.push_occurrence(p.doc, pos);
                }
            }
            start = c;
            out.push(part);
        }
        out
    }

    #[test]
    fn chained_cursor_walks_like_single_list() {
        let l = long_list(500, 3);
        let parts = split_list(&l, &[137, 256, 400]);
        let (sealed, raw) = chained_fixture(&parts);
        let mut cursors: Vec<PostingsCursor<'_>> = sealed
            .iter()
            .map(|c| PostingsCursor::Compressed(c.cursor()))
            .collect();
        cursors.extend(raw.iter().map(|r| {
            PostingsCursor::Raw(RawCursor {
                postings: r.postings(),
                idx: 0,
            })
        }));
        let mut chained = ChainedCursor::new(cursors);
        assert_eq!(chained.last_doc(), l.postings.last().unwrap().doc.0);
        let mut buf = Vec::new();
        for p in l.postings() {
            assert_eq!(chained.doc(), p.doc.0);
            assert_eq!(chained.tf(), p.positions.len() as u32);
            chained.positions(&mut buf);
            assert_eq!(buf, p.positions);
            chained.next();
        }
        assert_eq!(chained.doc(), NO_DOC);
        chained.next();
        assert_eq!(chained.doc(), NO_DOC);
    }

    #[test]
    fn chained_cursor_seek_matches_linear_scan() {
        let l = long_list(900, 5);
        let parts = split_list(&l, &[100, 101, 512, 800]);
        let docs: Vec<u32> = l.postings().iter().map(|p| p.doc.0).collect();
        let (sealed, raw) = chained_fixture(&parts);
        let make = || {
            let mut cursors: Vec<PostingsCursor<'_>> = sealed
                .iter()
                .map(|c| PostingsCursor::Compressed(c.cursor()))
                .collect();
            cursors.extend(raw.iter().map(|r| {
                PostingsCursor::Raw(RawCursor {
                    postings: r.postings(),
                    idx: 0,
                })
            }));
            ChainedCursor::new(cursors)
        };
        let mut cur = make();
        for target in (0..5000).step_by(43) {
            if cur.doc() != NO_DOC && target < cur.doc() {
                continue; // seek never goes backwards
            }
            cur.seek(target);
            let expect = docs.iter().copied().find(|&d| d >= target);
            assert_eq!(cur.doc(), expect.unwrap_or(NO_DOC), "target {target}");
        }
        // Seeking far past the end exhausts; a long-range seek from the
        // first part skips middle parts entirely.
        let mut cur = make();
        cur.seek(docs[docs.len() - 2]);
        assert_eq!(cur.doc(), docs[docs.len() - 2]);
        cur.seek(u32::MAX);
        assert_eq!(cur.doc(), NO_DOC);
    }

    #[test]
    fn cursor_last_doc_reads_metadata() {
        let l = long_list(300, 2);
        let c = CompressedPostings::encode(&l);
        let cur = c.cursor();
        assert_eq!(cur.last_doc(), l.postings().last().unwrap().doc.0);
        let raw = RawCursor {
            postings: l.postings(),
            idx: 0,
        };
        assert_eq!(raw.last_doc(), l.postings().last().unwrap().doc.0);
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 127, 128, 16383, 16384, u32::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            let mut c = 0;
            assert_eq!(read_varint(&buf, &mut c), v);
            assert_eq!(c, buf.len());
        }
    }
}
