//! Snippet extraction and query-term highlighting.
//!
//! Symphony result layouts show a "descriptive field" per hit (paper
//! Fig. 1); for web results that field is a contextual snippet. The
//! generator picks the token window with the highest count of distinct
//! matched query terms (ties: earliest window) and wraps matches in
//! `<b>` tags, HTML-escaping everything else.

use crate::analysis::Analyzer;
use crate::fx::FxHashSet;

/// Configuration for [`SnippetGenerator`].
#[derive(Debug, Clone)]
pub struct SnippetConfig {
    /// Window size in tokens.
    pub window: usize,
    /// Hard cap on snippet length in characters (applied after window
    /// selection, on a char boundary, with an ellipsis).
    pub max_chars: usize,
}

impl Default for SnippetConfig {
    fn default() -> Self {
        SnippetConfig {
            window: 24,
            max_chars: 220,
        }
    }
}

/// Builds highlighted snippets for a fixed set of query words.
pub struct SnippetGenerator<'a> {
    analyzer: &'a dyn Analyzer,
    terms: FxHashSet<String>,
    config: SnippetConfig,
}

impl<'a> SnippetGenerator<'a> {
    /// Create a generator for `query_words` (raw query words; they are
    /// analyzed with the same analyzer as the text so stemmed forms
    /// match).
    pub fn new(analyzer: &'a dyn Analyzer, query_words: &[&str]) -> Self {
        Self::with_config(analyzer, query_words, SnippetConfig::default())
    }

    /// Create a generator with explicit window/length configuration.
    pub fn with_config(
        analyzer: &'a dyn Analyzer,
        query_words: &[&str],
        config: SnippetConfig,
    ) -> Self {
        let mut terms = FxHashSet::default();
        for w in query_words {
            for tok in analyzer.analyze(w) {
                terms.insert(tok.term);
            }
        }
        SnippetGenerator {
            analyzer,
            terms,
            config,
        }
    }

    /// Produce a highlighted, HTML-escaped snippet of `text`.
    ///
    /// When no query term occurs in the text the leading window is
    /// returned un-highlighted (the behaviour users expect from a web
    /// result with a title-only match).
    pub fn snippet(&self, text: &str) -> String {
        let tokens = self.analyzer.analyze(text);
        if tokens.is_empty() {
            return truncate_escape(text, self.config.max_chars);
        }
        let matched: Vec<bool> = tokens
            .iter()
            .map(|t| self.terms.contains(&t.term))
            .collect();

        // Slide the window; count distinct matched terms per window.
        let w = self.config.window.max(1).min(tokens.len());
        let mut best_start = 0usize;
        let mut best_score = -1i64;
        for start in 0..=(tokens.len() - w) {
            let mut seen = FxHashSet::default();
            for i in start..start + w {
                if matched[i] {
                    seen.insert(tokens[i].term.as_str());
                }
            }
            let score = seen.len() as i64;
            if score > best_score {
                best_score = score;
                best_start = start;
            }
            if score == 0 && best_score >= 0 {
                // Keep earliest on ties via strict '>' above.
            }
        }
        // Extend the window to the text boundaries when it touches the
        // first/last token, so leading/trailing punctuation survives.
        let last_idx = (best_start + w - 1).min(tokens.len() - 1);
        let from = if best_start == 0 {
            0
        } else {
            tokens[best_start].start
        };
        let to = if last_idx == tokens.len() - 1 {
            text.len()
        } else {
            tokens[last_idx].end
        };

        // Emit escaped text with <b> around matched tokens.
        let mut out = String::with_capacity((to - from) + 32);
        if from > 0 {
            out.push_str("… ");
        }
        let mut cursor = from;
        for (i, tok) in tokens.iter().enumerate() {
            if i < best_start || i >= best_start + w {
                continue;
            }
            if tok.start > cursor {
                push_escaped(&mut out, &text[cursor..tok.start]);
            }
            if matched[i] {
                out.push_str("<b>");
                push_escaped(&mut out, &text[tok.start..tok.end]);
                out.push_str("</b>");
            } else {
                push_escaped(&mut out, &text[tok.start..tok.end]);
            }
            cursor = tok.end;
        }
        if to > cursor {
            push_escaped(&mut out, &text[cursor..to]);
        }
        if to < text.len() {
            out.push_str(" …");
        }
        clamp_chars(&mut out, self.config.max_chars);
        out
    }
}

/// Escape `&`, `<`, `>`, `"` for safe HTML embedding.
pub fn escape_html(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    push_escaped(&mut out, text);
    out
}

fn push_escaped(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

fn truncate_escape(text: &str, max_chars: usize) -> String {
    let mut s = escape_html(text);
    clamp_chars(&mut s, max_chars);
    s
}

fn clamp_chars(s: &mut String, max_chars: usize) {
    if s.chars().count() > max_chars {
        let cut = s
            .char_indices()
            .nth(max_chars.saturating_sub(1))
            .map(|(i, _)| i)
            .unwrap_or(s.len());
        s.truncate(cut);
        s.push('…');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::StandardAnalyzer;

    fn gen<'a>(an: &'a StandardAnalyzer, words: &[&str]) -> SnippetGenerator<'a> {
        SnippetGenerator::new(an, words)
    }

    #[test]
    fn highlights_matched_terms() {
        let an = StandardAnalyzer::new();
        let g = gen(&an, &["space", "shooter"]);
        let s = g.snippet("A thrilling space shooter for everyone");
        assert!(s.contains("<b>space</b>"), "got: {s}");
        assert!(s.contains("<b>shooter</b>"), "got: {s}");
    }

    #[test]
    fn stemmed_forms_highlight() {
        let an = StandardAnalyzer::new();
        let g = gen(&an, &["laser"]);
        let s = g.snippet("many lasers everywhere");
        assert!(s.contains("<b>lasers</b>"), "got: {s}");
    }

    #[test]
    fn picks_window_with_most_distinct_terms() {
        let an = StandardAnalyzer::new();
        let cfg = SnippetConfig {
            window: 5,
            max_chars: 500,
        };
        let g = SnippetGenerator::with_config(&an, &["wine", "bordeaux"], cfg);
        let text = "filler filler filler filler filler filler filler filler \
                    great wine from bordeaux chateau filler filler";
        let s = g.snippet(text);
        assert!(
            s.contains("<b>wine</b>") && s.contains("<b>bordeaux</b>"),
            "got: {s}"
        );
        assert!(s.starts_with("… "), "leading ellipsis expected: {s}");
    }

    #[test]
    fn no_match_returns_leading_window() {
        let an = StandardAnalyzer::new();
        let g = gen(&an, &["absent"]);
        let s = g.snippet("Just a plain description of a product");
        assert!(!s.contains("<b>"));
        assert!(s.contains("plain"));
    }

    #[test]
    fn escapes_html() {
        let an = StandardAnalyzer::new();
        let g = gen(&an, &["bold"]);
        let s = g.snippet("<script> bold & dangerous \"stuff\"");
        assert!(s.contains("&lt;script&gt;"), "got: {s}");
        assert!(s.contains("&amp;"), "got: {s}");
        assert!(s.contains("&quot;stuff&quot;"), "got: {s}");
        assert!(s.contains("<b>bold</b>"), "got: {s}");
    }

    #[test]
    fn empty_text() {
        let an = StandardAnalyzer::new();
        let g = gen(&an, &["x"]);
        assert_eq!(g.snippet(""), "");
    }

    #[test]
    fn clamps_to_max_chars() {
        let an = StandardAnalyzer::new();
        let cfg = SnippetConfig {
            window: 50,
            max_chars: 20,
        };
        let g = SnippetGenerator::with_config(&an, &["word"], cfg);
        let s = g.snippet("word ".repeat(50).as_str());
        assert!(s.chars().count() <= 21, "got len {}", s.chars().count());
        assert!(s.ends_with('…'));
    }

    #[test]
    fn escape_html_standalone() {
        assert_eq!(escape_html("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn trailing_ellipsis_when_text_continues() {
        let an = StandardAnalyzer::new();
        let cfg = SnippetConfig {
            window: 3,
            max_chars: 500,
        };
        let g = SnippetGenerator::with_config(&an, &["alpha"], cfg);
        let s = g.snippet("alpha beta gamma delta epsilon");
        assert!(s.ends_with(" …"), "got: {s}");
    }
}
