//! Segment types for the index lifecycle and the parallel build.
//!
//! The index is a segment-lifecycle runtime: writes land in one
//! mutable in-memory [`ActiveSegment`] (the memtable), a seal turns it
//! into an immutable [`SealedSegment`] (compressed postings plus
//! precomputed score-bound stats), and tiered merges fold adjacent
//! sealed segments together, purging tombstoned documents and
//! rebuilding stats as they go. All segments share the index's global
//! lexicon and doc-id space, so a segment is purely a slice of the
//! posting data — queries chain per-segment cursors back into one
//! doc-ordered stream.
//!
//! Separately, [`SegmentBuilder`] is the per-thread builder for the
//! parallel batch build:
//!
//! [`Index::build_parallel`](crate::Index::build_parallel) partitions a
//! document batch into contiguous chunks, hands each chunk to one
//! [`SegmentBuilder`] on its own thread (independent lexicon and
//! postings — no shared locks on the hot loop), and then folds the
//! finished [`Segment`]s back into the single-`Index` representation
//! with a deterministic merge. Determinism falls out of two choices:
//!
//! 1. **Contiguous partitioning.** Chunk `i` holds global doc ids
//!    `[base_i, base_i + len_i)`, so concatenating each term's segment
//!    posting lists in chunk order yields exactly the doc-ordered list
//!    a sequential build would have produced.
//! 2. **First-encounter lexicon merge.** Each segment's local lexicon
//!    is in first-encounter order within its chunk; appending segments
//!    in chunk order with append-if-absent interning reproduces the
//!    global first-encounter order of a sequential pass, so merged
//!    term ids are bit-identical to sequential ones.

use crate::analysis::{Analyzer, TokenScratch};
use crate::fx::FxHashMap;
use crate::index::{Doc, FieldId, TermScoreStats};
use crate::lexicon::{Lexicon, TermId};
use crate::postings::{CompressedPostings, PostingList};
use crate::DocId;

/// The mutable in-memory segment (memtable): raw posting lists keyed
/// by **global** term id, covering docs `[base, base + docs)`.
#[derive(Debug, Default)]
pub(crate) struct ActiveSegment {
    /// Global doc id of the first document in this segment.
    pub(crate) base: u32,
    /// Documents added since the last seal.
    pub(crate) docs: u32,
    /// Raw doc-ordered posting lists, global term ids.
    pub(crate) postings: FxHashMap<(TermId, FieldId), PostingList>,
}

impl ActiveSegment {
    /// Fresh empty memtable starting at `base`.
    pub(crate) fn starting_at(base: u32) -> Self {
        ActiveSegment {
            base,
            docs: 0,
            postings: FxHashMap::default(),
        }
    }
}

/// An immutable sealed segment: block-compressed postings keyed by
/// **global** term id, plus the per-list score-bound ingredients
/// computed when the segment was sealed or last merged.
#[derive(Debug)]
pub(crate) struct SealedSegment {
    /// Global doc id of the first document in the segment's range.
    pub(crate) base: u32,
    /// Width of the covered doc-id range (tombstoned docs included;
    /// purged docs leave holes, ids are never renumbered).
    pub(crate) docs: u32,
    /// Range docs that were already tombstoned *and purged from the
    /// lists* when this segment was built. The difference between the
    /// current tombstone count over the range and this number is the
    /// segment's pending-garbage count, which drives compaction.
    pub(crate) purged: u32,
    /// Compressed posting lists; doc ids global, term ids global.
    pub(crate) postings: FxHashMap<(TermId, FieldId), CompressedPostings>,
    /// Score-bound ingredients per list, computed at seal/merge time.
    /// Every key in `postings` has an entry.
    pub(crate) stats: FxHashMap<(TermId, FieldId), TermScoreStats>,
}

impl SealedSegment {
    /// Approximate heap bytes held by the segment's posting data.
    pub(crate) fn postings_bytes(&self) -> usize {
        self.postings.values().map(|c| c.byte_len()).sum()
    }
}

/// The output of one [`SegmentBuilder`]: a self-contained slice of the
/// index covering a contiguous global doc-id range. Term ids are local
/// to the segment's lexicon; doc ids are already global.
pub(crate) struct Segment {
    /// Local term interner, in first-encounter order within the chunk.
    pub(crate) lexicon: Lexicon,
    /// Postings keyed by (local term id, field); doc ids are global.
    pub(crate) postings: FxHashMap<(TermId, FieldId), PostingList>,
    /// Per field, per chunk-local doc: analyzed token count.
    pub(crate) field_len: Vec<Vec<u32>>,
    /// Per field: sum of analyzed lengths over the chunk.
    pub(crate) total_len: Vec<u64>,
    /// Stored field text per chunk-local doc (empty rows when the
    /// index does not store text, mirroring `Index::add`).
    pub(crate) stored: Vec<Vec<(FieldId, String)>>,
    /// Documents in this segment.
    pub(crate) docs: u32,
}

/// Builds one [`Segment`] over a contiguous chunk of documents. Owns
/// every mutable structure it touches, so the per-document hot loop
/// takes no locks and shares nothing with sibling builders.
pub(crate) struct SegmentBuilder<'a> {
    analyzer: &'a dyn Analyzer,
    store_text: bool,
    num_fields: usize,
    /// Global doc id of the chunk's first document.
    base: u32,
    seg: Segment,
    /// Reused analysis staging buffers (one per builder, shared across
    /// every document in the chunk).
    scratch: TokenScratch,
}

impl<'a> SegmentBuilder<'a> {
    pub(crate) fn new(
        analyzer: &'a dyn Analyzer,
        store_text: bool,
        num_fields: usize,
        base: u32,
    ) -> Self {
        SegmentBuilder {
            analyzer,
            store_text,
            num_fields,
            base,
            seg: Segment {
                lexicon: Lexicon::new(),
                postings: FxHashMap::default(),
                field_len: vec![Vec::new(); num_fields],
                total_len: vec![0; num_fields],
                stored: Vec::new(),
                docs: 0,
            },
            scratch: TokenScratch::default(),
        }
    }

    /// Add the next document of the chunk. Mirrors `Index::add`
    /// token-for-token so the merged result is bit-identical to a
    /// sequential build.
    pub(crate) fn add(&mut self, doc: Doc) {
        let local = self.seg.docs as usize;
        let id = DocId(self.base + self.seg.docs);
        self.seg.docs += 1;
        for lens in &mut self.seg.field_len {
            lens.push(0);
        }
        for (field, text) in doc.fields() {
            let field = *field;
            assert!(
                (field.0 as usize) < self.num_fields,
                "field {} not registered with this index",
                field.0
            );
            let base_pos = self.seg.field_len[field.0 as usize][local];
            let lexicon = &mut self.seg.lexicon;
            let postings = &mut self.seg.postings;
            let mut last_pos = None;
            self.analyzer
                .analyze_with(text, &mut self.scratch, &mut |term, pos, _start, _end| {
                    last_pos = Some(pos);
                    let term = lexicon.intern(term);
                    postings
                        .entry((term, field))
                        .or_default()
                        .push_occurrence(id, base_pos + pos);
                });
            let added = last_pos.map(|p| p + 1).unwrap_or(0);
            self.seg.field_len[field.0 as usize][local] += added;
            self.seg.total_len[field.0 as usize] += added as u64;
        }
        if self.store_text {
            self.seg.stored.push(doc.into_fields());
        } else {
            self.seg.stored.push(Vec::new());
        }
    }

    pub(crate) fn finish(self) -> Segment {
        self.seg
    }
}
