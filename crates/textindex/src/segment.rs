//! Per-thread segment builders for the parallel index build.
//!
//! [`Index::build_parallel`](crate::Index::build_parallel) partitions a
//! document batch into contiguous chunks, hands each chunk to one
//! [`SegmentBuilder`] on its own thread (independent lexicon and
//! postings — no shared locks on the hot loop), and then folds the
//! finished [`Segment`]s back into the single-`Index` representation
//! with a deterministic merge. Determinism falls out of two choices:
//!
//! 1. **Contiguous partitioning.** Chunk `i` holds global doc ids
//!    `[base_i, base_i + len_i)`, so concatenating each term's segment
//!    posting lists in chunk order yields exactly the doc-ordered list
//!    a sequential build would have produced.
//! 2. **First-encounter lexicon merge.** Each segment's local lexicon
//!    is in first-encounter order within its chunk; appending segments
//!    in chunk order with append-if-absent interning reproduces the
//!    global first-encounter order of a sequential pass, so merged
//!    term ids are bit-identical to sequential ones.

use crate::analysis::{Analyzer, TokenScratch};
use crate::fx::FxHashMap;
use crate::index::{Doc, FieldId};
use crate::lexicon::{Lexicon, TermId};
use crate::postings::PostingList;
use crate::DocId;

/// The output of one [`SegmentBuilder`]: a self-contained slice of the
/// index covering a contiguous global doc-id range. Term ids are local
/// to the segment's lexicon; doc ids are already global.
pub(crate) struct Segment {
    /// Local term interner, in first-encounter order within the chunk.
    pub(crate) lexicon: Lexicon,
    /// Postings keyed by (local term id, field); doc ids are global.
    pub(crate) postings: FxHashMap<(TermId, FieldId), PostingList>,
    /// Per field, per chunk-local doc: analyzed token count.
    pub(crate) field_len: Vec<Vec<u32>>,
    /// Per field: sum of analyzed lengths over the chunk.
    pub(crate) total_len: Vec<u64>,
    /// Stored field text per chunk-local doc (empty rows when the
    /// index does not store text, mirroring `Index::add`).
    pub(crate) stored: Vec<Vec<(FieldId, String)>>,
    /// Documents in this segment.
    pub(crate) docs: u32,
}

/// Builds one [`Segment`] over a contiguous chunk of documents. Owns
/// every mutable structure it touches, so the per-document hot loop
/// takes no locks and shares nothing with sibling builders.
pub(crate) struct SegmentBuilder<'a> {
    analyzer: &'a dyn Analyzer,
    store_text: bool,
    num_fields: usize,
    /// Global doc id of the chunk's first document.
    base: u32,
    seg: Segment,
    /// Reused analysis staging buffers (one per builder, shared across
    /// every document in the chunk).
    scratch: TokenScratch,
}

impl<'a> SegmentBuilder<'a> {
    pub(crate) fn new(
        analyzer: &'a dyn Analyzer,
        store_text: bool,
        num_fields: usize,
        base: u32,
    ) -> Self {
        SegmentBuilder {
            analyzer,
            store_text,
            num_fields,
            base,
            seg: Segment {
                lexicon: Lexicon::new(),
                postings: FxHashMap::default(),
                field_len: vec![Vec::new(); num_fields],
                total_len: vec![0; num_fields],
                stored: Vec::new(),
                docs: 0,
            },
            scratch: TokenScratch::default(),
        }
    }

    /// Add the next document of the chunk. Mirrors `Index::add`
    /// token-for-token so the merged result is bit-identical to a
    /// sequential build.
    pub(crate) fn add(&mut self, doc: Doc) {
        let local = self.seg.docs as usize;
        let id = DocId(self.base + self.seg.docs);
        self.seg.docs += 1;
        for lens in &mut self.seg.field_len {
            lens.push(0);
        }
        for (field, text) in doc.fields() {
            let field = *field;
            assert!(
                (field.0 as usize) < self.num_fields,
                "field {} not registered with this index",
                field.0
            );
            let base_pos = self.seg.field_len[field.0 as usize][local];
            let lexicon = &mut self.seg.lexicon;
            let postings = &mut self.seg.postings;
            let mut last_pos = None;
            self.analyzer
                .analyze_with(text, &mut self.scratch, &mut |term, pos, _start, _end| {
                    last_pos = Some(pos);
                    let term = lexicon.intern(term);
                    postings
                        .entry((term, field))
                        .or_default()
                        .push_occurrence(id, base_pos + pos);
                });
            let added = last_pos.map(|p| p + 1).unwrap_or(0);
            self.seg.field_len[field.0 as usize][local] += added;
            self.seg.total_len[field.0 as usize] += added as u64;
        }
        if self.store_text {
            self.seg.stored.push(doc.into_fields());
        } else {
            self.seg.stored.push(Vec::new());
        }
    }

    pub(crate) fn finish(self) -> Segment {
        self.seg
    }
}
