//! Materialized doc-id sets for conjunctive filter pushdown.
//!
//! A structured predicate resolved by a secondary index yields a set
//! of document ids. Handing that set to the executor as an opaque
//! `Fn(DocId) -> bool` closure (the historical path) still pays the
//! full candidate-selection tax: every posting block that contains a
//! candidate gets decoded and every candidate gets scored far enough
//! to call the closure. [`DocSet`] instead materializes the set in a
//! cursor-friendly shape so the DAAT executor can treat it as a
//! *non-scoring conjunctive cursor* (see
//! [`Searcher::search_docset`](crate::search::Searcher::search_docset)):
//! the intersection drives from the filter when it is the rarest gate,
//! and term cursors `seek` straight to surviving candidates, skipping
//! whole posting blocks decode-free via their block directories.
//!
//! Two representations, chosen by density at construction:
//!
//! * **Sorted vec** for sparse sets: a galloping [`FilterCursor`]
//!   resumes from its last position, so a full intersection pass is
//!   O(|set| log gap) regardless of corpus size.
//! * **Bitset** for dense sets: one bit per doc plus a one-level
//!   summary bitmap (one bit per 64-doc word, i.e. a 4096-doc span per
//!   summary word) — the block-max-style skip metadata that lets
//!   `seek` hop empty regions word-at-a-time instead of bit-at-a-time.
//!
//! The crossover (1/16 dense) keeps the bitset's O(universe/8) bytes
//! no worse than ~2× the sorted vec it replaces while making `seek`
//! O(1) amortized.

use crate::postings::NO_DOC;
use crate::DocId;

/// Bits per bitset word.
const WORD_BITS: u32 = 64;
/// A set denser than one member per `DENSITY_CUTOFF` docs of its
/// universe is stored as a bitset.
const DENSITY_CUTOFF: u32 = 16;

/// An immutable set of document ids, stored sorted-vec or bitset by
/// density. Built once per query from a resolved structured predicate.
#[derive(Debug, Clone)]
pub enum DocSet {
    /// Sparse: strictly increasing doc ids.
    Sorted(Vec<u32>),
    /// Dense: one bit per doc id, plus a summary bitmap with one bit
    /// per word (set when the word has any member) for wide skips.
    Bits {
        /// Membership words; bit `d % 64` of word `d / 64`.
        words: Vec<u64>,
        /// Summary: bit `w % 64` of word `w / 64` set when `words[w]`
        /// is non-zero.
        summary: Vec<u64>,
        /// Member count (maintained, not recounted).
        count: usize,
    },
}

impl DocSet {
    /// Build from a sorted, deduplicated id list, choosing the
    /// representation by density over the `[0, max_id]` universe.
    ///
    /// Callers must pass strictly increasing ids (checked in debug
    /// builds); [`DocSet::from_unsorted`] sorts and dedups first.
    pub fn from_sorted(ids: Vec<u32>) -> DocSet {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let Some(&max) = ids.last() else {
            return DocSet::Sorted(ids);
        };
        let universe = max.saturating_add(1);
        if (ids.len() as u64) * (DENSITY_CUTOFF as u64) < universe as u64 {
            return DocSet::Sorted(ids);
        }
        let nwords = universe.div_ceil(WORD_BITS) as usize;
        let mut words = vec![0u64; nwords];
        for &d in &ids {
            words[(d / WORD_BITS) as usize] |= 1u64 << (d % WORD_BITS);
        }
        let mut summary = vec![0u64; nwords.div_ceil(WORD_BITS as usize)];
        for (w, &word) in words.iter().enumerate() {
            if word != 0 {
                summary[w / WORD_BITS as usize] |= 1u64 << (w as u32 % WORD_BITS);
            }
        }
        DocSet::Bits {
            words,
            summary,
            count: ids.len(),
        }
    }

    /// Build from ids in any order (sorts and dedups).
    pub fn from_unsorted(mut ids: Vec<u32>) -> DocSet {
        ids.sort_unstable();
        ids.dedup();
        DocSet::from_sorted(ids)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match self {
            DocSet::Sorted(v) => v.len(),
            DocSet::Bits { count, .. } => *count,
        }
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test (used by the exhaustive executor, which scores
    /// hash-map entries in arbitrary order and cannot use a cursor).
    pub fn contains(&self, doc: DocId) -> bool {
        let d = doc.0;
        match self {
            DocSet::Sorted(v) => v.binary_search(&d).is_ok(),
            DocSet::Bits { words, .. } => {
                let w = (d / WORD_BITS) as usize;
                w < words.len() && words[w] & (1u64 << (d % WORD_BITS)) != 0
            }
        }
    }

    /// Iterate members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cursor = FilterCursor::new(self);
        std::iter::from_fn(move || {
            let d = cursor.doc();
            if d == NO_DOC {
                None
            } else {
                cursor.seek(d + 1);
                Some(d)
            }
        })
    }
}

/// Forward-only cursor over a [`DocSet`], mirroring the seek contract
/// of [`PostingsCursor`](crate::postings::PostingsCursor): `doc()`
/// reports the current member ([`NO_DOC`] when exhausted), `seek`
/// moves to the smallest member `>= target` and requires
/// non-decreasing targets. This is what slots into the `+must`
/// galloping intersection as a non-scoring gate.
#[derive(Debug)]
pub struct FilterCursor<'a> {
    set: &'a DocSet,
    /// Sorted-vec representation: index of the current member.
    pos: usize,
    /// Current member doc, or [`NO_DOC`].
    at: u32,
}

impl<'a> FilterCursor<'a> {
    /// Cursor positioned on the set's first member.
    pub fn new(set: &'a DocSet) -> FilterCursor<'a> {
        let mut c = FilterCursor { set, pos: 0, at: 0 };
        c.at = c.first();
        c
    }

    fn first(&self) -> u32 {
        match self.set {
            DocSet::Sorted(v) => v.first().copied().unwrap_or(NO_DOC),
            DocSet::Bits { .. } => {
                let mut probe = FilterCursor {
                    set: self.set,
                    pos: 0,
                    at: 0,
                };
                probe.seek_bits(0)
            }
        }
    }

    /// Current member, or [`NO_DOC`] when exhausted.
    #[inline]
    pub fn doc(&self) -> u32 {
        self.at
    }

    /// Smallest member `>= target` (no-op when already there).
    /// Targets must be non-decreasing across calls.
    pub fn seek(&mut self, target: u32) -> u32 {
        if self.at >= target {
            // Covers exhaustion: NO_DOC >= any target.
            return self.at;
        }
        self.at = match self.set {
            DocSet::Sorted(_) => self.seek_sorted(target),
            DocSet::Bits { .. } => self.seek_bits(target),
        };
        self.at
    }

    /// Galloping search forward from the current position: doubling
    /// probe to bracket `target`, then a binary search inside the
    /// bracket. Resuming from `pos` makes a monotone seek sequence
    /// over the whole set O(len log gap) total.
    fn seek_sorted(&mut self, target: u32) -> u32 {
        let DocSet::Sorted(v) = self.set else {
            unreachable!("seek_sorted on sorted sets only");
        };
        let mut lo = self.pos;
        if lo >= v.len() {
            return NO_DOC;
        }
        if v[lo] >= target {
            self.pos = lo;
            return v[lo];
        }
        let mut step = 1usize;
        let mut hi = lo + 1;
        while hi < v.len() && v[hi] < target {
            lo = hi;
            step <<= 1;
            hi = (lo + step).min(v.len());
            if hi == v.len() {
                break;
            }
        }
        // Invariant: v[lo] < target, and (hi == len or v[hi] >= target).
        let rel = v[lo + 1..hi].partition_point(|&d| d < target);
        let idx = lo + 1 + rel;
        self.pos = idx;
        if idx < v.len() {
            v[idx]
        } else {
            NO_DOC
        }
    }

    /// Bitset seek: mask off bits below `target` in its word, then use
    /// the summary bitmap to skip runs of empty words (4096 docs per
    /// summary word) without touching them.
    fn seek_bits(&mut self, target: u32) -> u32 {
        let DocSet::Bits { words, summary, .. } = self.set else {
            unreachable!("seek_bits on bitsets only");
        };
        let mut w = (target / WORD_BITS) as usize;
        if w >= words.len() {
            return NO_DOC;
        }
        let masked = words[w] & (!0u64 << (target % WORD_BITS));
        if masked != 0 {
            return w as u32 * WORD_BITS + masked.trailing_zeros();
        }
        // Skip via the summary: find the next non-empty word > w.
        w += 1;
        let mut s = w / WORD_BITS as usize;
        while s < summary.len() {
            // Only the first summary word needs its low bits (words
            // before `w`) masked off.
            let mask = if s == w / WORD_BITS as usize {
                !0u64 << (w as u32 % WORD_BITS)
            } else {
                !0u64
            };
            let sm = summary[s] & mask;
            if sm != 0 {
                let nw = s * WORD_BITS as usize + sm.trailing_zeros() as usize;
                let word = words[nw];
                debug_assert_ne!(word, 0, "summary bit implies a member");
                return nw as u32 * WORD_BITS + word.trailing_zeros();
            }
            s += 1;
        }
        NO_DOC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_stays_sorted_vec_dense_becomes_bits() {
        let sparse = DocSet::from_sorted(vec![5, 1000, 100_000]);
        assert!(matches!(sparse, DocSet::Sorted(_)));
        let dense = DocSet::from_sorted((0..1000).step_by(2).collect());
        assert!(matches!(dense, DocSet::Bits { .. }));
        assert_eq!(dense.len(), 500);
    }

    #[test]
    fn contains_and_iter_agree_on_both_reprs() {
        for ids in [
            vec![3u32, 9, 12, 500, 70_001],
            (0..4096).step_by(3).collect::<Vec<u32>>(),
            vec![],
            vec![0],
            vec![NO_DOC - 1],
        ] {
            let set = DocSet::from_sorted(ids.clone());
            assert_eq!(set.iter().collect::<Vec<_>>(), ids);
            for &d in &ids {
                assert!(set.contains(DocId(d)));
            }
            assert!(!set.contains(DocId(NO_DOC)));
        }
    }

    #[test]
    fn fresh_cursor_seek_matches_linear_scan() {
        let cases = [
            vec![2u32, 3, 64, 65, 127, 128, 4095, 4096, 9000],
            (0..600).map(|i| i * 7).collect::<Vec<u32>>(),
        ];
        for ids in cases {
            let set = DocSet::from_sorted(ids.clone());
            for t in 0..(ids.last().copied().unwrap_or(0) + 5) {
                let expect = ids.iter().copied().find(|&d| d >= t).unwrap_or(NO_DOC);
                let mut fresh = FilterCursor::new(&set);
                assert_eq!(fresh.seek(t), expect, "seek({t}) over {} ids", ids.len());
            }
        }
    }

    #[test]
    fn resumed_monotone_seeks_match_linear_scan() {
        for ids in [
            (0..500).map(|i| i * 13 + (i % 3)).collect::<Vec<u32>>(),
            (0..5000).step_by(2).collect::<Vec<u32>>(),
        ] {
            let set = DocSet::from_sorted(ids.clone());
            let mut cur = FilterCursor::new(&set);
            let last = ids.last().copied().unwrap_or(0);
            let targets = [0u32, 1, 26, 27, 130, 131, 1000, 2600, last, last + 1];
            for &t in &targets {
                let expect = ids.iter().copied().find(|&d| d >= t).unwrap_or(NO_DOC);
                // The resumed cursor honours the non-decreasing-target
                // contract: its answer is the linear-scan answer.
                assert_eq!(cur.seek(t), expect, "resumed seek({t})");
            }
        }
    }

    #[test]
    fn empty_set_cursor_is_exhausted() {
        let set = DocSet::from_sorted(vec![]);
        let mut cur = FilterCursor::new(&set);
        assert_eq!(cur.doc(), NO_DOC);
        assert_eq!(cur.seek(42), NO_DOC);
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let set = DocSet::from_unsorted(vec![9, 3, 3, 7, 9]);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 7, 9]);
    }
}
