//! The user-facing query language.
//!
//! The syntax is the small classic web-search grammar, which is also
//! what Symphony's configurable sources understand:
//!
//! * `space shooter` — two optional ("should") terms;
//! * `"space shooter"` — a phrase that must appear contiguously;
//! * `+shooter` — a required term; `-puzzle` — an excluded term;
//! * `title:raiders` — restrict one clause to a named field.
//!
//! Parsing happens on the raw string; analysis (lowercasing, stemming)
//! is applied later against a concrete index's analyzer, because the
//! analyzer is per-index.

/// Whether a clause is optional, required, or prohibited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occur {
    /// Contributes to the score; not required.
    Should,
    /// Document must match the clause.
    Must,
    /// Document must not match the clause.
    MustNot,
}

/// What a clause matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClauseKind {
    /// A single term.
    Term(String),
    /// A contiguous phrase.
    Phrase(Vec<String>),
}

/// One parsed query clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Optional/required/prohibited.
    pub occur: Occur,
    /// Term or phrase.
    pub kind: ClauseKind,
    /// Restrict to a named field, or search all fields.
    pub field: Option<String>,
}

/// A parsed query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Query {
    /// The clauses in input order.
    pub clauses: Vec<Clause>,
}

impl Query {
    /// Parse the query syntax described at module level. Parsing never
    /// fails: malformed input degrades to plain terms (an unclosed
    /// quote spans to the end of the string).
    pub fn parse(input: &str) -> Query {
        let mut clauses = Vec::new();
        let mut chars = input.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            // Occurrence prefix.
            let occur = match c {
                '+' => {
                    chars.next();
                    Occur::Must
                }
                '-' => {
                    chars.next();
                    Occur::MustNot
                }
                _ => Occur::Should,
            };
            let _ = i;
            // Optional field prefix: letters up to ':' followed by a
            // non-space.
            let mut field = None;
            if let Some(&(start, fc)) = chars.peek() {
                if fc.is_alphabetic() {
                    // Lookahead for "name:" without consuming on failure.
                    let rest = &input[start..];
                    if let Some(colon) = rest.find(':') {
                        let name = &rest[..colon];
                        let after = rest[colon + 1..].chars().next();
                        if !name.is_empty()
                            && name.chars().all(|ch| ch.is_alphanumeric() || ch == '_')
                            && after.map(|a| !a.is_whitespace()).unwrap_or(false)
                        {
                            field = Some(name.to_string());
                            for _ in 0..name.chars().count() + 1 {
                                chars.next();
                            }
                        }
                    }
                }
            }
            // Phrase or bare term.
            match chars.peek() {
                Some(&(_, '"')) => {
                    chars.next();
                    let mut words = Vec::new();
                    let mut cur = String::new();
                    let mut closed = false;
                    for (_, ch) in chars.by_ref() {
                        if ch == '"' {
                            closed = true;
                            break;
                        }
                        if ch.is_whitespace() {
                            if !cur.is_empty() {
                                words.push(std::mem::take(&mut cur));
                            }
                        } else {
                            cur.push(ch);
                        }
                    }
                    let _ = closed;
                    if !cur.is_empty() {
                        words.push(cur);
                    }
                    match words.len() {
                        0 => {}
                        1 => clauses.push(Clause {
                            occur,
                            kind: ClauseKind::Term(words.pop().unwrap()),
                            field,
                        }),
                        _ => clauses.push(Clause {
                            occur,
                            kind: ClauseKind::Phrase(words),
                            field,
                        }),
                    }
                }
                Some(_) => {
                    let mut word = String::new();
                    while let Some(&(_, ch)) = chars.peek() {
                        if ch.is_whitespace() {
                            break;
                        }
                        word.push(ch);
                        chars.next();
                    }
                    if !word.is_empty() {
                        clauses.push(Clause {
                            occur,
                            kind: ClauseKind::Term(word),
                            field,
                        });
                    }
                }
                None => {}
            }
        }
        Query { clauses }
    }

    /// Build a query from plain terms, all `Should`, no fields. Used by
    /// programmatic callers (supplemental query templates).
    pub fn terms<I, S>(terms: I) -> Query
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Query {
            clauses: terms
                .into_iter()
                .map(|t| Clause {
                    occur: Occur::Should,
                    kind: ClauseKind::Term(t.into()),
                    field: None,
                })
                .collect(),
        }
    }

    /// True when no clause would contribute a match.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// All positive (non-excluded) raw words, for highlighting.
    pub fn positive_words(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for c in &self.clauses {
            if c.occur == Occur::MustNot {
                continue;
            }
            match &c.kind {
                ClauseKind::Term(t) => out.push(t.as_str()),
                ClauseKind::Phrase(ws) => out.extend(ws.iter().map(|w| w.as_str())),
            }
        }
        out
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for c in &self.clauses {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match c.occur {
                Occur::Must => write!(f, "+")?,
                Occur::MustNot => write!(f, "-")?,
                Occur::Should => {}
            }
            if let Some(field) = &c.field {
                write!(f, "{field}:")?;
            }
            match &c.kind {
                ClauseKind::Term(t) => write!(f, "{t}")?,
                ClauseKind::Phrase(ws) => write!(f, "\"{}\"", ws.join(" "))?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_terms() {
        let q = Query::parse("space shooter");
        assert_eq!(q.clauses.len(), 2);
        assert!(q
            .clauses
            .iter()
            .all(|c| c.occur == Occur::Should && c.field.is_none()));
    }

    #[test]
    fn phrase() {
        let q = Query::parse("\"space shooter\" game");
        assert_eq!(q.clauses.len(), 2);
        assert_eq!(
            q.clauses[0].kind,
            ClauseKind::Phrase(vec!["space".into(), "shooter".into()])
        );
    }

    #[test]
    fn single_word_phrase_degrades_to_term() {
        let q = Query::parse("\"shooter\"");
        assert_eq!(q.clauses[0].kind, ClauseKind::Term("shooter".into()));
    }

    #[test]
    fn must_and_mustnot_prefixes() {
        let q = Query::parse("+shooter -puzzle arcade");
        assert_eq!(q.clauses[0].occur, Occur::Must);
        assert_eq!(q.clauses[1].occur, Occur::MustNot);
        assert_eq!(q.clauses[2].occur, Occur::Should);
    }

    #[test]
    fn field_restriction() {
        let q = Query::parse("title:raiders body:space");
        assert_eq!(q.clauses[0].field.as_deref(), Some("title"));
        assert_eq!(q.clauses[1].field.as_deref(), Some("body"));
    }

    #[test]
    fn field_with_phrase() {
        let q = Query::parse("title:\"galactic raiders\"");
        assert_eq!(q.clauses[0].field.as_deref(), Some("title"));
        assert!(matches!(q.clauses[0].kind, ClauseKind::Phrase(_)));
    }

    #[test]
    fn colon_without_field_name_is_a_term() {
        let q = Query::parse("12:30");
        // "12" is not alphabetic-leading... actually '1' is alphanumeric
        // but not alphabetic, so the whole token stays a term.
        assert_eq!(q.clauses[0].kind, ClauseKind::Term("12:30".into()));
    }

    #[test]
    fn trailing_colon_is_a_term() {
        let q = Query::parse("note:");
        assert_eq!(q.clauses.len(), 1);
        assert_eq!(q.clauses[0].kind, ClauseKind::Term("note:".into()));
        assert_eq!(q.clauses[0].field, None);
    }

    #[test]
    fn unclosed_quote_spans_to_end() {
        let q = Query::parse("\"space shooter");
        assert_eq!(
            q.clauses[0].kind,
            ClauseKind::Phrase(vec!["space".into(), "shooter".into()])
        );
    }

    #[test]
    fn empty_input() {
        assert!(Query::parse("").is_empty());
        assert!(Query::parse("   ").is_empty());
        assert!(Query::parse("\"\"").is_empty());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["space shooter", "+a -b c", "title:raiders", "\"a b\" c"] {
            let q = Query::parse(s);
            assert_eq!(Query::parse(&q.to_string()), q, "roundtrip of {s:?}");
        }
    }

    #[test]
    fn positive_words_excludes_mustnot() {
        let q = Query::parse("space -puzzle \"laser cannon\"");
        assert_eq!(q.positive_words(), vec!["space", "laser", "cannon"]);
    }

    #[test]
    fn terms_builder() {
        let q = Query::terms(["galactic", "raiders"]);
        assert_eq!(q.clauses.len(), 2);
        assert_eq!(q.to_string(), "galactic raiders");
    }
}
