//! A fast, non-cryptographic hasher (the `FxHash` algorithm used by
//! rustc), plus map/set type aliases.
//!
//! The default SipHash protects against HashDoS, which is irrelevant
//! here: every key hashed by the index is produced by our own analyzer
//! over our own corpora. Term-frequency accumulation during indexing and
//! score accumulation during search are the two hottest hash workloads
//! in the crate, and both use small integer or short-string keys where
//! FxHash wins decisively.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` word-at-a-time multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_hash_identically() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"symphony");
        b.write(b"symphony");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_keys_hash_differently() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"symphony");
        b.write(b"symphonz");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.get("b"), Some(&2));
        assert_eq!(m.get("c"), None);
    }

    #[test]
    fn integer_writes_match_byte_writes_semantics() {
        // Not required to be equal to `write`, just deterministic.
        let mut a = FxHasher::default();
        a.write_u32(42);
        let mut b = FxHasher::default();
        b.write_u32(42);
        assert_eq!(a.finish(), b.finish());
    }
}
