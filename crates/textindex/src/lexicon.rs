//! Term interning.
//!
//! Every distinct term string is stored once and referred to by a dense
//! [`TermId`]. Posting lists, document-frequency tables, and query
//! execution all operate on ids, which keeps the hot paths free of
//! string hashing.

use crate::fx::FxHashMap;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

/// An append-only interner mapping term strings to dense ids.
#[derive(Debug, Default, Clone)]
pub struct Lexicon {
    by_term: FxHashMap<String, TermId>,
    terms: Vec<String>,
}

impl Lexicon {
    /// Create an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_string());
        self.by_term.insert(term.to_string(), id);
        id
    }

    /// Look up a term without interning it. Query execution uses this:
    /// a query term absent from the lexicon matches nothing.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The string for an id. Panics on a foreign id; ids are only ever
    /// produced by this lexicon.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.0 as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut lex = Lexicon::new();
        let a = lex.intern("wine");
        let b = lex.intern("wine");
        assert_eq!(a, b);
        assert_eq!(lex.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_sight() {
        let mut lex = Lexicon::new();
        assert_eq!(lex.intern("a"), TermId(0));
        assert_eq!(lex.intern("b"), TermId(1));
        assert_eq!(lex.intern("a"), TermId(0));
        assert_eq!(lex.intern("c"), TermId(2));
    }

    #[test]
    fn get_does_not_intern() {
        let mut lex = Lexicon::new();
        assert_eq!(lex.get("missing"), None);
        lex.intern("present");
        assert_eq!(lex.get("present"), Some(TermId(0)));
        assert_eq!(lex.len(), 1);
    }

    #[test]
    fn term_roundtrip() {
        let mut lex = Lexicon::new();
        let id = lex.intern("margaux");
        assert_eq!(lex.term(id), "margaux");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut lex = Lexicon::new();
        lex.intern("x");
        lex.intern("y");
        let pairs: Vec<_> = lex.iter().map(|(i, t)| (i.0, t.to_string())).collect();
        assert_eq!(pairs, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }
}
