//! Term interning.
//!
//! Every distinct term string is stored once and referred to by a dense
//! [`TermId`]. Posting lists, document-frequency tables, and query
//! execution all operate on ids, which keeps the hot paths free of
//! string hashing.
//!
//! Storage is a bump arena: all term bytes live concatenated in one
//! `Vec<u8>`, each term identified by a `(offset, len)` span, with a
//! private open-addressing hash table mapping term bytes to ids. Both
//! [`Lexicon::get`] and [`Lexicon::intern`] hash the *borrowed* query
//! bytes directly against arena spans, so lookups never allocate and a
//! fresh intern costs one arena append (amortized) instead of the two
//! `String` allocations the `HashMap<String, TermId>` representation
//! paid per new term.

use crate::fx::FxHasher;
use std::hash::Hasher;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

/// Byte span of one term inside the arena.
#[derive(Debug, Clone, Copy)]
struct Span {
    offset: u32,
    len: u32,
}

/// An append-only interner mapping term strings to dense ids.
#[derive(Debug, Default, Clone)]
pub struct Lexicon {
    /// Concatenated UTF-8 bytes of every interned term, in id order.
    arena: Vec<u8>,
    /// Per-id byte span into `arena`.
    spans: Vec<Span>,
    /// Open-addressing table of `id + 1` (0 = empty slot), sized to a
    /// power of two, probed linearly from the term's Fx hash.
    table: Vec<u32>,
}

impl Lexicon {
    /// Create an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn hash(term: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(term);
        h.finish()
    }

    #[inline]
    fn span_bytes(&self, s: Span) -> &[u8] {
        &self.arena[s.offset as usize..(s.offset + s.len) as usize]
    }

    /// Find `term`'s slot: either the slot holding its id or the empty
    /// slot where it would be inserted. Requires a non-empty table.
    #[inline]
    fn probe(&self, term: &[u8]) -> usize {
        let mask = self.table.len() - 1;
        let mut slot = Self::hash(term) as usize & mask;
        loop {
            let entry = self.table[slot];
            if entry == 0 {
                return slot;
            }
            let span = self.spans[(entry - 1) as usize];
            if span.len as usize == term.len() && self.span_bytes(span) == term {
                return slot;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Grow (or create) the table and rehash every interned term.
    fn grow_table(&mut self) {
        let cap = (self.table.len() * 2).max(16);
        self.table = vec![0u32; cap];
        let mask = cap - 1;
        for (i, &span) in self.spans.iter().enumerate() {
            let mut slot = Self::hash(self.span_bytes(span)) as usize & mask;
            while self.table[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = i as u32 + 1;
        }
    }

    /// Intern `term`, returning its id (existing or freshly assigned).
    /// A hit performs no allocation; a miss appends the term's bytes to
    /// the arena (no per-term `String`).
    pub fn intern(&mut self, term: &str) -> TermId {
        // Keep the table under 7/8 load so probe chains stay short.
        if self.table.len() < 16 || self.spans.len() * 8 >= self.table.len() * 7 {
            self.grow_table();
        }
        let slot = self.probe(term.as_bytes());
        if self.table[slot] != 0 {
            return TermId(self.table[slot] - 1);
        }
        let id = self.spans.len() as u32;
        self.spans.push(Span {
            offset: self.arena.len() as u32,
            len: term.len() as u32,
        });
        self.arena.extend_from_slice(term.as_bytes());
        self.table[slot] = id + 1;
        TermId(id)
    }

    /// Look up a term without interning it. Query execution uses this:
    /// a query term absent from the lexicon matches nothing. Never
    /// allocates.
    pub fn get(&self, term: &str) -> Option<TermId> {
        if self.table.is_empty() {
            return None;
        }
        let entry = self.table[self.probe(term.as_bytes())];
        (entry != 0).then(|| TermId(entry - 1))
    }

    /// The string for an id. Panics on a foreign id; ids are only ever
    /// produced by this lexicon.
    pub fn term(&self, id: TermId) -> &str {
        let bytes = self.span_bytes(self.spans[id.0 as usize]);
        // Spans are carved exactly along `&str` boundaries in `intern`.
        std::str::from_utf8(bytes).expect("arena spans hold valid UTF-8")
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterate over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.spans.iter().enumerate().map(|(i, &s)| {
            let bytes = self.span_bytes(s);
            (
                TermId(i as u32),
                std::str::from_utf8(bytes).expect("arena spans hold valid UTF-8"),
            )
        })
    }

    /// Heap footprint of the arena, span table, and hash table.
    pub fn heap_bytes(&self) -> usize {
        self.arena.capacity()
            + self.spans.capacity() * std::mem::size_of::<Span>()
            + self.table.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut lex = Lexicon::new();
        let a = lex.intern("wine");
        let b = lex.intern("wine");
        assert_eq!(a, b);
        assert_eq!(lex.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_sight() {
        let mut lex = Lexicon::new();
        assert_eq!(lex.intern("a"), TermId(0));
        assert_eq!(lex.intern("b"), TermId(1));
        assert_eq!(lex.intern("a"), TermId(0));
        assert_eq!(lex.intern("c"), TermId(2));
    }

    #[test]
    fn get_does_not_intern() {
        let mut lex = Lexicon::new();
        assert_eq!(lex.get("missing"), None);
        lex.intern("present");
        assert_eq!(lex.get("present"), Some(TermId(0)));
        assert_eq!(lex.len(), 1);
    }

    #[test]
    fn term_roundtrip() {
        let mut lex = Lexicon::new();
        let id = lex.intern("margaux");
        assert_eq!(lex.term(id), "margaux");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut lex = Lexicon::new();
        lex.intern("x");
        lex.intern("y");
        let pairs: Vec<_> = lex.iter().map(|(i, t)| (i.0, t.to_string())).collect();
        assert_eq!(pairs, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn survives_table_growth() {
        let mut lex = Lexicon::new();
        let terms: Vec<String> = (0..5000).map(|i| format!("term{i}")).collect();
        let ids: Vec<TermId> = terms.iter().map(|t| lex.intern(t)).collect();
        assert_eq!(lex.len(), terms.len());
        for (t, &id) in terms.iter().zip(&ids) {
            assert_eq!(lex.get(t), Some(id), "term {t}");
            assert_eq!(lex.term(id), t.as_str());
        }
        // Re-interning yields the same ids.
        for (t, &id) in terms.iter().zip(&ids) {
            assert_eq!(lex.intern(t), id);
        }
        assert_eq!(lex.len(), terms.len());
    }

    #[test]
    fn empty_and_unicode_terms() {
        let mut lex = Lexicon::new();
        let a = lex.intern("");
        let b = lex.intern("crème");
        let c = lex.intern("brûlée");
        assert_eq!(lex.term(a), "");
        assert_eq!(lex.term(b), "crème");
        assert_eq!(lex.term(c), "brûlée");
        assert_eq!(lex.get(""), Some(a));
        assert_eq!(lex.get("crème"), Some(b));
        assert_eq!(lex.len(), 3);
    }

    #[test]
    fn clone_is_independent() {
        let mut lex = Lexicon::new();
        lex.intern("shared");
        let mut copy = lex.clone();
        copy.intern("extra");
        assert_eq!(lex.len(), 1);
        assert_eq!(copy.len(), 2);
        assert_eq!(copy.get("shared"), Some(TermId(0)));
        assert_eq!(copy.get("extra"), Some(TermId(1)));
    }
}
