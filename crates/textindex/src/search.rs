//! BM25 top-k query execution.
//!
//! Two rank-equivalent executors share this module:
//!
//! * [`ScoreMode::TopKPruned`] (the default) runs document-at-a-time
//!   over [`PostingsCursor`]s with MaxScore pruning: term cursors are
//!   ordered by their BM25 score upper bound, the cheap ("non
//!   essential") prefix whose bounds cannot reach the current top-k
//!   threshold is only probed via `seek`, `+must` clauses drive a
//!   non-scoring galloping intersection, and `-must-not` clauses are
//!   seek-along exclusion cursors. Documents that provably cannot
//!   enter the top k are never fully scored.
//! * [`ScoreMode::Exhaustive`] is the original term-at-a-time path:
//!   every positive clause walks its posting lists once, accumulating
//!   scores into a hash map, after which `must` intersections,
//!   `must-not` exclusions, tombstones, and the caller's filter are
//!   applied and the top-k extracted.
//!
//! Phrase clauses run under pruning too: each positive phrase becomes
//! a [`PhraseScorer`] whose *membership* is a per-field galloping
//! conjunction of the phrase's token cursors (docs where every token
//! co-occurs in some field), with contiguity verified lazily — and
//! only for candidate documents that survive the cheap rejections —
//! by materializing positions through the cursors' block-addressed
//! position stream. Its score upper bound folds the per-token sealed
//! stats (sum over fields of the minimum per-token max tf), so
//! MaxScore can make a phrase non-essential like any term.
//!
//! The pruned executor is *rank-safe*: it returns bit-identical
//! `(doc, score)` lists to the exhaustive one (a property-based
//! differential test in `tests/prop.rs` asserts this). Two details
//! make that exact rather than approximate. First, per-document scores
//! are accumulated in the same canonical (clause, token, field) order
//! as the exhaustive hash-map accumulator, so f32 addition rounds
//! identically. Second, score upper bounds are inflated by a small
//! slack before any pruning comparison, so bound arithmetic performed
//! in a different float-summation order can never under-bound a real
//! score. The exhaustive path runs only when the caller pins
//! [`ScoreMode::Exhaustive`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::docset::{DocSet, FilterCursor};
use crate::fx::{FxHashMap, FxHashSet};
use crate::index::{FieldId, Index};
use crate::lexicon::TermId;
use crate::postings::{PostingsCursor, NO_DOC};
use crate::query::{ClauseKind, Occur, Query};
use crate::DocId;

/// BM25 free parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (typical 1.2).
    pub k1: f32,
    /// Length normalization strength (typical 0.75).
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Matching document.
    pub doc: DocId,
    /// BM25 score (field-boost weighted, summed over clauses).
    pub score: f32,
}

/// Which top-k executor [`Searcher`] runs.
///
/// Both modes return bit-identical hit lists; `TopKPruned` just skips
/// work that provably cannot change them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreMode {
    /// Document-at-a-time MaxScore execution with block-skip cursors
    /// (the default serving path).
    #[default]
    TopKPruned,
    /// Term-at-a-time scoring of every matching document (the
    /// reference path kept as the differential oracle).
    Exhaustive,
}

/// Relative slack applied to every score upper bound before it is used
/// in a pruning comparison. BM25 is monotone in term frequency and
/// field length in exact arithmetic, and bound sums are accumulated in
/// a different order than canonical scores; the slack (many orders of
/// magnitude above f32 rounding noise) guarantees an inflated bound is
/// strictly above any achievable score, so a pruned document can never
/// have entered the top k — not even as an exact score tie.
const BOUND_SLACK_REL: f32 = 1e-3;
/// Absolute counterpart of [`BOUND_SLACK_REL`], keeping bounds
/// strictly positive even for zero-boost fields.
const BOUND_SLACK_ABS: f32 = 1e-5;

/// Corpus-wide scoring statistics folded across document-partitioned
/// index shards.
///
/// BM25 mixes *per-document* quantities (tf, field length) with
/// *corpus-wide* ones (document frequency, live-doc count, average
/// field length). A shard searching only its slice would compute the
/// corpus-wide terms from local counts and disagree with a single
/// index over the union. Folding the integer numerators across shards
/// — `doc_freq` sums as `usize`, `total_field_len` as `u64`,
/// `live_docs` as `usize` — and only then evaluating the identical f32
/// expressions makes every per-document score **bit-identical** to the
/// single-index build: integer sums are exact, so the float inputs to
/// `idf`/`bm25` are the very same values.
///
/// Document frequencies are keyed by term *string* because term ids
/// are assigned per shard in first-encounter order and do not agree
/// across shards.
#[derive(Debug, Clone, Default)]
pub struct GlobalScoreStats {
    /// Live documents across all shards.
    pub live_docs: usize,
    /// Per-field total analyzed token count (indexed by `FieldId`).
    pub total_field_len: Vec<u64>,
    /// term -> per-field `(summed doc_freq, any-shard has_postings)`.
    terms: FxHashMap<String, Vec<(usize, bool)>>,
}

impl GlobalScoreStats {
    /// Fold statistics across shard indexes. Every shard must register
    /// the same fields in the same order (they are slices of one
    /// logical corpus); field shape mismatches are a construction bug.
    pub fn fold<'a>(shards: impl IntoIterator<Item = &'a Index>) -> GlobalScoreStats {
        let mut out = GlobalScoreStats::default();
        for index in shards {
            let nfields = index.field_ids().count();
            if out.total_field_len.len() < nfields {
                out.total_field_len.resize(nfields, 0);
            }
            out.live_docs += index.live_docs();
            for field in index.field_ids() {
                out.total_field_len[field.0 as usize] += index.total_field_len(field);
            }
            for (tid, term) in index.lexicon().iter() {
                let mut slot: Option<&mut Vec<(usize, bool)>> = None;
                for field in index.field_ids() {
                    let df = index.doc_freq(tid, field);
                    let present = index.has_postings(tid, field);
                    if df == 0 && !present {
                        continue;
                    }
                    let per_field = match slot {
                        Some(ref mut s) => s,
                        None => {
                            slot = Some(
                                out.terms
                                    .entry(term.to_string())
                                    .or_insert_with(|| vec![(0, false); nfields]),
                            );
                            slot.as_mut().expect("just set")
                        }
                    };
                    if per_field.len() < nfields {
                        per_field.resize(nfields, (0, false));
                    }
                    per_field[field.0 as usize].0 += df;
                    per_field[field.0 as usize].1 |= present;
                }
            }
        }
        out
    }

    /// Corpus-wide document frequency of `term` in `field`.
    pub fn doc_freq(&self, term: &str, field: FieldId) -> usize {
        self.terms
            .get(term)
            .and_then(|f| f.get(field.0 as usize))
            .map_or(0, |&(df, _)| df)
    }

    /// Whether any shard holds postings for `term` in `field`.
    pub fn has_postings(&self, term: &str, field: FieldId) -> bool {
        self.terms
            .get(term)
            .and_then(|f| f.get(field.0 as usize))
            .is_some_and(|&(_, present)| present)
    }

    /// Corpus-wide mean analyzed length of `field` — the same
    /// expression as [`Index::avg_field_len`], evaluated on the folded
    /// integers.
    pub fn avg_field_len(&self, field: FieldId) -> f32 {
        let n = self.live_docs;
        if n == 0 {
            return 0.0;
        }
        let total = self
            .total_field_len
            .get(field.0 as usize)
            .copied()
            .unwrap_or(0);
        total as f32 / n as f32
    }
}

/// Query executor over one [`Index`].
pub struct Searcher<'a> {
    index: &'a Index,
    params: Bm25Params,
    mode: ScoreMode,
    /// When set, corpus-wide statistics (df / live docs / average
    /// lengths) come from here instead of the local index, so a shard
    /// scores its slice exactly as the single-index build would.
    global: Option<&'a GlobalScoreStats>,
}

impl<'a> Searcher<'a> {
    /// Searcher with default BM25 parameters.
    pub fn new(index: &'a Index) -> Self {
        Searcher {
            index,
            params: Bm25Params::default(),
            mode: ScoreMode::default(),
            global: None,
        }
    }

    /// Override BM25 parameters.
    pub fn with_params(index: &'a Index, params: Bm25Params) -> Self {
        Searcher {
            index,
            params,
            mode: ScoreMode::default(),
            global: None,
        }
    }

    /// Select the execution mode (builder-style).
    pub fn with_mode(mut self, mode: ScoreMode) -> Self {
        self.mode = mode;
        self
    }

    /// Score with corpus-wide statistics folded across shards
    /// (builder-style). See [`GlobalScoreStats`].
    pub fn with_global_stats(mut self, global: &'a GlobalScoreStats) -> Self {
        self.global = Some(global);
        self
    }

    /// Execute `query`, returning at most `k` hits sorted by descending
    /// score (ties broken by ascending doc id, so results are
    /// deterministic).
    pub fn search(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        self.search_filtered(query, k, |_| true)
    }

    /// Like [`Searcher::search`] but only documents accepted by
    /// `filter` are returned. This is the hook `symphony-web` uses for
    /// site restriction and `symphony-store` for visibility scopes.
    /// The filter must be pure: the pruned executor calls it for fewer
    /// documents (and in a different order) than the exhaustive one.
    pub fn search_filtered(
        &self,
        query: &Query,
        k: usize,
        filter: impl Fn(DocId) -> bool,
    ) -> Vec<SearchHit> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        if self.mode == ScoreMode::Exhaustive {
            self.search_exhaustive(query, k, filter)
        } else {
            self.search_pruned(query, k, filter, None)
        }
    }

    /// Like [`Searcher::search_filtered`], but the restriction is a
    /// materialized [`DocSet`] instead of an opaque closure. The pruned
    /// executor mounts the set as a [`FilterCursor`] — a non-scoring
    /// conjunctive gate in the `+must` galloping intersection — so the
    /// only candidates ever considered are the set's members: term
    /// cursors `seek` straight to them, skipping whole posting blocks
    /// decode-free, instead of decoding every block and asking the
    /// closure per candidate. Rank-safe for the same reason the
    /// `+must` machinery is: the gate is conjunctive and exact, and
    /// surviving candidates are scored in canonical clause order.
    ///
    /// Returns bit-identical `(doc, score)` lists to
    /// `search_filtered(query, k, |d| allowed.contains(d))` (a
    /// property test asserts this).
    pub fn search_docset(&self, query: &Query, k: usize, allowed: &DocSet) -> Vec<SearchHit> {
        if query.is_empty() || k == 0 || allowed.is_empty() {
            return Vec::new();
        }
        if self.mode == ScoreMode::Exhaustive {
            self.search_exhaustive(query, k, |d| allowed.contains(d))
        } else {
            self.search_pruned(query, k, |_| true, Some(allowed))
        }
    }

    /// Like [`Searcher::search_filtered`], additionally returning the
    /// executor's final MaxScore threshold: the k-th best score when
    /// the result list is full, `NEG_INFINITY` otherwise (the pruned
    /// executor's `threshold` variable ends at exactly this value —
    /// it is the min-heap's worst member once `k` docs are held).
    ///
    /// A scatter-gather merge uses it as a *merge bound*: every
    /// document this searcher did **not** return scores at or below
    /// the threshold, so a gather node that has already collected `k`
    /// docs above a shard's bound can prove the shard contributes
    /// nothing further — rank safety of the merged list reduces to
    /// rank safety of each shard's top-k.
    pub fn search_filtered_with_threshold(
        &self,
        query: &Query,
        k: usize,
        filter: impl Fn(DocId) -> bool,
    ) -> (Vec<SearchHit>, f32) {
        let hits = self.search_filtered(query, k, filter);
        let bound = if hits.len() == k && k > 0 {
            hits[k - 1].score
        } else {
            f32::NEG_INFINITY
        };
        (hits, bound)
    }

    /// Term-at-a-time reference executor (see module docs).
    fn search_exhaustive(
        &self,
        query: &Query,
        k: usize,
        filter: impl Fn(DocId) -> bool,
    ) -> Vec<SearchHit> {
        let mut scores: FxHashMap<u32, f32> = FxHashMap::default();
        let mut must_sets: Vec<FxHashSet<u32>> = Vec::new();
        let mut excluded: FxHashSet<u32> = FxHashSet::default();
        let mut any_positive = false;

        for clause in &query.clauses {
            let fields: Vec<FieldId> = match &clause.field {
                Some(name) => match self.index.field_id(name) {
                    Some(f) => vec![f],
                    None => {
                        // Unknown field: a Must clause can never match.
                        if clause.occur == Occur::Must {
                            return Vec::new();
                        }
                        continue;
                    }
                },
                None => self.index.field_ids().collect(),
            };
            match (&clause.kind, clause.occur) {
                (ClauseKind::Term(raw), occur) => {
                    let tokens = self.analyze_query_tokens(raw);
                    if tokens.is_empty() {
                        if occur == Occur::Must {
                            // A must clause that analyzes to nothing
                            // (e.g. a stopword) is vacuously true.
                        }
                        continue;
                    }
                    match occur {
                        Occur::MustNot => {
                            for t in tokens.iter().flatten() {
                                self.collect_docs(*t, &fields, &mut excluded);
                            }
                        }
                        Occur::Should | Occur::Must => {
                            any_positive = true;
                            let mut clause_docs = FxHashSet::default();
                            for (i, t) in tokens.iter().enumerate() {
                                // A remote token (`None`) scores and
                                // matches nothing here; under `+must`
                                // its empty doc set empties the whole
                                // conjunction.
                                let mut term_docs = FxHashSet::default();
                                if let Some(t) = *t {
                                    self.score_term(t, &fields, &mut scores);
                                    if occur == Occur::Must {
                                        self.collect_docs(t, &fields, &mut term_docs);
                                    }
                                }
                                if occur == Occur::Must {
                                    if i == 0 {
                                        clause_docs = term_docs;
                                    } else {
                                        clause_docs.retain(|d| term_docs.contains(d));
                                    }
                                }
                            }
                            if occur == Occur::Must {
                                must_sets.push(clause_docs);
                            }
                        }
                    }
                }
                (ClauseKind::Phrase(words), occur) => {
                    let tokens: Vec<Option<TermId>> = words
                        .iter()
                        .flat_map(|w| self.analyze_query_tokens(w))
                        .collect();
                    if tokens.is_empty() {
                        continue;
                    }
                    // A phrase containing a remote token cannot occur
                    // contiguously in any local document.
                    let local: Option<Vec<TermId>> = tokens.iter().copied().collect();
                    let matches = match &local {
                        Some(toks) => self.phrase_matches(toks, &fields),
                        None => FxHashMap::default(),
                    };
                    match occur {
                        Occur::MustNot => {
                            excluded.extend(matches.keys().copied());
                        }
                        Occur::Should | Occur::Must => {
                            any_positive = true;
                            for (&doc, &(tf, field)) in &matches {
                                let toks = local.as_deref().expect("matches imply local tokens");
                                let s = self.phrase_score(toks, field, DocId(doc), tf);
                                *scores.entry(doc).or_insert(0.0) += s;
                            }
                            if occur == Occur::Must {
                                must_sets.push(matches.keys().copied().collect());
                            }
                        }
                    }
                }
            }
        }

        if !any_positive {
            return Vec::new();
        }

        // Apply must / must-not / tombstones / caller filter, extract
        // top-k with a min-heap of size k.
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        'docs: for (&doc, &score) in &scores {
            if excluded.contains(&doc) {
                continue;
            }
            for m in &must_sets {
                if !m.contains(&doc) {
                    continue 'docs;
                }
            }
            let id = DocId(doc);
            if self.index.is_deleted(id) || !self.index.is_visible(id) || !filter(id) {
                continue;
            }
            heap.push(HeapEntry { score, doc });
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit {
                doc: DocId(e.doc),
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
        hits
    }

    /// Document-at-a-time MaxScore executor (see module docs).
    ///
    /// Rank safety relies on three invariants: candidate docs skipped
    /// by the essential partition or the partial-sum abandon check
    /// have true scores strictly below the threshold (inflated
    /// bounds), surviving candidates are scored by summing per-scorer
    /// contributions in canonical clause order (bit-identical f32
    /// rounding), and every cursor only ever moves forward.
    fn search_pruned(
        &self,
        query: &Query,
        k: usize,
        filter: impl Fn(DocId) -> bool,
        allowed: Option<&DocSet>,
    ) -> Vec<SearchHit> {
        // ---- Plan: cursors, bounds, constraints --------------------
        // `scorers` is in canonical (clause, token, field) order — the
        // exact order the exhaustive accumulator adds contributions
        // (a phrase clause is a single contribution at its clause
        // position).
        let mut scorers: Vec<AnyScorer<'a>> = Vec::new();
        // One non-scoring union-of-fields cursor per `+must` token;
        // result docs must appear in every group.
        let mut must_groups: Vec<UnionCursor<'a>> = Vec::new();
        // Indices into `scorers` of `+must` phrase clauses: result
        // docs must pass their positional verification.
        let mut must_phrases: Vec<usize> = Vec::new();
        // One union cursor per `-must-not` token; result docs must
        // appear in none.
        let mut exclusions: Vec<UnionCursor<'a>> = Vec::new();
        // `-must-not` phrases exclude only positionally verified docs.
        let mut phrase_exclusions: Vec<PhraseScorer<'a>> = Vec::new();
        let mut any_positive = false;

        for clause in &query.clauses {
            let fields: Vec<FieldId> = match &clause.field {
                Some(name) => match self.index.field_id(name) {
                    Some(f) => vec![f],
                    None => {
                        // Unknown field: a Must clause can never match.
                        if clause.occur == Occur::Must {
                            return Vec::new();
                        }
                        continue;
                    }
                },
                None => self.index.field_ids().collect(),
            };
            match &clause.kind {
                ClauseKind::Term(raw) => {
                    let tokens = self.analyze_query_tokens(raw);
                    if tokens.is_empty() {
                        // Must clauses that analyze to nothing are
                        // vacuously true, matching the exhaustive path.
                        continue;
                    }
                    match clause.occur {
                        Occur::MustNot => {
                            for &t in tokens.iter().flatten() {
                                let u = self.union_cursor(t, &fields);
                                if !u.is_empty() {
                                    exclusions.push(u);
                                }
                            }
                        }
                        occur => {
                            any_positive = true;
                            for &t in &tokens {
                                let Some(t) = t else {
                                    // Remote token: matches nothing
                                    // locally; required ones empty the
                                    // conjunction.
                                    if occur == Occur::Must {
                                        return Vec::new();
                                    }
                                    continue;
                                };
                                for &field in &fields {
                                    if let Some(s) = self.scorer(t, field) {
                                        scorers.push(AnyScorer::Term(s));
                                    }
                                }
                                if occur == Occur::Must {
                                    let u = self.union_cursor(t, &fields);
                                    if u.is_empty() {
                                        // Required token with no
                                        // postings: the conjunction is
                                        // empty.
                                        return Vec::new();
                                    }
                                    must_groups.push(u);
                                }
                            }
                        }
                    }
                }
                ClauseKind::Phrase(words) => {
                    let tokens: Vec<Option<TermId>> = words
                        .iter()
                        .flat_map(|w| self.analyze_query_tokens(w))
                        .collect();
                    if tokens.is_empty() {
                        continue;
                    }
                    // A remote token means the phrase cannot occur in
                    // any local document (same rule as the exhaustive
                    // arm above).
                    let local: Option<Vec<TermId>> = tokens.iter().copied().collect();
                    match clause.occur {
                        Occur::MustNot => {
                            if let Some(p) = local.and_then(|t| self.phrase_scorer(t, &fields)) {
                                phrase_exclusions.push(p);
                            }
                        }
                        occur => {
                            any_positive = true;
                            match local.and_then(|t| self.phrase_scorer(t, &fields)) {
                                Some(p) => {
                                    if occur == Occur::Must {
                                        must_phrases.push(scorers.len());
                                    }
                                    scorers.push(AnyScorer::Phrase(p));
                                }
                                None => {
                                    // No field where every token has
                                    // postings: a required phrase can
                                    // never match.
                                    if occur == Occur::Must {
                                        return Vec::new();
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if !any_positive || scorers.is_empty() {
            return Vec::new();
        }
        // The pushed-down doc-id set joins the conjunction as one more
        // non-scoring gate (`None` members when no set was supplied).
        let mut filter_gate = allowed.map(FilterCursor::new);
        // The intersection drives from the rarest `+must` list: with
        // groups in ascending doc-frequency order, the first seek of
        // every galloping round comes from the most selective cursor,
        // so the denser groups only ever seek to its (sparse)
        // candidates.
        must_groups.sort_by_key(|g| g.est);

        // Evaluation order: scorer indices sorted by ascending bound.
        // The prefix `order[..ness]` is the non-essential set; probes
        // run over it from the highest bound downwards so the abandon
        // check sheds the most remaining mass first.
        let mut order: Vec<usize> = (0..scorers.len()).collect();
        order.sort_by(|&a, &b| {
            scorers[a]
                .bound()
                .partial_cmp(&scorers[b].bound())
                .unwrap_or(Ordering::Equal)
                .then(a.cmp(&b))
        });
        // prefix[i] = sum of bounds of order[0..=i].
        let prefix: Vec<f32> = order
            .iter()
            .scan(0.0f32, |acc, &i| {
                *acc += scorers[i].bound();
                Some(*acc)
            })
            .collect();

        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        // Current k-th best score; only meaningful once the heap is
        // full. Grows monotonically, and `ness` with it.
        let mut threshold = f32::NEG_INFINITY;
        let mut ness = 0usize;
        let mut contribs = vec![0.0f32; scorers.len()];
        let must_driven =
            !must_groups.is_empty() || !must_phrases.is_empty() || filter_gate.is_some();
        let mut next_target = 0u32;
        // Candidate just processed; essential cursors still sitting on
        // it advance during the next selection scan (one fused pass
        // instead of advance-then-rescan).
        let mut last = NO_DOC;
        // Deletions are rare; one flag check replaces a per-candidate
        // bitmap probe on the common all-live index.
        let has_deleted = self.index.live_docs() < self.index.total_docs();

        loop {
            // ---- Candidate selection -------------------------------
            let d = if must_driven {
                // Must tokens and must phrases gate membership: a
                // galloping intersection of the union cursors and the
                // phrase membership conjunctions yields the only docs
                // that can appear in the result at all.
                match must_candidate(
                    &mut must_groups,
                    &mut scorers,
                    &must_phrases,
                    filter_gate.as_mut(),
                    next_target,
                ) {
                    Some(d) => d,
                    None => break,
                }
            } else {
                // Union of essential cursors. Docs appearing only in
                // non-essential lists are bounded by prefix[ness - 1]
                // <= threshold, hence strictly below it after slack.
                let mut d = NO_DOC;
                for &i in &order[ness..] {
                    if last != NO_DOC {
                        scorers[i].advance_past(last);
                    }
                    d = d.min(scorers[i].doc());
                }
                last = d;
                if d == NO_DOC {
                    break;
                }
                d
            };
            next_target = d + 1;

            // ---- Block-max range skip ------------------------------
            // With a full heap, an inflated ceiling — block-local
            // bounds of the essential scorers sitting on `d`, plus the
            // whole non-essential mass — that cannot reach the
            // threshold rules out not just `d` but every doc up to the
            // nearest block boundary: each participant's block bound
            // holds through its block's last doc, and the essential
            // scorers ahead of `d` contribute nothing before their
            // current doc. Everything in `(d, until]` is skipped with
            // one decode-free seek per scorer (block-max WAND).
            if !must_driven && heap.len() == k {
                let mut ceil = if ness > 0 { prefix[ness - 1] } else { 0.0 };
                let mut until = NO_DOC;
                for &i in &order[ness..] {
                    let sd = scorers[i].doc();
                    if sd == d {
                        ceil += self.block_bound(&mut scorers[i]);
                        until = until.min(scorers[i].block_last_doc());
                    } else {
                        // `sd > d >= 0`: `d` is the essential minimum.
                        until = until.min(sd - 1);
                    }
                }
                if ceil <= threshold {
                    let past = until.max(d).saturating_add(1);
                    for &i in &order[ness..] {
                        scorers[i].seek(past);
                    }
                    // The seeks moved every cursor beyond `d` already.
                    last = NO_DOC;
                    continue;
                }
            }

            // ---- Cheap rejections ----------------------------------
            // Positional checks (must / must-not phrase verification)
            // run last: they decode positions, everything else is a
            // cursor or bitmap probe.
            let rejected = exclusions.iter_mut().any(|u| u.seek(d) == d)
                || (has_deleted && self.index.is_deleted(DocId(d)))
                || !self.index.is_visible(DocId(d))
                || !filter(DocId(d))
                || phrase_exclusions
                    .iter_mut()
                    .any(|p| p.member_seek(d) == d && p.verify(d).is_some())
                || must_phrases.iter().any(|&i| {
                    let AnyScorer::Phrase(p) = &mut scorers[i] else {
                        unreachable!("must_phrases indexes phrase scorers");
                    };
                    p.verify(d).is_none()
                });

            if !rejected {
                // ---- Score with partial-sum abandon ----------------
                let mut abandoned = false;
                // A doc enters the heap only if some positive clause
                // actually matched it (a phrase candidate can fail
                // verification everywhere and contribute nothing; the
                // exhaustive accumulator has no entry for such docs).
                let mut matched = false;
                let mut running = 0.0f32;
                contribs.iter_mut().for_each(|c| *c = 0.0);
                if !must_driven {
                    for &i in &order[ness..] {
                        let v = self.score_at(&mut scorers[i], d, &mut matched);
                        contribs[i] = v;
                        running += v;
                    }
                }
                let probe_from = if must_driven { order.len() } else { ness };
                for j in (0..probe_from).rev() {
                    if heap.len() == k && running + prefix[j] <= threshold {
                        // Even granting every unprobed scorer its full
                        // bound, `d` stays (strictly) under the
                        // threshold.
                        abandoned = true;
                        break;
                    }
                    let i = order[j];
                    scorers[i].seek(d);
                    let v = self.score_at(&mut scorers[i], d, &mut matched);
                    contribs[i] = v;
                    running += v;
                }
                if !abandoned && matched {
                    // Canonical-order sum: bit-identical to the
                    // exhaustive accumulator (adding 0.0 for scorers
                    // that missed `d` is exact for non-negative f32).
                    let score = contribs.iter().fold(0.0f32, |a, &b| a + b);
                    heap.push(HeapEntry { score, doc: d });
                    if heap.len() > k {
                        heap.pop();
                    }
                    if heap.len() == k {
                        let worst = heap.peek().expect("heap is full").score;
                        if worst > threshold {
                            threshold = worst;
                            while ness < order.len() && prefix[ness] <= threshold {
                                ness += 1;
                            }
                        }
                    }
                }
            }
            // The essential cursors still sitting on `d` advance at the
            // top of the next selection scan (fused with the min scan).
        }

        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit {
                doc: DocId(e.doc),
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
        hits
    }

    /// Inflated upper bound on `sc`'s contribution to any doc in the
    /// block its cursor currently sits on. Tighter than the static
    /// `bound()` whenever the block directory says this block's max tf
    /// is below the list-wide maximum; identical (and equally safe)
    /// otherwise. Phrases and stats-less terms fall back to their
    /// static bound. Rank safety: the block bound uses the same
    /// (max tf, min len) maximization and the same slack inflation as
    /// the static bound, just with the block-local max tf — every true
    /// contribution in the block is strictly below it.
    #[inline]
    fn block_bound(&self, sc: &mut AnyScorer<'_>) -> f32 {
        let AnyScorer::Term(t) = sc else {
            return sc.bound();
        };
        if !t.bound.is_finite() {
            return t.bound;
        }
        let bmt = t.cursor.block_max_tf();
        if bmt == u32::MAX {
            return t.bound;
        }
        if bmt != t.block_memo_tf {
            let raw = t.boost * self.bm25(bmt as f32, t.min_len, t.avg_len, t.idf);
            t.block_memo_tf = bmt;
            t.block_memo_bound = (raw * (1.0 + BOUND_SLACK_REL) + BOUND_SLACK_ABS).min(t.bound);
        }
        t.block_memo_bound
    }

    /// One scorer's BM25 contribution for document `d` — the same
    /// expression, in the same operation order, as the exhaustive
    /// path's `score_term`, so both produce identical f32 values.
    #[inline]
    fn clause_score(&self, sc: &Scorer<'_>, d: u32, tf: u32) -> f32 {
        let len = sc.lens[d as usize] as f32;
        sc.boost * self.bm25(tf as f32, len, sc.avg_len, sc.idf)
    }

    /// One scorer's contribution for candidate `d` (0.0 when the
    /// scorer misses `d`). Sets `matched` when the scorer's clause
    /// genuinely matches — for a phrase that means positional
    /// verification succeeded, not mere token co-occurrence.
    fn score_at(&self, sc: &mut AnyScorer<'_>, d: u32, matched: &mut bool) -> f32 {
        match sc {
            AnyScorer::Term(t) => {
                if t.cursor.doc() == d {
                    *matched = true;
                    let tf = t.cursor.tf();
                    self.clause_score(t, d, tf)
                } else {
                    0.0
                }
            }
            AnyScorer::Phrase(p) => {
                if p.member == d {
                    if let Some((count, field)) = p.verify(d) {
                        *matched = true;
                        return self.phrase_score(&p.tokens, field, DocId(d), count);
                    }
                }
                0.0
            }
        }
    }

    /// Build a phrase scorer: per-field conjunction cursors over every
    /// field where *all* tokens have postings (the same qualifying
    /// rule as the exhaustive `phrase_matches`), or `None` when no
    /// field qualifies.
    ///
    /// The score upper bound mirrors the exhaustive scoring shape: a
    /// verified phrase scores once, in the first qualifying field with
    /// a match, with the occurrence count summed across all fields.
    /// Per field the count is capped by the minimum per-token max tf
    /// (every contiguous run consumes one distinct position of each
    /// token), so the total is capped by the sum of those per-field
    /// minima; the per-field bound then takes that total count at the
    /// field's smallest possible length. Any token without sealed
    /// stats (memtable postings) makes the bound infinite — the
    /// phrase is then permanently essential, evaluated at every
    /// candidate, never pruned against, hence still exact.
    fn phrase_scorer(&self, tokens: Vec<TermId>, fields: &[FieldId]) -> Option<PhraseScorer<'a>> {
        let mut pfields: Vec<PhraseField<'a>> = Vec::new();
        for &field in fields {
            if tokens.iter().any(|&t| !self.index.has_postings(t, field)) {
                continue;
            }
            let cursors: Vec<PostingsCursor<'a>> = tokens
                .iter()
                .map(|&t| {
                    self.index
                        .cursor(t, field)
                        .expect("has_postings implies a cursor")
                })
                .collect();
            let mut pf = PhraseField {
                field,
                cursors,
                at: 0,
            };
            pf.align(0);
            pfields.push(pf);
        }
        if pfields.is_empty() {
            return None;
        }
        // Bound: sum over qualifying fields of min-per-token max tf
        // caps the total verified count ...
        let mut all_stats = true;
        let mut cmax_total = 0u32;
        for pf in &pfields {
            let mut field_cap = u32::MAX;
            for &t in &tokens {
                match self.index.term_score_stats(t, pf.field) {
                    Some(st) => field_cap = field_cap.min(st.max_tf),
                    None => {
                        all_stats = false;
                        break;
                    }
                }
            }
            if !all_stats {
                break;
            }
            cmax_total += field_cap;
        }
        // ... and the scoring field's length is at least the largest
        // per-token min_len (a matching doc is on every token's list).
        let mut bound = f32::NEG_INFINITY;
        if all_stats {
            for pf in &pfields {
                let mut min_len = 1u32;
                for &t in &tokens {
                    let st = self
                        .index
                        .term_score_stats(t, pf.field)
                        .expect("checked above");
                    min_len = min_len.max(st.min_len);
                }
                let idf: f32 = tokens.iter().map(|&t| self.idf(t, pf.field)).sum();
                let avg = self.stat_avg_field_len(pf.field);
                let raw = self.index.field_boost(pf.field)
                    * self.bm25(cmax_total as f32, min_len as f32, avg, idf);
                bound = bound.max(raw);
            }
        }
        let bound = if all_stats && bound.is_finite() && bound >= 0.0 {
            bound * (1.0 + BOUND_SLACK_REL) + BOUND_SLACK_ABS
        } else {
            f32::INFINITY
        };
        let member = pfields.iter().map(|f| f.at).min().expect("non-empty");
        let pos_bufs = vec![Vec::new(); tokens.len()];
        Some(PhraseScorer {
            tokens,
            fields: pfields,
            member,
            verified_doc: NO_DOC,
            verified: None,
            pos_bufs,
            bound,
        })
    }

    /// Build one scoring cursor for `(term, field)`, or `None` when no
    /// document contains it. The cursor unions every segment's posting
    /// list; the pruning bound folds the per-segment stats sealed
    /// segments carry ([`Index::term_score_stats`]). Terms with
    /// postings in the memtable have no stats and get an infinite
    /// bound, which keeps them permanently essential — always
    /// evaluated, never pruned against, hence still exact.
    fn scorer(&self, term: TermId, field: FieldId) -> Option<Scorer<'a>> {
        let cursor = self.index.cursor(term, field)?;
        let idf = self.idf(term, field);
        let avg_len = self.stat_avg_field_len(field);
        let boost = self.index.field_boost(field);
        let mut min_len = 0.0f32;
        let bound = match self.index.term_score_stats(term, field) {
            Some(st) => {
                let raw = boost * self.bm25(st.max_tf as f32, st.min_len as f32, avg_len, idf);
                if raw.is_finite() && raw >= 0.0 {
                    min_len = st.min_len as f32;
                    raw * (1.0 + BOUND_SLACK_REL) + BOUND_SLACK_ABS
                } else {
                    f32::INFINITY
                }
            }
            None => f32::INFINITY,
        };
        Some(Scorer {
            cursor,
            lens: self.index.field_lens(field),
            idf,
            avg_len,
            boost,
            bound,
            min_len,
            block_memo_tf: u32::MAX,
            block_memo_bound: bound,
        })
    }

    /// A membership (non-scoring) cursor for `term` across `fields`,
    /// carrying a document-frequency estimate so `+must` conjunctions
    /// can drive from the rarest list.
    fn union_cursor(&self, term: TermId, fields: &[FieldId]) -> UnionCursor<'a> {
        UnionCursor {
            members: fields
                .iter()
                .filter_map(|&f| self.index.cursor(term, f))
                .collect(),
            est: fields.iter().map(|&f| self.index.doc_freq(term, f)).sum(),
        }
    }

    /// Analyze raw query text with the index's analyzer, mapping each
    /// token to an existing term id. Tokens the index has never seen
    /// are dropped, and so are terms whose postings were entirely
    /// purged by merges (the lexicon never forgets a term, but a term
    /// surviving only in tombstoned-and-compacted documents must query
    /// exactly like one that was never indexed — otherwise a compacted
    /// index and a from-scratch rebuild would disagree on `+must`
    /// vacuousness).
    /// Analyze raw query text against the *effective* corpus. Each
    /// surviving token is `Some(local id)` when this index can resolve
    /// it, or `None` for a token that is alive elsewhere in the union
    /// (global stats attached) but absent from this shard's lexicon —
    /// such a token matches no local document, yet must keep shaping
    /// the clause (`+must` vacuousness, phrase contiguity) exactly as
    /// the single-index build would, otherwise a shard would return
    /// docs the union search rejects.
    ///
    /// Without global stats the presence test is local (`has_postings`
    /// in any field) and every returned token is `Some`.
    fn analyze_query_tokens(&self, raw: &str) -> Vec<Option<TermId>> {
        match self.global {
            None => self
                .index
                .analyzer()
                .analyze(raw)
                .into_iter()
                .filter_map(|t| self.index.lexicon().get(&t.term))
                .filter(|&t| {
                    self.index
                        .field_ids()
                        .any(|f| self.index.has_postings(t, f))
                })
                .map(Some)
                .collect(),
            Some(g) => self
                .index
                .analyzer()
                .analyze(raw)
                .into_iter()
                .filter_map(|t| {
                    if self.index.field_ids().any(|f| g.has_postings(&t.term, f)) {
                        Some(self.index.lexicon().get(&t.term))
                    } else {
                        // Dead in the whole union: dropped, exactly
                        // like a never-indexed term on a single index.
                        None
                    }
                })
                .collect(),
        }
    }

    /// Corpus-wide document frequency: folded when global stats are
    /// attached, local otherwise.
    fn stat_doc_freq(&self, term: TermId, field: FieldId) -> usize {
        match self.global {
            Some(g) => g.doc_freq(self.index.lexicon().term(term), field),
            None => self.index.doc_freq(term, field),
        }
    }

    /// Corpus-wide live-document count.
    fn stat_live_docs(&self) -> usize {
        match self.global {
            Some(g) => g.live_docs,
            None => self.index.live_docs(),
        }
    }

    /// Corpus-wide mean analyzed field length.
    fn stat_avg_field_len(&self, field: FieldId) -> f32 {
        match self.global {
            Some(g) => g.avg_field_len(field),
            None => self.index.avg_field_len(field),
        }
    }

    /// BM25 idf over the *live* corpus. `df` still counts tombstoned
    /// documents until a merge purges them, which can push idf negative
    /// when deletes outnumber live docs; negative idf makes the raw
    /// score bound negative, which [`Searcher::scorer`] routes to an
    /// infinite (always-essential) bound, so pruning stays rank-safe.
    /// Using the live count is what makes a fully-compacted index score
    /// bit-identically to a from-scratch rebuild of the live corpus.
    fn idf(&self, term: TermId, field: FieldId) -> f32 {
        let df = self.stat_doc_freq(term, field);
        if df == 0 {
            return 0.0;
        }
        let n = self.stat_live_docs() as f32;
        (1.0 + (n - df as f32 + 0.5) / (df as f32 + 0.5)).ln()
    }

    fn bm25(&self, tf: f32, len: f32, avg_len: f32, idf: f32) -> f32 {
        let Bm25Params { k1, b } = self.params;
        let norm = if avg_len > 0.0 {
            1.0 - b + b * len / avg_len
        } else {
            1.0
        };
        idf * tf * (k1 + 1.0) / (tf + k1 * norm)
    }

    fn score_term(&self, term: TermId, fields: &[FieldId], scores: &mut FxHashMap<u32, f32>) {
        for &field in fields {
            if !self.index.has_postings(term, field) {
                continue;
            }
            let idf = self.idf(term, field);
            let avg = self.stat_avg_field_len(field);
            let boost = self.index.field_boost(field);
            self.index.for_each_posting(term, field, |doc, positions| {
                let len = self.index.field_len(doc, field) as f32;
                let s = boost * self.bm25(positions.len() as f32, len, avg, idf);
                *scores.entry(doc.0).or_insert(0.0) += s;
            });
        }
    }

    fn collect_docs(&self, term: TermId, fields: &[FieldId], out: &mut FxHashSet<u32>) {
        for &field in fields {
            self.index.for_each_posting(term, field, |doc, _| {
                out.insert(doc.0);
            });
        }
    }

    /// Find documents containing the token sequence contiguously in any
    /// of `fields`. Returns doc -> (occurrence count, matching field).
    fn phrase_matches(
        &self,
        tokens: &[TermId],
        fields: &[FieldId],
    ) -> FxHashMap<u32, (u32, FieldId)> {
        let mut result: FxHashMap<u32, (u32, FieldId)> = FxHashMap::default();
        for &field in fields {
            // Load positions for each token in this field.
            let mut per_token: Vec<FxHashMap<u32, Vec<u32>>> = Vec::with_capacity(tokens.len());
            let mut missing = false;
            for &t in tokens {
                if !self.index.has_postings(t, field) {
                    missing = true;
                    break;
                }
                let mut map: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
                self.index.for_each_posting(t, field, |doc, positions| {
                    map.insert(doc.0, positions.to_vec());
                });
                per_token.push(map);
            }
            if missing {
                continue;
            }
            // Candidate docs = docs of the rarest token.
            let (seed_idx, seed) = per_token
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.len())
                .expect("phrase has at least one token");
            'cand: for (&doc, seed_positions) in seed {
                for (i, map) in per_token.iter().enumerate() {
                    if i != seed_idx && !map.contains_key(&doc) {
                        continue 'cand;
                    }
                }
                // Count contiguous runs starting from token 0 positions.
                let first = &per_token[0][&doc];
                let mut count = 0u32;
                'start: for &p in first {
                    for (offset, map) in per_token.iter().enumerate().skip(1) {
                        let want = p + offset as u32;
                        if map[&doc].binary_search(&want).is_err() {
                            continue 'start;
                        }
                    }
                    count += 1;
                }
                let _ = seed_positions;
                if count > 0 {
                    let entry = result.entry(doc).or_insert((0, field));
                    entry.0 += count;
                }
            }
        }
        result
    }

    fn phrase_score(&self, tokens: &[TermId], field: FieldId, doc: DocId, tf: u32) -> f32 {
        let idf: f32 = tokens.iter().map(|&t| self.idf(t, field)).sum();
        let len = self.index.field_len(doc, field) as f32;
        let avg = self.stat_avg_field_len(field);
        self.index.field_boost(field) * self.bm25(tf as f32, len, avg, idf)
    }
}

/// One scoring cursor of the pruned executor: a posting cursor plus
/// everything needed to turn a `(doc, tf)` pair into a BM25
/// contribution, and the (inflated) upper bound on that contribution.
struct Scorer<'a> {
    cursor: PostingsCursor<'a>,
    /// Per-doc analyzed lengths of the scorer's field (resolved once;
    /// the scoring loop reads one slot per candidate).
    lens: &'a [u32],
    idf: f32,
    avg_len: f32,
    boost: f32,
    /// Inflated upper bound on any single contribution; `INFINITY`
    /// when no [`crate::index::TermScoreStats`] are available.
    bound: f32,
    /// Smallest field length on this scorer's posting list (from the
    /// same stats as `bound`; 0 when stats are missing, unused then).
    min_len: f32,
    /// Memoized block-max refinement: the block max tf the cached
    /// bound below was computed for (`u32::MAX` = nothing cached).
    block_memo_tf: u32,
    /// Inflated bound at `block_memo_tf` occurrences.
    block_memo_bound: f32,
}

/// The phrase's token cursors in one qualifying field, intersected by
/// a galloping conjunction (`at` is the current co-occurrence
/// candidate).
struct PhraseField<'a> {
    field: FieldId,
    /// One cursor per phrase token, all over `field`.
    cursors: Vec<PostingsCursor<'a>>,
    /// Current conjunction doc (all cursors aligned on it), or
    /// [`NO_DOC`] when the conjunction is exhausted.
    at: u32,
}

impl PhraseField<'_> {
    /// Unconditionally gallop to the smallest co-occurrence doc
    /// `>= target`.
    fn align(&mut self, target: u32) -> u32 {
        let mut d = target;
        loop {
            let mut changed = false;
            for c in self.cursors.iter_mut() {
                c.seek(d);
                let got = c.doc();
                if got == NO_DOC {
                    self.at = NO_DOC;
                    return NO_DOC;
                }
                if got > d {
                    d = got;
                    changed = true;
                }
            }
            if !changed {
                self.at = d;
                return d;
            }
        }
    }

    /// Smallest co-occurrence doc `>= target` (no-op when already
    /// there). Targets must be non-decreasing across calls.
    fn seek(&mut self, target: u32) -> u32 {
        if self.at >= target {
            // Covers exhaustion too: NO_DOC >= any target.
            return self.at;
        }
        self.align(target)
    }
}

/// A positive phrase clause under MaxScore: membership (all tokens
/// co-occur in some field) is a cheap cursor conjunction; contiguity
/// is verified positionally, lazily, at candidate docs only, with the
/// result cached per doc. Scoring reproduces the exhaustive shape
/// exactly: occurrence count summed across qualifying fields, scored
/// once in the first field (in field order) containing a match.
struct PhraseScorer<'a> {
    /// Analyzed phrase tokens; index in this Vec = position offset.
    tokens: Vec<TermId>,
    /// Per-field conjunctions, in field order.
    fields: Vec<PhraseField<'a>>,
    /// Smallest per-field conjunction doc: the current (unverified)
    /// membership candidate.
    member: u32,
    /// Doc the cached verification below refers to ([`NO_DOC`] =
    /// none).
    verified_doc: u32,
    /// Cached verification: `Some((total count, first matching
    /// field))`, or `None` when no field matched positionally.
    verified: Option<(u32, FieldId)>,
    /// Reusable per-token position buffers.
    pos_bufs: Vec<Vec<u32>>,
    /// Inflated upper bound on the phrase contribution.
    bound: f32,
}

impl PhraseScorer<'_> {
    /// Smallest membership doc `>= target`. Targets must be
    /// non-decreasing across calls.
    fn member_seek(&mut self, target: u32) -> u32 {
        if self.member >= target {
            return self.member;
        }
        let mut min = NO_DOC;
        for f in &mut self.fields {
            min = min.min(f.seek(target));
        }
        self.member = min;
        min
    }

    /// Positionally verify the phrase at doc `d`, returning the total
    /// occurrence count and the first matching field (identical to
    /// the exhaustive `phrase_matches` bookkeeping), or `None` when no
    /// field contains the contiguous sequence. Cached per doc, so the
    /// rejection pass and the scoring pass decode positions once.
    fn verify(&mut self, d: u32) -> Option<(u32, FieldId)> {
        if self.verified_doc == d {
            return self.verified;
        }
        self.verified_doc = d;
        let mut total = 0u32;
        let mut first: Option<FieldId> = None;
        for f in &mut self.fields {
            if f.seek(d) != d {
                continue;
            }
            for (c, buf) in f.cursors.iter_mut().zip(self.pos_bufs.iter_mut()) {
                c.positions(buf);
            }
            let mut count = 0u32;
            'start: for &p in &self.pos_bufs[0] {
                for (offset, buf) in self.pos_bufs.iter().enumerate().skip(1) {
                    if buf.binary_search(&(p + offset as u32)).is_err() {
                        continue 'start;
                    }
                }
                count += 1;
            }
            if count > 0 {
                total += count;
                if first.is_none() {
                    first = Some(f.field);
                }
            }
        }
        self.verified = (total > 0).then(|| (total, first.expect("count > 0 implies a field")));
        self.verified
    }
}

/// Either scorer shape of the pruned executor, unified so the MaxScore
/// order/prefix machinery and the DAAT loop treat them uniformly.
// Term scorers embed a posting cursor whose unpacked block buffer
// lives inline (see `PostingsCursor`); keeping it unboxed preserves
// that locality in the scoring loop.
#[allow(clippy::large_enum_variant)]
enum AnyScorer<'a> {
    Term(Scorer<'a>),
    Phrase(PhraseScorer<'a>),
}

impl AnyScorer<'_> {
    /// Inflated score upper bound.
    fn bound(&self) -> f32 {
        match self {
            AnyScorer::Term(t) => t.bound,
            AnyScorer::Phrase(p) => p.bound,
        }
    }

    /// Current candidate doc (for a phrase: the unverified membership
    /// candidate), or [`NO_DOC`].
    fn doc(&self) -> u32 {
        match self {
            AnyScorer::Term(t) => t.cursor.doc(),
            AnyScorer::Phrase(p) => p.member,
        }
    }

    /// Advance to the first candidate `>= target`.
    fn seek(&mut self, target: u32) {
        match self {
            AnyScorer::Term(t) => t.cursor.seek(target),
            AnyScorer::Phrase(p) => {
                p.member_seek(target);
            }
        }
    }

    /// Last doc id through which [`Searcher::block_bound`] stays valid
    /// for this scorer: the current block boundary for term cursors
    /// over packed lists, the current doc otherwise (no extension).
    fn block_last_doc(&self) -> u32 {
        match self {
            AnyScorer::Term(t) => t.cursor.block_last_doc(),
            AnyScorer::Phrase(p) => p.member,
        }
    }

    /// Move past `d` if currently on it (the essential-union advance
    /// step).
    fn advance_past(&mut self, d: u32) {
        match self {
            AnyScorer::Term(t) => {
                if t.cursor.doc() == d {
                    t.cursor.next();
                }
            }
            AnyScorer::Phrase(p) => {
                if p.member == d {
                    p.member_seek(d + 1);
                }
            }
        }
    }
}

/// Union-of-fields membership cursor: reports whether *any* field's
/// posting list contains a document. Used non-scoring, for `+must`
/// conjunctions and `-must-not` exclusions.
struct UnionCursor<'a> {
    members: Vec<PostingsCursor<'a>>,
    /// Summed document frequency across member fields — the sort key
    /// that puts the rarest `+must` group first in the conjunction.
    est: usize,
}

impl UnionCursor<'_> {
    fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Smallest member doc `>= target` (advancing lagging members),
    /// or [`NO_DOC`] when every member is exhausted. Targets must be
    /// non-decreasing across calls.
    fn seek(&mut self, target: u32) -> u32 {
        let mut min = NO_DOC;
        for c in &mut self.members {
            if c.doc() < target {
                c.seek(target);
            }
            min = min.min(c.doc());
        }
        min
    }
}

/// Multi-way galloping intersection step over every `+must` gate: the
/// smallest doc `>= target` present in every term group *and* every
/// must-phrase membership conjunction, or `None` once any gate is
/// exhausted.
///
/// `groups` is sorted rarest-first, so each round's first seek comes
/// from the most selective list and denser gates only gallop to its
/// sparse candidates. A round that advances the frontier restarts;
/// gates already at the frontier return immediately, so the rescan is
/// O(1) per unchanged gate.
fn must_candidate(
    groups: &mut [UnionCursor<'_>],
    scorers: &mut [AnyScorer<'_>],
    phrase_idxs: &[usize],
    mut filter_gate: Option<&mut FilterCursor<'_>>,
    target: u32,
) -> Option<u32> {
    debug_assert!(!groups.is_empty() || !phrase_idxs.is_empty() || filter_gate.is_some());
    let mut d = target;
    loop {
        let mut changed = false;
        // The pushed-down filter seeks first: when it is the most
        // selective gate (the planner only pushes selective sets), the
        // posting cursors below only ever gallop to its members.
        if let Some(f) = filter_gate.as_deref_mut() {
            let got = f.seek(d);
            if got == NO_DOC {
                return None;
            }
            if got > d {
                d = got;
                changed = true;
            }
        }
        for g in groups.iter_mut() {
            let got = g.seek(d);
            if got == NO_DOC {
                return None;
            }
            if got > d {
                d = got;
                changed = true;
            }
        }
        for &i in phrase_idxs {
            let AnyScorer::Phrase(p) = &mut scorers[i] else {
                unreachable!("must_phrases indexes phrase scorers");
            };
            let got = p.member_seek(d);
            if got == NO_DOC {
                return None;
            }
            if got > d {
                d = got;
                changed = true;
            }
        }
        if !changed {
            return Some(d);
        }
    }
}

/// Min-heap entry: the heap keeps the k highest scores by evicting the
/// smallest, so `Ord` is inverted on score.
struct HeapEntry {
    score: f32,
    doc: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse score order (BinaryHeap is a max-heap; we want to pop
        // the worst). Ties: larger doc id pops first so smaller ids are
        // kept, matching the final deterministic sort.
        other
            .score
            .total_cmp(&self.score)
            .then(self.doc.cmp(&other.doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Doc, IndexConfig};

    fn index() -> Index {
        let mut idx = Index::new(IndexConfig::default());
        let title = idx.register_field("title", 2.0);
        let body = idx.register_field("body", 1.0);
        let docs = [
            (
                "Galactic Raiders",
                "a fast space shooter with lasers and space battles",
            ),
            ("Farm Story", "calm farming with crops and animals"),
            ("Space Trader", "trade goods across space stations"),
            ("Puzzle Palace", "mind bending puzzle rooms"),
            ("Laser Golf", "golf with lasers a silly shooter"),
        ];
        for (t, b) in docs {
            idx.add(Doc::new().field(title, t).field(body, b));
        }
        idx
    }

    fn docs_of(hits: &[SearchHit]) -> Vec<u32> {
        hits.iter().map(|h| h.doc.0).collect()
    }

    #[test]
    fn single_term() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("farming"), 10);
        assert_eq!(docs_of(&hits), vec![1]);
    }

    #[test]
    fn multi_term_ranks_doc_with_both_terms_above_single_match() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("space shooter"), 10);
        let pos = |d: u32| hits.iter().position(|h| h.doc == DocId(d)).unwrap();
        // Doc 0 matches both terms; doc 4 only "shooter". Doc 2's
        // boosted title may legitimately compete with doc 0, but a
        // single-term match must not outrank the double match.
        assert!(pos(0) < pos(4));
        assert!(hits.len() >= 3);
    }

    #[test]
    fn title_boost_matters() {
        let idx = index();
        // "space" appears twice in doc 0's body but once in doc 2's
        // boosted title; the title match must not be buried.
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn must_requires_presence() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("+golf shooter"), 10);
        assert_eq!(docs_of(&hits), vec![4]);
    }

    #[test]
    fn mustnot_excludes() {
        // Both shooter docs (0 and 4) mention lasers, so excluding
        // "laser" (stemmed) leaves nothing.
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("shooter -laser"), 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn mustnot_excludes_all_docs_containing_term() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("shooter -space"), 10);
        assert_eq!(docs_of(&hits), vec![4]);
    }

    #[test]
    fn phrase_matches_contiguous_only() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("\"space shooter\""), 10);
        assert_eq!(docs_of(&hits), vec![0]);
        // Both words occur in doc 2? "space" yes, "shooter" no.
        let none = Searcher::new(&idx).search(&Query::parse("\"shooter space\""), 10);
        assert!(none.is_empty());
    }

    #[test]
    fn phrase_runs_pruned_and_matches_exhaustive() {
        // Phrases execute under MaxScore now (no exhaustive
        // fallback); results must stay bit-identical across modes on
        // raw, optimized, and mixed indexes.
        let mut idx = index();
        let phrase_queries = [
            "\"space shooter\"",
            "\"space shooter\" laser",
            "+\"space shooter\"",
            "+\"space shooter\" -golf",
            "laser -\"space shooter\"",
            "\"space battles\" \"puzzle rooms\"",
        ];
        for round in 0..3 {
            if round == 1 {
                idx.optimize();
            }
            if round == 2 {
                // Mixed: sealed segments plus a memtable doc that also
                // matches the phrase (infinite-bound scorer).
                idx.add(
                    Doc::new()
                        .field(FieldId(0), "Space Shooter Deluxe")
                        .field(FieldId(1), "another space shooter with space battles"),
                );
            }
            for q in phrase_queries {
                let query = Query::parse(q);
                for k in [1, 2, 10] {
                    let pruned = Searcher::new(&idx).search(&query, k);
                    let exhaustive = Searcher::new(&idx)
                        .with_mode(ScoreMode::Exhaustive)
                        .search(&query, k);
                    assert_eq!(pruned, exhaustive, "query {q:?} k={k} round={round}");
                }
            }
        }
    }

    #[test]
    fn phrase_counts_accumulate_across_fields() {
        // A phrase matching in both fields scores once (first field in
        // field order) with the count summed across fields — in both
        // executors.
        let mut idx = Index::new(IndexConfig::default());
        let a = idx.register_field("a", 1.0);
        let b = idx.register_field("b", 1.0);
        idx.add(
            Doc::new()
                .field(a, "deep space probe")
                .field(b, "the space probe saw a space probe"),
        );
        idx.add(Doc::new().field(a, "space station").field(b, "probe data"));
        idx.optimize();
        let q = Query::parse("\"space probe\"");
        let pruned = Searcher::new(&idx).search(&q, 10);
        let exhaustive = Searcher::new(&idx)
            .with_mode(ScoreMode::Exhaustive)
            .search(&q, 10);
        assert_eq!(pruned, exhaustive);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].doc, DocId(0));
    }

    #[test]
    fn phrase_pruning_activates_on_larger_corpus() {
        // Big enough that the threshold rises and non-essential
        // phrase/term scorers actually get skipped, at small k.
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        for i in 0..500u32 {
            let phrase = if i % 13 == 0 {
                " red planet"
            } else {
                " planet red"
            };
            let text = format!("common filler number {}{phrase} tail words", i % 11);
            idx.add(Doc::new().field(body, text));
        }
        idx.optimize();
        for q in [
            "\"red planet\" common",
            "+\"red planet\" common",
            "common -\"red planet\"",
            "\"red planet\" \"filler number\"",
        ] {
            let query = Query::parse(q);
            for k in [1, 5, 20] {
                let pruned = Searcher::new(&idx).search(&query, k);
                let exhaustive = Searcher::new(&idx)
                    .with_mode(ScoreMode::Exhaustive)
                    .search(&query, k);
                assert_eq!(pruned, exhaustive, "query {q:?} k={k}");
            }
        }
    }

    #[test]
    fn field_restricted_term() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("title:space"), 10);
        assert_eq!(docs_of(&hits), vec![2]);
    }

    #[test]
    fn unknown_field_must_matches_nothing() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("+nosuch:space"), 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn unknown_term_matches_nothing() {
        let idx = index();
        assert!(Searcher::new(&idx)
            .search(&Query::parse("zzzzqqq"), 10)
            .is_empty());
    }

    #[test]
    fn only_mustnot_returns_nothing() {
        let idx = index();
        assert!(Searcher::new(&idx)
            .search(&Query::parse("-space"), 10)
            .is_empty());
    }

    #[test]
    fn k_limits_results_and_keeps_best() {
        let idx = index();
        let all = Searcher::new(&idx).search(&Query::parse("space shooter laser"), 10);
        let top1 = Searcher::new(&idx).search(&Query::parse("space shooter laser"), 1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].doc, all[0].doc);
    }

    #[test]
    fn k_zero_is_empty() {
        let idx = index();
        assert!(Searcher::new(&idx)
            .search(&Query::parse("space"), 0)
            .is_empty());
    }

    #[test]
    fn filter_is_applied() {
        let idx = index();
        let hits = Searcher::new(&idx).search_filtered(&Query::parse("space"), 10, |d| d.0 != 0);
        assert_eq!(docs_of(&hits), vec![2]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut idx = Index::new(IndexConfig::default());
        let f = idx.register_field("t", 1.0);
        for _ in 0..5 {
            idx.add(Doc::new().field(f, "identical text here"));
        }
        let hits = Searcher::new(&idx).search(&Query::parse("identical"), 3);
        assert_eq!(docs_of(&hits), vec![0, 1, 2]);
    }

    #[test]
    fn stemming_unifies_query_and_doc_forms() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("battle"), 10);
        assert_eq!(docs_of(&hits), vec![0]); // doc says "battles"
    }

    /// Every interesting query shape on the shared fixture, for the
    /// pruned-vs-exhaustive differential checks below.
    const QUERIES: &[&str] = &[
        "space",
        "space shooter",
        "space shooter laser golf farming",
        "+golf shooter",
        "+space +shooter",
        "shooter -laser",
        "shooter -space",
        "title:space",
        "title:space body:laser",
        "+title:space laser",
        "space space shooter",      // repeated term accumulates twice
        "\"space shooter\" laser",  // phrase scorer beside a term
        "\"space shooter\"",        // bare phrase
        "\"space battles\"",        // phrase matching one doc's body
        "\"shooter space\"",        // tokens co-occur, order never matches
        "+\"space shooter\" laser", // must-phrase gates membership
        "+\"space shooter\" +laser",
        "laser -\"space shooter\"", // must-not phrase excludes verified docs
        "\"space\" shooter",        // single-token phrase (counts every hit)
        "title:\"space trader\"",   // field-restricted phrase
        "\"space zzzzqqq shooter\"", // unknown token drops out of the phrase
        "+nosuch:space",
        "zzzzqqq",
        "-space",
    ];

    fn assert_modes_agree(idx: &Index, k: usize) {
        for q in QUERIES {
            let query = Query::parse(q);
            let pruned = Searcher::new(idx).search(&query, k);
            let exhaustive = Searcher::new(idx)
                .with_mode(ScoreMode::Exhaustive)
                .search(&query, k);
            assert_eq!(pruned, exhaustive, "query {q:?} k={k}");
        }
    }

    #[test]
    fn pruned_matches_exhaustive_on_raw_index() {
        let idx = index();
        for k in [1, 2, 3, 10] {
            assert_modes_agree(&idx, k);
        }
    }

    #[test]
    fn pruned_matches_exhaustive_on_optimized_index() {
        let mut idx = index();
        idx.optimize();
        for k in [1, 2, 3, 10] {
            assert_modes_agree(&idx, k);
        }
    }

    #[test]
    fn pruned_matches_exhaustive_with_deletes_and_mixed_segments() {
        let mut idx = index();
        idx.optimize();
        // Post-optimize adds re-expand some lists (mixed raw/compressed
        // segments with partially invalidated stats).
        idx.add(Doc::new().field(FieldId(0), "Space Golf").field(
            FieldId(1),
            "golf across space with lasers and farming puzzles",
        ));
        idx.delete(DocId(2));
        for k in [1, 3, 10] {
            assert_modes_agree(&idx, k);
        }
    }

    #[test]
    fn pruned_matches_exhaustive_under_filter() {
        let mut idx = index();
        idx.optimize();
        for q in QUERIES {
            let query = Query::parse(q);
            let filter = |d: DocId| d.0.is_multiple_of(2);
            let pruned = Searcher::new(&idx).search_filtered(&query, 3, filter);
            let exhaustive = Searcher::new(&idx)
                .with_mode(ScoreMode::Exhaustive)
                .search_filtered(&query, 3, filter);
            assert_eq!(pruned, exhaustive, "query {q:?}");
        }
    }

    #[test]
    fn pruned_matches_exhaustive_with_custom_params() {
        let mut idx = index();
        idx.optimize();
        // Bounds are computed from the searcher's own parameters, so
        // pruning stays rank-safe for non-default k1/b too.
        for params in [
            Bm25Params { k1: 0.0, b: 0.0 },
            Bm25Params { k1: 2.0, b: 1.0 },
        ] {
            for q in QUERIES {
                let query = Query::parse(q);
                let pruned = Searcher::with_params(&idx, params).search(&query, 3);
                let exhaustive = Searcher::with_params(&idx, params)
                    .with_mode(ScoreMode::Exhaustive)
                    .search(&query, 3);
                assert_eq!(pruned, exhaustive, "query {q:?} params {params:?}");
            }
        }
    }

    #[test]
    fn threshold_prunes_on_larger_corpus_without_changing_results() {
        // A corpus big enough that the MaxScore partition actually
        // activates (many docs share the common term, few the rare
        // one), checked at small k where pruning is strongest.
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        for i in 0..600u32 {
            let rare = if i % 97 == 0 { " meteor" } else { "" };
            let text = format!(
                "common{} padding tokens number {} filler text{rare}",
                if i % 3 == 0 { " common common" } else { "" },
                i % 7
            );
            idx.add(Doc::new().field(body, text));
        }
        idx.optimize();
        for q in ["common meteor", "common filler meteor", "+meteor common"] {
            let query = Query::parse(q);
            for k in [1, 5, 20] {
                let pruned = Searcher::new(&idx).search(&query, k);
                let exhaustive = Searcher::new(&idx)
                    .with_mode(ScoreMode::Exhaustive)
                    .search(&query, k);
                assert_eq!(pruned, exhaustive, "query {q:?} k={k}");
            }
        }
    }

    #[test]
    fn custom_params_change_scores() {
        let idx = index();
        let q = Query::parse("space");
        let default = Searcher::new(&idx).search(&q, 10);
        let flat = Searcher::with_params(&idx, Bm25Params { k1: 0.0, b: 0.0 }).search(&q, 10);
        assert_eq!(default.len(), flat.len());
        assert_ne!(default[0].score, flat[0].score);
    }

    #[test]
    fn threshold_is_kth_score_when_full_and_neg_infinity_otherwise() {
        let idx = index();
        let q = Query::parse("space");
        let (hits, bound) = Searcher::new(&idx).search_filtered_with_threshold(&q, 2, |_| true);
        assert_eq!(hits.len(), 2);
        assert_eq!(bound, hits[1].score);
        let (hits, bound) = Searcher::new(&idx).search_filtered_with_threshold(&q, 50, |_| true);
        assert!(hits.len() < 50);
        assert_eq!(bound, f32::NEG_INFINITY);
    }

    /// The corpus from [`index`] split round-robin across `n` shards.
    fn shard_indexes(n: usize) -> Vec<Index> {
        let docs = [
            (
                "Galactic Raiders",
                "a fast space shooter with lasers and space battles",
            ),
            ("Farm Story", "calm farming with crops and animals"),
            ("Space Trader", "trade goods across space stations"),
            ("Puzzle Palace", "mind bending puzzle rooms"),
            ("Laser Golf", "golf with lasers a silly shooter"),
        ];
        let mut shards: Vec<Index> = (0..n)
            .map(|_| {
                let mut idx = Index::new(IndexConfig::default());
                idx.register_field("title", 2.0);
                idx.register_field("body", 1.0);
                idx
            })
            .collect();
        let title = FieldId(0);
        let body = FieldId(1);
        for (i, (t, b)) in docs.iter().enumerate() {
            shards[i % n].add(Doc::new().field(title, *t).field(body, *b));
        }
        for s in &mut shards {
            s.optimize();
        }
        shards
    }

    #[test]
    fn folded_global_stats_match_the_single_index() {
        let single = index();
        for n in 1..=4 {
            let shards = shard_indexes(n);
            let global = GlobalScoreStats::fold(shards.iter());
            assert_eq!(global.live_docs, single.live_docs());
            for field in single.field_ids() {
                assert_eq!(
                    global.total_field_len[field.0 as usize],
                    single.total_field_len(field),
                    "total_field_len shards={n} field={field:?}"
                );
                assert_eq!(global.avg_field_len(field), single.avg_field_len(field));
            }
            for (tid, term) in single.lexicon().iter() {
                for field in single.field_ids() {
                    assert_eq!(
                        global.doc_freq(term, field),
                        single.doc_freq(tid, field),
                        "df mismatch shards={n} term={term:?}"
                    );
                    assert_eq!(
                        global.has_postings(term, field),
                        single.has_postings(tid, field)
                    );
                }
            }
        }
    }

    #[test]
    fn global_stats_make_shard_scores_bit_identical_to_single() {
        // Per-shard search with folded stats must assign every doc the
        // exact score the single index does; gathering the per-shard
        // hits and resorting under the canonical order reproduces the
        // single top-k bit for bit.
        let single = index();
        for n in 1..=4 {
            let shards = shard_indexes(n);
            let global = GlobalScoreStats::fold(shards.iter());
            for q in [
                "space",
                "space shooter",
                "+space trade",
                "lasers -golf",
                "\"space shooter\"",
                "farming puzzle lasers",
            ] {
                let query = Query::parse(q);
                let want = Searcher::new(&single).search(&query, 10);
                let mut merged: Vec<(f32, usize, u32)> = Vec::new();
                for (si, shard) in shards.iter().enumerate() {
                    let hits = Searcher::new(shard)
                        .with_global_stats(&global)
                        .search(&query, 10);
                    for h in hits {
                        // Identify the doc by its stored title-less
                        // global position: local doc i on shard si is
                        // global doc si + i*n under round-robin.
                        let global_doc = si as u32 + h.doc.0 * n as u32;
                        merged.push((h.score, si, global_doc));
                    }
                }
                merged.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.2.cmp(&b.2)));
                merged.truncate(10);
                let want_pairs: Vec<(u32, u32)> =
                    want.iter().map(|h| (h.doc.0, h.score.to_bits())).collect();
                let got_pairs: Vec<(u32, u32)> = merged
                    .iter()
                    .map(|&(score, _, doc)| (doc, score.to_bits()))
                    .collect();
                assert_eq!(want_pairs, got_pairs, "query {q:?} shards={n}");
            }
        }
    }
}
