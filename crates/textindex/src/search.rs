//! BM25 top-k query execution.
//!
//! Execution is term-at-a-time: every positive clause walks its posting
//! lists once, accumulating scores into a hash map, after which `must`
//! intersections, `must-not` exclusions, tombstones, and the caller's
//! filter are applied and the top-k extracted. For the index sizes this
//! platform handles (hundreds of thousands of synthetic pages) this is
//! simple and fast, and keeps phrase handling in one place.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::fx::{FxHashMap, FxHashSet};
use crate::index::{FieldId, Index};
use crate::lexicon::TermId;
use crate::query::{ClauseKind, Occur, Query};
use crate::DocId;

/// BM25 free parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (typical 1.2).
    pub k1: f32,
    /// Length normalization strength (typical 0.75).
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Matching document.
    pub doc: DocId,
    /// BM25 score (field-boost weighted, summed over clauses).
    pub score: f32,
}

/// Query executor over one [`Index`].
pub struct Searcher<'a> {
    index: &'a Index,
    params: Bm25Params,
}

impl<'a> Searcher<'a> {
    /// Searcher with default BM25 parameters.
    pub fn new(index: &'a Index) -> Self {
        Searcher {
            index,
            params: Bm25Params::default(),
        }
    }

    /// Override BM25 parameters.
    pub fn with_params(index: &'a Index, params: Bm25Params) -> Self {
        Searcher { index, params }
    }

    /// Execute `query`, returning at most `k` hits sorted by descending
    /// score (ties broken by ascending doc id, so results are
    /// deterministic).
    pub fn search(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        self.search_filtered(query, k, |_| true)
    }

    /// Like [`Searcher::search`] but only documents accepted by
    /// `filter` are returned. This is the hook `symphony-web` uses for
    /// site restriction and `symphony-store` for visibility scopes.
    pub fn search_filtered(
        &self,
        query: &Query,
        k: usize,
        filter: impl Fn(DocId) -> bool,
    ) -> Vec<SearchHit> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut scores: FxHashMap<u32, f32> = FxHashMap::default();
        let mut must_sets: Vec<FxHashSet<u32>> = Vec::new();
        let mut excluded: FxHashSet<u32> = FxHashSet::default();
        let mut any_positive = false;

        for clause in &query.clauses {
            let fields: Vec<FieldId> = match &clause.field {
                Some(name) => match self.index.field_id(name) {
                    Some(f) => vec![f],
                    None => {
                        // Unknown field: a Must clause can never match.
                        if clause.occur == Occur::Must {
                            return Vec::new();
                        }
                        continue;
                    }
                },
                None => self.index.field_ids().collect(),
            };
            match (&clause.kind, clause.occur) {
                (ClauseKind::Term(raw), occur) => {
                    let tokens = self.analyze_query_text(raw);
                    if tokens.is_empty() {
                        if occur == Occur::Must {
                            // A must clause that analyzes to nothing
                            // (e.g. a stopword) is vacuously true.
                        }
                        continue;
                    }
                    match occur {
                        Occur::MustNot => {
                            for t in &tokens {
                                self.collect_docs(*t, &fields, &mut excluded);
                            }
                        }
                        Occur::Should | Occur::Must => {
                            any_positive = true;
                            let mut clause_docs = FxHashSet::default();
                            for (i, t) in tokens.iter().enumerate() {
                                self.score_term(*t, &fields, &mut scores);
                                if occur == Occur::Must {
                                    let mut term_docs = FxHashSet::default();
                                    self.collect_docs(*t, &fields, &mut term_docs);
                                    if i == 0 {
                                        clause_docs = term_docs;
                                    } else {
                                        clause_docs.retain(|d| term_docs.contains(d));
                                    }
                                }
                            }
                            if occur == Occur::Must {
                                must_sets.push(clause_docs);
                            }
                        }
                    }
                }
                (ClauseKind::Phrase(words), occur) => {
                    let tokens: Vec<TermId> = {
                        let mut ts = Vec::new();
                        for w in words {
                            ts.extend(self.analyze_query_text(w));
                        }
                        ts
                    };
                    if tokens.is_empty() {
                        continue;
                    }
                    let matches = self.phrase_matches(&tokens, &fields);
                    match occur {
                        Occur::MustNot => {
                            excluded.extend(matches.keys().copied());
                        }
                        Occur::Should | Occur::Must => {
                            any_positive = true;
                            for (&doc, &(tf, field)) in &matches {
                                let s = self.phrase_score(&tokens, field, DocId(doc), tf);
                                *scores.entry(doc).or_insert(0.0) += s;
                            }
                            if occur == Occur::Must {
                                must_sets.push(matches.keys().copied().collect());
                            }
                        }
                    }
                }
            }
        }

        if !any_positive {
            return Vec::new();
        }

        // Apply must / must-not / tombstones / caller filter, extract
        // top-k with a min-heap of size k.
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        'docs: for (&doc, &score) in &scores {
            if excluded.contains(&doc) {
                continue;
            }
            for m in &must_sets {
                if !m.contains(&doc) {
                    continue 'docs;
                }
            }
            let id = DocId(doc);
            if self.index.is_deleted(id) || !filter(id) {
                continue;
            }
            heap.push(HeapEntry { score, doc });
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit {
                doc: DocId(e.doc),
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits
    }

    /// Analyze raw query text with the index's analyzer, mapping each
    /// token to an existing term id (tokens the index has never seen
    /// match nothing and are dropped).
    fn analyze_query_text(&self, raw: &str) -> Vec<TermId> {
        self.index
            .analyzer()
            .analyze(raw)
            .into_iter()
            .filter_map(|t| self.index.lexicon().get(&t.term))
            .collect()
    }

    fn idf(&self, term: TermId, field: FieldId) -> f32 {
        let df = self.index.doc_freq(term, field);
        if df == 0 {
            return 0.0;
        }
        let n = self.index.total_docs() as f32;
        (1.0 + (n - df as f32 + 0.5) / (df as f32 + 0.5)).ln()
    }

    fn bm25(&self, tf: f32, len: f32, avg_len: f32, idf: f32) -> f32 {
        let Bm25Params { k1, b } = self.params;
        let norm = if avg_len > 0.0 {
            1.0 - b + b * len / avg_len
        } else {
            1.0
        };
        idf * tf * (k1 + 1.0) / (tf + k1 * norm)
    }

    fn score_term(&self, term: TermId, fields: &[FieldId], scores: &mut FxHashMap<u32, f32>) {
        for &field in fields {
            let Some(postings) = self.index.postings(term, field) else {
                continue;
            };
            let idf = self.idf(term, field);
            let avg = self.index.avg_field_len(field);
            let boost = self.index.field_boost(field);
            postings.for_each(|doc, positions| {
                let len = self.index.field_len(doc, field) as f32;
                let s = boost * self.bm25(positions.len() as f32, len, avg, idf);
                *scores.entry(doc.0).or_insert(0.0) += s;
            });
        }
    }

    fn collect_docs(&self, term: TermId, fields: &[FieldId], out: &mut FxHashSet<u32>) {
        for &field in fields {
            if let Some(postings) = self.index.postings(term, field) {
                postings.for_each(|doc, _| {
                    out.insert(doc.0);
                });
            }
        }
    }

    /// Find documents containing the token sequence contiguously in any
    /// of `fields`. Returns doc -> (occurrence count, matching field).
    fn phrase_matches(
        &self,
        tokens: &[TermId],
        fields: &[FieldId],
    ) -> FxHashMap<u32, (u32, FieldId)> {
        let mut result: FxHashMap<u32, (u32, FieldId)> = FxHashMap::default();
        for &field in fields {
            // Load positions for each token in this field.
            let mut per_token: Vec<FxHashMap<u32, Vec<u32>>> = Vec::with_capacity(tokens.len());
            let mut missing = false;
            for &t in tokens {
                let Some(postings) = self.index.postings(t, field) else {
                    missing = true;
                    break;
                };
                let mut map: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
                postings.for_each(|doc, positions| {
                    map.insert(doc.0, positions.to_vec());
                });
                per_token.push(map);
            }
            if missing {
                continue;
            }
            // Candidate docs = docs of the rarest token.
            let (seed_idx, seed) = per_token
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.len())
                .expect("phrase has at least one token");
            'cand: for (&doc, seed_positions) in seed {
                for (i, map) in per_token.iter().enumerate() {
                    if i != seed_idx && !map.contains_key(&doc) {
                        continue 'cand;
                    }
                }
                // Count contiguous runs starting from token 0 positions.
                let first = &per_token[0][&doc];
                let mut count = 0u32;
                'start: for &p in first {
                    for (offset, map) in per_token.iter().enumerate().skip(1) {
                        let want = p + offset as u32;
                        if map[&doc].binary_search(&want).is_err() {
                            continue 'start;
                        }
                    }
                    count += 1;
                }
                let _ = seed_positions;
                if count > 0 {
                    let entry = result.entry(doc).or_insert((0, field));
                    entry.0 += count;
                }
            }
        }
        result
    }

    fn phrase_score(&self, tokens: &[TermId], field: FieldId, doc: DocId, tf: u32) -> f32 {
        let idf: f32 = tokens.iter().map(|&t| self.idf(t, field)).sum();
        let len = self.index.field_len(doc, field) as f32;
        let avg = self.index.avg_field_len(field);
        self.index.field_boost(field) * self.bm25(tf as f32, len, avg, idf)
    }
}

/// Min-heap entry: the heap keeps the k highest scores by evicting the
/// smallest, so `Ord` is inverted on score.
struct HeapEntry {
    score: f32,
    doc: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse score order (BinaryHeap is a max-heap; we want to pop
        // the worst). Ties: larger doc id pops first so smaller ids are
        // kept, matching the final deterministic sort.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then(self.doc.cmp(&other.doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Doc, IndexConfig};

    fn index() -> Index {
        let mut idx = Index::new(IndexConfig::default());
        let title = idx.register_field("title", 2.0);
        let body = idx.register_field("body", 1.0);
        let docs = [
            (
                "Galactic Raiders",
                "a fast space shooter with lasers and space battles",
            ),
            ("Farm Story", "calm farming with crops and animals"),
            ("Space Trader", "trade goods across space stations"),
            ("Puzzle Palace", "mind bending puzzle rooms"),
            ("Laser Golf", "golf with lasers a silly shooter"),
        ];
        for (t, b) in docs {
            idx.add(Doc::new().field(title, t).field(body, b));
        }
        idx
    }

    fn docs_of(hits: &[SearchHit]) -> Vec<u32> {
        hits.iter().map(|h| h.doc.0).collect()
    }

    #[test]
    fn single_term() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("farming"), 10);
        assert_eq!(docs_of(&hits), vec![1]);
    }

    #[test]
    fn multi_term_ranks_doc_with_both_terms_above_single_match() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("space shooter"), 10);
        let pos = |d: u32| hits.iter().position(|h| h.doc == DocId(d)).unwrap();
        // Doc 0 matches both terms; doc 4 only "shooter". Doc 2's
        // boosted title may legitimately compete with doc 0, but a
        // single-term match must not outrank the double match.
        assert!(pos(0) < pos(4));
        assert!(hits.len() >= 3);
    }

    #[test]
    fn title_boost_matters() {
        let idx = index();
        // "space" appears twice in doc 0's body but once in doc 2's
        // boosted title; the title match must not be buried.
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn must_requires_presence() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("+golf shooter"), 10);
        assert_eq!(docs_of(&hits), vec![4]);
    }

    #[test]
    fn mustnot_excludes() {
        // Both shooter docs (0 and 4) mention lasers, so excluding
        // "laser" (stemmed) leaves nothing.
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("shooter -laser"), 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn mustnot_excludes_all_docs_containing_term() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("shooter -space"), 10);
        assert_eq!(docs_of(&hits), vec![4]);
    }

    #[test]
    fn phrase_matches_contiguous_only() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("\"space shooter\""), 10);
        assert_eq!(docs_of(&hits), vec![0]);
        // Both words occur in doc 2? "space" yes, "shooter" no.
        let none = Searcher::new(&idx).search(&Query::parse("\"shooter space\""), 10);
        assert!(none.is_empty());
    }

    #[test]
    fn field_restricted_term() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("title:space"), 10);
        assert_eq!(docs_of(&hits), vec![2]);
    }

    #[test]
    fn unknown_field_must_matches_nothing() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("+nosuch:space"), 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn unknown_term_matches_nothing() {
        let idx = index();
        assert!(Searcher::new(&idx)
            .search(&Query::parse("zzzzqqq"), 10)
            .is_empty());
    }

    #[test]
    fn only_mustnot_returns_nothing() {
        let idx = index();
        assert!(Searcher::new(&idx)
            .search(&Query::parse("-space"), 10)
            .is_empty());
    }

    #[test]
    fn k_limits_results_and_keeps_best() {
        let idx = index();
        let all = Searcher::new(&idx).search(&Query::parse("space shooter laser"), 10);
        let top1 = Searcher::new(&idx).search(&Query::parse("space shooter laser"), 1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].doc, all[0].doc);
    }

    #[test]
    fn k_zero_is_empty() {
        let idx = index();
        assert!(Searcher::new(&idx)
            .search(&Query::parse("space"), 0)
            .is_empty());
    }

    #[test]
    fn filter_is_applied() {
        let idx = index();
        let hits = Searcher::new(&idx).search_filtered(&Query::parse("space"), 10, |d| d.0 != 0);
        assert_eq!(docs_of(&hits), vec![2]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut idx = Index::new(IndexConfig::default());
        let f = idx.register_field("t", 1.0);
        for _ in 0..5 {
            idx.add(Doc::new().field(f, "identical text here"));
        }
        let hits = Searcher::new(&idx).search(&Query::parse("identical"), 3);
        assert_eq!(docs_of(&hits), vec![0, 1, 2]);
    }

    #[test]
    fn stemming_unifies_query_and_doc_forms() {
        let idx = index();
        let hits = Searcher::new(&idx).search(&Query::parse("battle"), 10);
        assert_eq!(docs_of(&hits), vec![0]); // doc says "battles"
    }

    #[test]
    fn custom_params_change_scores() {
        let idx = index();
        let q = Query::parse("space");
        let default = Searcher::new(&idx).search(&q, 10);
        let flat = Searcher::with_params(&idx, Bm25Params { k1: 0.0, b: 0.0 }).search(&q, 10);
        assert_eq!(default.len(), flat.len());
        assert_ne!(default[0].score, flat[0].score);
    }
}
