//! Spelling suggestion ("did you mean").
//!
//! A general search engine answers misspelled queries with a
//! correction; the suggester proposes, for each query token unknown to
//! the index, the most popular indexed term within a small edit
//! distance. Popularity is document frequency, so corrections always
//! point at terms that actually retrieve something.

use crate::analysis::Analyzer;
use crate::index::Index;

/// Maximum edit distance considered a plausible correction.
const MAX_DISTANCE: usize = 2;

/// A spelling suggester snapshot built from an index.
///
/// The suggester copies `(term, df)` pairs at construction; rebuild it
/// after heavy indexing (it is a few microseconds for typical
/// lexicons). Document frequencies include tombstoned documents only
/// until a merge purges them: snapshotting after
/// [`Index::optimize`](crate::Index::optimize) (or once
/// [`Index::maintain`](crate::Index::maintain) has compacted
/// tombstone-heavy segments) yields live-corpus popularity, and terms
/// that survive only in deleted documents drop out entirely.
#[derive(Debug)]
pub struct SpellSuggester {
    /// `(term, total document frequency)`, unordered.
    terms: Vec<(String, usize)>,
}

impl SpellSuggester {
    /// Snapshot the index's lexicon with per-term popularity.
    pub fn from_index(index: &Index) -> SpellSuggester {
        let terms = index
            .lexicon()
            .iter()
            .map(|(id, term)| {
                let df: usize = index.field_ids().map(|f| index.doc_freq(id, f)).sum();
                (term.to_string(), df)
            })
            .filter(|(_, df)| *df > 0)
            .collect();
        SpellSuggester { terms }
    }

    /// Number of candidate terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Suggest a correction for a single (already analyzed) term.
    /// Returns `None` when the term is known or nothing is close.
    pub fn suggest_term(&self, term: &str) -> Option<&str> {
        if term.len() < 3 {
            return None; // too short to correct meaningfully
        }
        if self.terms.iter().any(|(t, _)| t == term) {
            return None;
        }
        let mut best: Option<(&str, usize, usize)> = None; // term, dist, df
        for (candidate, df) in &self.terms {
            // Cheap length pre-filter.
            if candidate.len().abs_diff(term.len()) > MAX_DISTANCE {
                continue;
            }
            let Some(dist) = bounded_edit_distance(term, candidate, MAX_DISTANCE) else {
                continue;
            };
            let better = match best {
                None => true,
                Some((_, bd, bdf)) => dist < bd || (dist == bd && *df > bdf),
            };
            if better {
                best = Some((candidate, dist, *df));
            }
        }
        best.map(|(t, _, _)| t)
    }

    /// Suggest a corrected form of a whole raw query, preserving word
    /// order. Returns `None` when every token is already known (or
    /// uncorrectable).
    pub fn did_you_mean(&self, raw_query: &str, analyzer: &dyn Analyzer) -> Option<String> {
        let mut corrected = Vec::new();
        let mut changed = false;
        for token in analyzer.analyze(raw_query) {
            match self.suggest_term(&token.term) {
                Some(fix) => {
                    corrected.push(fix.to_string());
                    changed = true;
                }
                None => corrected.push(token.term),
            }
        }
        (changed && !corrected.is_empty()).then(|| corrected.join(" "))
    }
}

/// Levenshtein distance with a cutoff: `None` when the distance
/// exceeds `max`. Operates on characters (not bytes), so multi-byte
/// text behaves.
pub fn bounded_edit_distance(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > max {
        return None;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > max {
            return None; // the whole row exceeded the band
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[b.len()] <= max).then_some(prev[b.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Doc, IndexConfig};

    fn index() -> Index {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        for text in [
            "galactic raiders space shooter",
            "galactic empire strategy",
            "farming story calm crops",
            "puzzle palace rooms",
        ] {
            idx.add(Doc::new().field(body, text));
        }
        idx
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(bounded_edit_distance("abc", "abc", 2), Some(0));
        assert_eq!(bounded_edit_distance("abc", "abd", 2), Some(1));
        assert_eq!(bounded_edit_distance("abc", "acbd", 2), Some(2));
        assert_eq!(bounded_edit_distance("abc", "zzzz", 2), None);
        assert_eq!(bounded_edit_distance("", "ab", 2), Some(2));
        assert_eq!(bounded_edit_distance("café", "cafe", 2), Some(1));
    }

    #[test]
    fn corrects_a_typo_to_popular_term() {
        let idx = index();
        let sp = SpellSuggester::from_index(&idx);
        assert_eq!(sp.suggest_term("galactik"), Some("galactic"));
        assert_eq!(sp.suggest_term("shooterr"), Some("shooter"));
    }

    #[test]
    fn known_terms_are_not_corrected() {
        let idx = index();
        let sp = SpellSuggester::from_index(&idx);
        assert_eq!(sp.suggest_term("galactic"), None);
    }

    #[test]
    fn garbage_is_not_corrected() {
        let idx = index();
        let sp = SpellSuggester::from_index(&idx);
        assert_eq!(sp.suggest_term("zzzzzzzzzz"), None);
        assert_eq!(sp.suggest_term("ab"), None, "too short");
    }

    #[test]
    fn popularity_breaks_distance_ties() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        // "ports" in 3 docs, "sorts" in 1; "porta" is distance 1 from
        // both? porta->ports = 1 (a->s), porta->sorts = 2. Use a real
        // tie: "cart" vs "card", query "carz".
        for _ in 0..3 {
            idx.add(Doc::new().field(body, "cart"));
        }
        idx.add(Doc::new().field(body, "card"));
        let sp = SpellSuggester::from_index(&idx);
        assert_eq!(sp.suggest_term("carz"), Some("cart"));
    }

    #[test]
    fn did_you_mean_rewrites_only_unknown_tokens() {
        let idx = index();
        let sp = SpellSuggester::from_index(&idx);
        let dym = sp.did_you_mean("galactik shooter", idx.analyzer());
        assert_eq!(dym.as_deref(), Some("galactic shooter"));
        assert_eq!(sp.did_you_mean("galactic shooter", idx.analyzer()), None);
    }

    #[test]
    fn tombstoned_only_terms_suggest_until_compaction() {
        use crate::DocId;
        let mut idx = index();
        // Doc 3 is the only "puzzle palace rooms" document. Right after
        // the delete its terms still sit in the posting lists, so a
        // snapshot taken now still suggests them (df is a tombstone-
        // inclusive overestimate)...
        idx.delete(DocId(3));
        let sp = SpellSuggester::from_index(&idx);
        assert_eq!(sp.suggest_term("puzzel"), Some("puzzle"));
        // ...but compaction purges the tombstone, df drops to zero, and
        // the rebuilt suggester stops proposing terms that would
        // retrieve nothing.
        idx.optimize();
        let sp = SpellSuggester::from_index(&idx);
        assert_eq!(sp.suggest_term("puzzel"), None);
        assert_eq!(sp.suggest_term("galactik"), Some("galactic"));
    }
}
