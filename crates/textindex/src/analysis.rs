//! Text analysis: tokenization, stopword removal, and light stemming.
//!
//! The same analyzer must be applied at index time and at query time or
//! terms will not line up; [`Index`](crate::Index) owns one analyzer and
//! the query layer borrows it.

/// A single token produced by an [`Analyzer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized term text (lowercased, stemmed).
    pub term: String,
    /// Token position within the field (counting kept tokens only is
    /// NOT what we do: positions count every emitted word so that
    /// phrase queries spanning a removed stopword still behave
    /// predictably).
    pub position: u32,
    /// Byte offset of the token start in the original text.
    pub start: usize,
    /// Byte offset one past the token end in the original text.
    pub end: usize,
}

/// Anything that turns raw text into a token stream.
pub trait Analyzer: Send + Sync {
    /// Tokenize `text`, appending tokens to `out`.
    ///
    /// Taking an out-parameter lets indexing reuse one allocation per
    /// field (see the heap-allocation guidance in the performance
    /// notes).
    fn analyze_into(&self, text: &str, out: &mut Vec<Token>);

    /// Convenience wrapper that allocates a fresh vector.
    fn analyze(&self, text: &str) -> Vec<Token> {
        let mut out = Vec::new();
        self.analyze_into(text, &mut out);
        out
    }
}

/// English stopwords removed by the default analyzer.
///
/// Deliberately short: a search-driven application mixes product names
/// and natural language, and aggressive stopping hurts product queries
/// like "the last of us".
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "is", "it", "of", "on",
    "or", "that", "the", "to", "was", "with",
];

/// The default analyzer: Unicode-alphanumeric word splitting,
/// lowercasing, stopword removal, and optional light suffix stemming.
#[derive(Debug, Clone)]
pub struct StandardAnalyzer {
    stem: bool,
    keep_stopwords: bool,
}

impl Default for StandardAnalyzer {
    fn default() -> Self {
        StandardAnalyzer {
            stem: true,
            keep_stopwords: false,
        }
    }
}

impl StandardAnalyzer {
    /// Analyzer with stemming and stopword removal enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Disable stemming (used by exact-match verticals such as URL
    /// tokens).
    pub fn without_stemming(mut self) -> Self {
        self.stem = false;
        self
    }

    /// Keep stopwords (used when indexing very short fields like
    /// titles, where every word carries signal).
    pub fn with_stopwords(mut self) -> Self {
        self.keep_stopwords = true;
        self
    }

    fn is_stopword(&self, term: &str) -> bool {
        !self.keep_stopwords && STOPWORDS.contains(&term)
    }
}

impl Analyzer for StandardAnalyzer {
    fn analyze_into(&self, text: &str, out: &mut Vec<Token>) {
        let mut position = 0u32;
        let mut start = None;
        // Iterate char boundaries manually so byte offsets are exact.
        for (idx, ch) in text.char_indices() {
            if ch.is_alphanumeric() {
                if start.is_none() {
                    start = Some(idx);
                }
            } else if let Some(s) = start.take() {
                emit(self, text, s, idx, &mut position, out);
            }
        }
        if let Some(s) = start {
            emit(self, text, s, text.len(), &mut position, out);
        }

        fn emit(
            an: &StandardAnalyzer,
            text: &str,
            start: usize,
            end: usize,
            position: &mut u32,
            out: &mut Vec<Token>,
        ) {
            let raw = &text[start..end];
            let mut term = raw.to_lowercase();
            let pos = *position;
            *position += 1;
            if an.is_stopword(&term) {
                return;
            }
            if an.stem {
                term = stem(&term);
            }
            out.push(Token {
                term,
                position: pos,
                start,
                end,
            });
        }
    }
}

/// A light English suffix stripper (a deliberately small subset of
/// Porter). It only removes plural/participle suffixes when the stem
/// that remains is long enough to stay recognizable, which keeps it
/// safe for product catalogs ("rings" -> "ring" but "les" stays "les").
pub fn stem(term: &str) -> String {
    let t = term;
    let n = t.len();
    // Never stem very short tokens or tokens with digits.
    if n <= 3 || t.bytes().any(|b| b.is_ascii_digit()) {
        return t.to_string();
    }
    if let Some(base) = t.strip_suffix("ies") {
        if base.len() >= 2 {
            return format!("{base}y");
        }
    }
    if let Some(base) = t.strip_suffix("sses") {
        return format!("{base}ss");
    }
    if let Some(base) = t.strip_suffix("ing") {
        if base.len() >= 3 {
            return undouble(base);
        }
    }
    if let Some(base) = t.strip_suffix("ed") {
        if base.len() >= 3 {
            return undouble(base);
        }
    }
    if let Some(base) = t.strip_suffix("es") {
        if base.len() >= 3 && (base.ends_with('x') || base.ends_with("sh") || base.ends_with("ch"))
        {
            return base.to_string();
        }
    }
    if t.ends_with('s') && !t.ends_with("ss") && !t.ends_with("us") && n >= 4 {
        return t[..n - 1].to_string();
    }
    t.to_string()
}

/// Collapse a doubled final consonant left behind by suffix stripping
/// ("stopp" -> "stop"), except for letters where doubling is natural.
fn undouble(base: &str) -> String {
    let bytes = base.as_bytes();
    let n = bytes.len();
    if n >= 2 && bytes[n - 1] == bytes[n - 2] {
        let c = bytes[n - 1] as char;
        if c.is_ascii_alphabetic() && !matches!(c, 'l' | 's' | 'z' | 'e' | 'o') {
            return base[..n - 1].to_string();
        }
    }
    base.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(text: &str) -> Vec<String> {
        StandardAnalyzer::new()
            .analyze(text)
            .into_iter()
            .map(|t| t.term)
            .collect()
    }

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(terms("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn removes_stopwords_but_keeps_positions() {
        let toks = StandardAnalyzer::new().analyze("the space shooter");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].term, "space");
        // "the" occupied position 0.
        assert_eq!(toks[0].position, 1);
        assert_eq!(toks[1].position, 2);
    }

    #[test]
    fn stopwords_kept_when_configured() {
        let toks = StandardAnalyzer::new().with_stopwords().analyze("the game");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].term, "the");
    }

    #[test]
    fn byte_offsets_are_exact() {
        let text = "wine: Margaux";
        let toks = StandardAnalyzer::new().analyze(text);
        assert_eq!(&text[toks[0].start..toks[0].end], "wine");
        assert_eq!(&text[toks[1].start..toks[1].end], "Margaux");
    }

    #[test]
    fn unicode_words_survive() {
        let toks = StandardAnalyzer::new()
            .without_stemming()
            .analyze("Café Münch 2024");
        let ts: Vec<_> = toks.iter().map(|t| t.term.as_str()).collect();
        assert_eq!(ts, vec!["café", "münch", "2024"]);
    }

    #[test]
    fn stemming_examples() {
        assert_eq!(stem("games"), "game");
        assert_eq!(stem("stories"), "story");
        assert_eq!(stem("running"), "run");
        assert_eq!(stem("played"), "play");
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("glass"), "glass");
        assert_eq!(stem("les"), "les");
        assert_eq!(stem("us"), "us");
        assert_eq!(stem("2024s"), "2024s");
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(
            terms("top 10 games of 2009"),
            vec!["top", "10", "game", "2009"]
        );
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(terms("").is_empty());
        assert!(terms("   \t\n ").is_empty());
    }

    #[test]
    fn analyze_into_reuses_buffer() {
        let an = StandardAnalyzer::new();
        let mut buf = Vec::with_capacity(8);
        an.analyze_into("first pass", &mut buf);
        let first = buf.len();
        buf.clear();
        an.analyze_into("second pass here", &mut buf);
        assert!(!buf.is_empty() && first > 0);
    }
}
