//! Text analysis: tokenization, stopword removal, and light stemming.
//!
//! The same analyzer must be applied at index time and at query time or
//! terms will not line up; [`Index`](crate::Index) owns one analyzer and
//! the query layer borrows it.

/// A single token produced by an [`Analyzer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized term text (lowercased, stemmed).
    pub term: String,
    /// Token position within the field (counting kept tokens only is
    /// NOT what we do: positions count every emitted word so that
    /// phrase queries spanning a removed stopword still behave
    /// predictably).
    pub position: u32,
    /// Byte offset of the token start in the original text.
    pub start: usize,
    /// Byte offset one past the token end in the original text.
    pub end: usize,
}

/// Reusable per-builder scratch buffers for the allocation-lean
/// [`Analyzer::analyze_with`] path.
///
/// Holds the lowercase and stem staging buffers so that, across a
/// whole document stream, normalization performs zero steady-state
/// heap allocations: terms that are already normalized are borrowed
/// straight from the input text, and terms that change bytes are
/// staged in these buffers (which only ever grow to the longest token
/// seen).
#[derive(Debug, Default, Clone)]
pub struct TokenScratch {
    /// Lowercasing staging buffer.
    lower: String,
    /// Stemming staging buffer (only the rare suffix rewrites that are
    /// not prefix slices need it, e.g. `stories` -> `story`).
    stemmed: String,
}

/// Anything that turns raw text into a token stream.
pub trait Analyzer: Send + Sync {
    /// Tokenize `text`, appending tokens to `out`.
    ///
    /// Taking an out-parameter lets indexing reuse one allocation per
    /// field (see the heap-allocation guidance in the performance
    /// notes).
    fn analyze_into(&self, text: &str, out: &mut Vec<Token>);

    /// Convenience wrapper that allocates a fresh vector.
    fn analyze(&self, text: &str) -> Vec<Token> {
        let mut out = Vec::new();
        self.analyze_into(text, &mut out);
        out
    }

    /// Streaming, allocation-lean analysis: invoke
    /// `sink(term, position, start, end)` for every kept token, with
    /// `term` borrowed from `text` or from `scratch` — no owned
    /// `String` is ever materialized. This is the indexing hot path;
    /// [`Analyzer::analyze_into`] and this method must emit identical
    /// token streams.
    ///
    /// The default implementation delegates to `analyze_into` (one
    /// allocation per token), so third-party analyzers stay correct
    /// without opting into the lean path.
    fn analyze_with(
        &self,
        text: &str,
        scratch: &mut TokenScratch,
        sink: &mut dyn FnMut(&str, u32, usize, usize),
    ) {
        let _ = scratch;
        let mut out = Vec::new();
        self.analyze_into(text, &mut out);
        for t in &out {
            sink(&t.term, t.position, t.start, t.end);
        }
    }
}

/// English stopwords removed by the default analyzer.
///
/// Deliberately short: a search-driven application mixes product names
/// and natural language, and aggressive stopping hurts product queries
/// like "the last of us".
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "is", "it", "of", "on",
    "or", "that", "the", "to", "was", "with",
];

/// The default analyzer: Unicode-alphanumeric word splitting,
/// lowercasing, stopword removal, and optional light suffix stemming.
#[derive(Debug, Clone)]
pub struct StandardAnalyzer {
    stem: bool,
    keep_stopwords: bool,
}

impl Default for StandardAnalyzer {
    fn default() -> Self {
        StandardAnalyzer {
            stem: true,
            keep_stopwords: false,
        }
    }
}

impl StandardAnalyzer {
    /// Analyzer with stemming and stopword removal enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Disable stemming (used by exact-match verticals such as URL
    /// tokens).
    pub fn without_stemming(mut self) -> Self {
        self.stem = false;
        self
    }

    /// Keep stopwords (used when indexing very short fields like
    /// titles, where every word carries signal).
    pub fn with_stopwords(mut self) -> Self {
        self.keep_stopwords = true;
        self
    }

    fn is_stopword(&self, term: &str) -> bool {
        !self.keep_stopwords && STOPWORDS.contains(&term)
    }
}

impl Analyzer for StandardAnalyzer {
    fn analyze_into(&self, text: &str, out: &mut Vec<Token>) {
        let mut scratch = TokenScratch::default();
        self.analyze_with(text, &mut scratch, &mut |term, position, start, end| {
            out.push(Token {
                term: term.to_string(),
                position,
                start,
                end,
            });
        });
    }

    fn analyze_with(
        &self,
        text: &str,
        scratch: &mut TokenScratch,
        sink: &mut dyn FnMut(&str, u32, usize, usize),
    ) {
        // Split-borrow the two staging buffers once so a term borrowed
        // from `lower` can coexist with a stem written into `stemmed`.
        let TokenScratch { lower, stemmed } = scratch;
        let mut position = 0u32;
        let mut start = None;
        // Iterate char boundaries manually so byte offsets are exact.
        for (idx, ch) in text.char_indices() {
            if ch.is_alphanumeric() {
                if start.is_none() {
                    start = Some(idx);
                }
            } else if let Some(s) = start.take() {
                self.emit(text, s, idx, &mut position, lower, stemmed, sink);
            }
        }
        if let Some(s) = start {
            self.emit(text, s, text.len(), &mut position, lower, stemmed, sink);
        }
    }
}

impl StandardAnalyzer {
    /// Normalize one raw word and hand it to `sink` unless it is
    /// filtered. Lowercasing borrows the input when no byte changes
    /// (the common case for generated corpora), byte-lowercases ASCII
    /// into the scratch buffer otherwise, and only falls back to the
    /// allocating Unicode `to_lowercase` for non-ASCII words that
    /// really contain uppercase letters. The stopword set is consulted
    /// on the borrowed lowercase form, so filtered words never
    /// materialize an owned term.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        text: &str,
        start: usize,
        end: usize,
        position: &mut u32,
        lower: &mut String,
        stemmed: &mut String,
        sink: &mut dyn FnMut(&str, u32, usize, usize),
    ) {
        let raw = &text[start..end];
        let pos = *position;
        *position += 1;
        let term: &str = if raw.is_ascii() {
            if raw.bytes().any(|b| b.is_ascii_uppercase()) {
                lower.clear();
                lower.push_str(raw);
                lower.as_mut_str().make_ascii_lowercase();
                lower
            } else {
                raw
            }
        } else if raw.chars().all(|c| {
            // Borrow when every char already maps to itself under
            // lowercasing (str::to_lowercase's final-sigma special
            // case only rewrites uppercase sigma, so char-by-char
            // identity implies string identity).
            let mut it = c.to_lowercase();
            it.next() == Some(c) && it.next().is_none()
        }) {
            raw
        } else {
            lower.clear();
            lower.push_str(&raw.to_lowercase());
            lower
        };
        if self.is_stopword(term) {
            return;
        }
        let term = if self.stem {
            stem_into(term, stemmed)
        } else {
            term
        };
        sink(term, pos, start, end);
    }
}

/// A light English suffix stripper (a deliberately small subset of
/// Porter). It only removes plural/participle suffixes when the stem
/// that remains is long enough to stay recognizable, which keeps it
/// safe for product catalogs ("rings" -> "ring" but "les" stays "les").
pub fn stem(term: &str) -> String {
    let mut buf = String::new();
    stem_into(term, &mut buf).to_string()
}

/// Allocation-lean stemming: every rewrite except `ies` -> `y` leaves a
/// prefix of the input, which is returned as a borrowed slice; the one
/// suffix substitution stages its result in `buf`. The returned `&str`
/// borrows from `term` or from `buf`.
pub fn stem_into<'a>(term: &'a str, buf: &'a mut String) -> &'a str {
    let t = term;
    let n = t.len();
    // Never stem very short tokens or tokens with digits.
    if n <= 3 || t.bytes().any(|b| b.is_ascii_digit()) {
        return t;
    }
    if let Some(base) = t.strip_suffix("ies") {
        if base.len() >= 2 {
            buf.clear();
            buf.push_str(base);
            buf.push('y');
            return buf;
        }
    }
    if t.ends_with("sses") {
        // Strip "sses", re-append "ss": a prefix of the original.
        return &t[..n - 2];
    }
    if let Some(base) = t.strip_suffix("ing") {
        if base.len() >= 3 {
            return undouble(base);
        }
    }
    if let Some(base) = t.strip_suffix("ed") {
        if base.len() >= 3 {
            return undouble(base);
        }
    }
    if let Some(base) = t.strip_suffix("es") {
        if base.len() >= 3 && (base.ends_with('x') || base.ends_with("sh") || base.ends_with("ch"))
        {
            return base;
        }
    }
    if t.ends_with('s') && !t.ends_with("ss") && !t.ends_with("us") && n >= 4 {
        return &t[..n - 1];
    }
    t
}

/// Collapse a doubled final consonant left behind by suffix stripping
/// ("stopp" -> "stop"), except for letters where doubling is natural.
fn undouble(base: &str) -> &str {
    let bytes = base.as_bytes();
    let n = bytes.len();
    if n >= 2 && bytes[n - 1] == bytes[n - 2] {
        let c = bytes[n - 1] as char;
        if c.is_ascii_alphabetic() && !matches!(c, 'l' | 's' | 'z' | 'e' | 'o') {
            return &base[..n - 1];
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(text: &str) -> Vec<String> {
        StandardAnalyzer::new()
            .analyze(text)
            .into_iter()
            .map(|t| t.term)
            .collect()
    }

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(terms("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn removes_stopwords_but_keeps_positions() {
        let toks = StandardAnalyzer::new().analyze("the space shooter");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].term, "space");
        // "the" occupied position 0.
        assert_eq!(toks[0].position, 1);
        assert_eq!(toks[1].position, 2);
    }

    #[test]
    fn stopwords_kept_when_configured() {
        let toks = StandardAnalyzer::new().with_stopwords().analyze("the game");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].term, "the");
    }

    #[test]
    fn byte_offsets_are_exact() {
        let text = "wine: Margaux";
        let toks = StandardAnalyzer::new().analyze(text);
        assert_eq!(&text[toks[0].start..toks[0].end], "wine");
        assert_eq!(&text[toks[1].start..toks[1].end], "Margaux");
    }

    #[test]
    fn unicode_words_survive() {
        let toks = StandardAnalyzer::new()
            .without_stemming()
            .analyze("Café Münch 2024");
        let ts: Vec<_> = toks.iter().map(|t| t.term.as_str()).collect();
        assert_eq!(ts, vec!["café", "münch", "2024"]);
    }

    #[test]
    fn stemming_examples() {
        assert_eq!(stem("games"), "game");
        assert_eq!(stem("stories"), "story");
        assert_eq!(stem("running"), "run");
        assert_eq!(stem("played"), "play");
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("glass"), "glass");
        assert_eq!(stem("les"), "les");
        assert_eq!(stem("us"), "us");
        assert_eq!(stem("2024s"), "2024s");
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(
            terms("top 10 games of 2009"),
            vec!["top", "10", "game", "2009"]
        );
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(terms("").is_empty());
        assert!(terms("   \t\n ").is_empty());
    }

    #[test]
    fn analyze_with_matches_analyze_into() {
        let texts = [
            "Hello, World!",
            "the space shooter",
            "Café MÜNCH Σοφία stories",
            "running stopped boxes classes glasses",
            "top 10 games of 2009",
            "",
        ];
        for an in [
            StandardAnalyzer::new(),
            StandardAnalyzer::new().without_stemming(),
            StandardAnalyzer::new().with_stopwords(),
        ] {
            let mut scratch = TokenScratch::default();
            for text in texts {
                let owned = an.analyze(text);
                let mut streamed = Vec::new();
                an.analyze_with(text, &mut scratch, &mut |term, position, start, end| {
                    streamed.push(Token {
                        term: term.to_string(),
                        position,
                        start,
                        end,
                    });
                });
                assert_eq!(owned, streamed, "{text:?}");
            }
        }
    }

    #[test]
    fn final_sigma_lowercasing_matches_std() {
        // str::to_lowercase's word-final sigma rule must survive the
        // allocation-lean path (uppercase Greek goes down the Unicode
        // fallback, already-lowercase Greek is borrowed unchanged).
        let an = StandardAnalyzer::new().without_stemming();
        assert_eq!(an.analyze("ΟΔΟΣ")[0].term, "ΟΔΟΣ".to_lowercase());
        assert_eq!(an.analyze("οδος")[0].term, "οδος");
    }

    #[test]
    fn stem_into_stages_only_suffix_substitutions() {
        let mut buf = String::new();
        assert_eq!(stem_into("games", &mut buf), "game");
        assert!(buf.is_empty(), "prefix rewrites never touch the buffer");
        assert_eq!(stem_into("classes", &mut buf), "class");
        assert_eq!(stem_into("running", &mut buf), "run");
        assert!(buf.is_empty());
        assert_eq!(stem_into("stories", &mut buf), "story");
        assert_eq!(buf, "story", "ies -> y is the one staged rewrite");
    }

    #[test]
    fn analyze_into_reuses_buffer() {
        let an = StandardAnalyzer::new();
        let mut buf = Vec::with_capacity(8);
        an.analyze_into("first pass", &mut buf);
        let first = buf.len();
        buf.clear();
        an.analyze_into("second pass here", &mut buf);
        assert!(!buf.is_empty() && first > 0);
    }
}
