//! The inverted index — a segment-lifecycle runtime.
//!
//! Writes land in a mutable in-memory segment (the *memtable*);
//! [`Index::seal`] freezes it into an immutable, compressed
//! [`SealedSegment`] with precomputed score-bound stats, and
//! [`Index::maintain`] drives tiered background merges that fold
//! adjacent sealed segments together, purging tombstoned documents and
//! rebuilding document frequencies and score stats as they go. Reads
//! union per-segment cursors back into one doc-ordered stream, so the
//! segment structure is invisible to query semantics.
//!
//! The lifecycle, in order:
//!
//! 1. **memtable** — [`Index::add`] appends to raw posting lists;
//!    documents are searchable immediately (or, under a
//!    near-real-time [`SegmentPolicy`], within the configured
//!    staleness window).
//! 2. **sealed** — [`Index::seal`] compresses the memtable's lists and
//!    computes per-list [`TermScoreStats`]; the segment never mutates
//!    again.
//! 3. **merged** — [`Index::maintain`] merges runs of same-tier
//!    adjacent segments (and rewrites tombstone-heavy ones), keeping
//!    the segment count — hence read amplification — flat while
//!    physically removing deleted documents.
//!
//! [`Index::optimize`] is the degenerate case: seal, then merge
//! everything into a single fully-compacted segment.

use crate::analysis::{Analyzer, StandardAnalyzer, TokenScratch};
use crate::fx::FxHashMap;
use crate::lexicon::{Lexicon, TermId};
use crate::postings::{ChainedCursor, CompressedPostings, PostingsCursor, NO_DOC};
use crate::segment::{ActiveSegment, SealedSegment, Segment, SegmentBuilder};
use crate::DocId;
use std::collections::hash_map::Entry;

/// Upper bound on worker threads for [`Index::build_parallel`],
/// mirroring the serving path's `MAX_FANOUT_WORKERS` cap.
pub const MAX_BUILD_WORKERS: usize = 16;

/// Default build parallelism: available cores, capped at
/// [`MAX_BUILD_WORKERS`].
pub fn default_build_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_BUILD_WORKERS)
}

/// Identifier of a registered field within one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(pub u16);

/// Static configuration of an [`Index`].
pub struct IndexConfig {
    /// Analyzer applied to every field at index and query time.
    pub analyzer: Box<dyn Analyzer>,
    /// Whether original field text is retained (needed for snippets
    /// when the caller does not keep documents elsewhere).
    pub store_text: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            analyzer: Box::new(StandardAnalyzer::new()),
            store_text: true,
        }
    }
}

impl std::fmt::Debug for IndexConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexConfig")
            .field("store_text", &self.store_text)
            .finish_non_exhaustive()
    }
}

/// Segment-lifecycle tuning knobs for one [`Index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPolicy {
    /// [`Index::maintain`] seals the memtable once it holds this many
    /// documents, regardless of elapsed time.
    pub memtable_max_docs: u32,
    /// [`Index::maintain`] seals a non-empty memtable once this much
    /// (virtual) time has passed since the last seal. Under a
    /// near-real-time policy this is the staleness bound: a document
    /// becomes searchable no later than one window after it was added,
    /// provided maintenance ticks run.
    pub staleness_window_ms: u64,
    /// Merge whenever this many adjacent sealed segments occupy the
    /// same size tier (clamped to at least 2).
    pub merge_fanin: usize,
    /// When `true`, memtable documents stay invisible to search until
    /// the next seal, so queries only ever touch immutable segments
    /// (bounded staleness instead of read-your-writes). The default is
    /// `false`: adds are searchable immediately.
    pub near_real_time: bool,
}

impl Default for SegmentPolicy {
    fn default() -> Self {
        SegmentPolicy {
            memtable_max_docs: 4096,
            staleness_window_ms: 1_000,
            merge_fanin: 4,
            near_real_time: false,
        }
    }
}

/// What one [`Index::maintain`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Whether the memtable was sealed into a new immutable segment.
    pub sealed: bool,
    /// Sealed segments folded together by this call's merge step
    /// (0 when no merge ran).
    pub merged_segments: usize,
    /// Tombstoned documents physically removed from posting lists.
    pub purged_docs: usize,
}

impl MaintenanceReport {
    /// Whether the call changed the segment structure at all.
    pub fn did_work(&self) -> bool {
        self.sealed || self.merged_segments > 0
    }
}

/// A document handed to [`Index::add`]: an ordered list of
/// `(field, text)` pairs. A field may appear more than once; the texts
/// are indexed as one logical field with position gaps.
#[derive(Debug, Default, Clone)]
pub struct Doc {
    fields: Vec<(FieldId, String)>,
}

impl Doc {
    /// Empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style field append.
    pub fn field(mut self, field: FieldId, text: impl Into<String>) -> Self {
        self.fields.push((field, text.into()));
        self
    }

    /// Borrow the field/text pairs.
    pub fn fields(&self) -> &[(FieldId, String)] {
        &self.fields
    }

    /// Consume the document, yielding its field/text pairs (the stored
    /// representation).
    pub(crate) fn into_fields(self) -> Vec<(FieldId, String)> {
        self.fields
    }
}

#[derive(Debug, Clone)]
struct FieldInfo {
    name: String,
    boost: f32,
    /// Sum of analyzed lengths of this field over live documents
    /// (deleting a document gives its length back immediately); used
    /// for the BM25 average length.
    total_len: u64,
}

/// Snapshot statistics for an [`Index`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Documents ever added (tombstoned ones included).
    pub total_docs: usize,
    /// Documents not deleted.
    pub live_docs: usize,
    /// Distinct terms.
    pub terms: usize,
    /// Distinct (term, field, segment) posting lists.
    pub posting_lists: usize,
    /// Approximate heap bytes held by posting lists.
    pub postings_bytes: usize,
    /// Whether every posting list lives in a sealed (compressed)
    /// segment — i.e. the memtable is empty.
    pub fully_compressed: bool,
    /// Immutable sealed segments currently serving reads.
    pub sealed_segments: usize,
    /// Documents sitting in the mutable memtable segment.
    pub memtable_docs: usize,
}

/// Per-`(term, field)` scoring ingredients precomputed when a segment
/// is sealed or merged, stored next to that segment's postings.
///
/// These are the two document-dependent quantities a BM25 score upper
/// bound needs: the score is monotonically increasing in term
/// frequency and decreasing in field length, so
/// `bm25(max_tf, min_len)` bounds every document's contribution. The
/// bound ingredients rather than a finished score are stored because
/// the final bound also depends on searcher-supplied parameters
/// (`k1`/`b`) and on index-wide statistics (`N`, average length) that
/// keep moving as documents are added; both are folded in at query
/// time so stored stats can never go stale in the unsafe direction.
/// At query time the per-segment ingredients are folded rank-safely
/// (max of `max_tf`, min of `min_len`) across segments — see
/// [`Index::term_score_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermScoreStats {
    /// Largest term frequency over documents in the posting list
    /// (tombstoned documents included — an overestimate is rank-safe).
    pub max_tf: u32,
    /// Smallest field length among documents in the posting list.
    pub min_len: u32,
}

/// An in-memory positional inverted index with field boosts, organized
/// as a segment-lifecycle runtime (see the module docs).
pub struct Index {
    config: IndexConfig,
    fields: Vec<FieldInfo>,
    field_by_name: FxHashMap<String, FieldId>,
    /// Global term interner shared by every segment.
    lexicon: Lexicon,
    /// Immutable segments in doc-range order.
    sealed: Vec<SealedSegment>,
    /// The mutable memtable segment receiving writes.
    active: ActiveSegment,
    /// Per field, per doc: analyzed token count (0 when the doc lacks
    /// the field, and zeroed again when the doc is tombstoned).
    field_len: Vec<Vec<u32>>,
    stored: Vec<Vec<(FieldId, String)>>,
    deleted: Vec<bool>,
    live_docs: usize,
    policy: SegmentPolicy,
    /// Virtual timestamp of the last seal, for the staleness window.
    last_seal_ms: u64,
    /// Docs below this id are visible to search under a near-real-time
    /// policy (advanced by [`Index::seal`]); ignored otherwise.
    visible_limit: u32,
    /// Reused analysis staging buffers for the incremental add path.
    scratch: TokenScratch,
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Index {
    /// Create an empty index with the default [`SegmentPolicy`].
    pub fn new(config: IndexConfig) -> Self {
        Self::with_policy(config, SegmentPolicy::default())
    }

    /// Create an empty index with an explicit segment policy.
    pub fn with_policy(config: IndexConfig, policy: SegmentPolicy) -> Self {
        Index {
            config,
            fields: Vec::new(),
            field_by_name: FxHashMap::default(),
            lexicon: Lexicon::new(),
            sealed: Vec::new(),
            active: ActiveSegment::starting_at(0),
            field_len: Vec::new(),
            stored: Vec::new(),
            deleted: Vec::new(),
            live_docs: 0,
            policy,
            last_seal_ms: 0,
            visible_limit: 0,
            scratch: TokenScratch::default(),
        }
    }

    /// The segment policy in effect.
    pub fn policy(&self) -> SegmentPolicy {
        self.policy
    }

    /// Replace the segment policy. Documents already added stay
    /// visible; only documents added afterwards wait for a seal when
    /// switching to a near-real-time policy.
    pub fn set_policy(&mut self, policy: SegmentPolicy) {
        self.policy = policy;
        self.visible_limit = self.total_docs() as u32;
    }

    /// Register a field with a score boost, or return the existing id
    /// if `name` was registered before (the boost is left unchanged in
    /// that case).
    pub fn register_field(&mut self, name: &str, boost: f32) -> FieldId {
        if let Some(&id) = self.field_by_name.get(name) {
            return id;
        }
        let id = FieldId(self.fields.len() as u16);
        self.fields.push(FieldInfo {
            name: name.to_string(),
            boost,
            total_len: 0,
        });
        self.field_by_name.insert(name.to_string(), id);
        self.field_len.push(vec![0; self.deleted.len()]);
        id
    }

    /// Look up a field id by name.
    pub fn field_id(&self, name: &str) -> Option<FieldId> {
        self.field_by_name.get(name).copied()
    }

    /// Name of a registered field.
    pub fn field_name(&self, field: FieldId) -> &str {
        &self.fields[field.0 as usize].name
    }

    /// Boost of a registered field.
    pub fn field_boost(&self, field: FieldId) -> f32 {
        self.fields[field.0 as usize].boost
    }

    /// All registered fields in id order.
    pub fn field_ids(&self) -> impl Iterator<Item = FieldId> + '_ {
        (0..self.fields.len()).map(|i| FieldId(i as u16))
    }

    /// Add a document to the memtable segment, returning its id.
    pub fn add(&mut self, doc: Doc) -> DocId {
        let id = DocId(self.deleted.len() as u32);
        debug_assert_eq!(id.0, self.active.base + self.active.docs);
        self.deleted.push(false);
        self.live_docs += 1;
        for lens in &mut self.field_len {
            lens.push(0);
        }
        // Split the borrow so the token sink can mutate the lexicon and
        // memtable while the analyzer (behind `config`) stays shared.
        let Index {
            config,
            fields,
            lexicon,
            active,
            field_len,
            scratch,
            ..
        } = self;
        active.docs += 1;
        // Group occurrences per field so repeated fields concatenate.
        for (field, text) in doc.fields() {
            let field = *field;
            assert!(
                (field.0 as usize) < fields.len(),
                "field {} not registered with this index",
                field.0
            );
            let base = field_len[field.0 as usize][id.as_usize()];
            let mut last_pos = None;
            config
                .analyzer
                .analyze_with(text, scratch, &mut |term, pos, _start, _end| {
                    last_pos = Some(pos);
                    let term = lexicon.intern(term);
                    active
                        .postings
                        .entry((term, field))
                        .or_default()
                        .push_occurrence(id, base + pos);
                });
            let added = last_pos.map(|p| p + 1).unwrap_or(0);
            field_len[field.0 as usize][id.as_usize()] += added;
            fields[field.0 as usize].total_len += added as u64;
        }
        if self.config.store_text {
            self.stored.push(doc.fields);
        } else {
            self.stored.push(Vec::new());
        }
        id
    }

    /// Add a batch of documents using up to `threads` worker threads,
    /// returning their ids in batch order.
    ///
    /// The batch is partitioned into contiguous chunks, each built into
    /// an independent [`Segment`] on its own scoped thread (private
    /// lexicon and postings — the hot loop takes no locks), and the
    /// segments are folded back in chunk order by a deterministic merge
    /// into the memtable. The result is **bit-identical** to calling
    /// [`Index::add`] on each document in order: same doc ids, same
    /// term ids, same postings bytes after [`Index::optimize`] — see
    /// the differential property tests. `threads` is clamped to `1..=`
    /// [`MAX_BUILD_WORKERS`]; with one thread (or one document) the
    /// build degenerates to the sequential path.
    pub fn build_parallel(&mut self, docs: Vec<Doc>, threads: usize) -> Vec<DocId> {
        let n = docs.len();
        let first = self.deleted.len() as u32;
        let workers = threads.clamp(1, MAX_BUILD_WORKERS).min(n.max(1));
        if workers <= 1 {
            return docs.into_iter().map(|d| self.add(d)).collect();
        }
        let chunk_size = n.div_ceil(workers);
        // Carve the batch into owned contiguous chunks, back to front so
        // each split_off is cheap.
        let mut docs = docs;
        let mut parts: Vec<Vec<Doc>> = Vec::with_capacity(workers);
        for i in (0..workers).rev() {
            let start = (i * chunk_size).min(docs.len());
            parts.push(docs.split_off(start));
        }
        parts.reverse();
        let analyzer = self.config.analyzer.as_ref();
        let store_text = self.config.store_text;
        let num_fields = self.fields.len();
        let segments: Vec<Segment> = std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .enumerate()
                .map(|(i, part)| {
                    let base = first + (i * chunk_size) as u32;
                    s.spawn(move || {
                        let mut builder =
                            SegmentBuilder::new(analyzer, store_text, num_fields, base);
                        for doc in part {
                            builder.add(doc);
                        }
                        builder.finish()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(seg) => seg,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for seg in segments {
            self.merge_builder_segment(seg);
        }
        (0..n as u32).map(|i| DocId(first + i)).collect()
    }

    /// Fold one finished build segment into the memtable. Called in
    /// chunk order; determinism of the merged representation relies on
    /// iterating the segment's terms in local-id (first-encounter)
    /// order and fields in id order — never on hash-map iteration
    /// order.
    fn merge_builder_segment(&mut self, seg: Segment) {
        let Segment {
            lexicon,
            mut postings,
            field_len,
            total_len,
            stored,
            docs,
        } = seg;
        // Append-if-absent interning of the segment lexicon in local-id
        // order reproduces sequential first-encounter term ids.
        let mut remap: Vec<TermId> = Vec::with_capacity(lexicon.len());
        for (_, term) in lexicon.iter() {
            remap.push(self.lexicon.intern(term));
        }
        for (local, &global) in remap.iter().enumerate() {
            let local_id = TermId(local as u32);
            for f in 0..self.fields.len() {
                let field = FieldId(f as u16);
                let Some(list) = postings.remove(&(local_id, field)) else {
                    continue;
                };
                match self.active.postings.entry((global, field)) {
                    Entry::Vacant(slot) => {
                        slot.insert(list);
                    }
                    Entry::Occupied(mut slot) => {
                        slot.get_mut().append(list);
                    }
                }
            }
        }
        for (f, lens) in field_len.into_iter().enumerate() {
            self.field_len[f].extend(lens);
            self.fields[f].total_len += total_len[f];
        }
        self.stored.extend(stored);
        self.deleted
            .resize(self.deleted.len() + docs as usize, false);
        self.live_docs += docs as usize;
        self.active.docs += docs;
    }

    /// Tombstone a document. Returns `false` if it was already deleted
    /// or the id is unknown.
    ///
    /// The posting entries stay in place until a merge purges them
    /// (deleted documents keep contributing to document frequencies
    /// until then — the usual tombstone-until-merge trade-off), but the
    /// document's per-field lengths and stored text are reclaimed
    /// immediately, so BM25 average lengths track the live corpus.
    pub fn delete(&mut self, doc: DocId) -> bool {
        match self.deleted.get_mut(doc.as_usize()) {
            Some(flag) if !*flag => {
                *flag = true;
                self.live_docs -= 1;
                for (f, lens) in self.field_len.iter_mut().enumerate() {
                    let len = std::mem::take(&mut lens[doc.as_usize()]);
                    self.fields[f].total_len -= len as u64;
                }
                if let Some(slot) = self.stored.get_mut(doc.as_usize()) {
                    *slot = Vec::new();
                }
                true
            }
            _ => false,
        }
    }

    /// Replace a live document in one step: tombstone `doc` and add
    /// `replacement` under a fresh id (the datastore refresh path
    /// uses this). Returns the new id, or `None` when `doc` is unknown
    /// or already deleted — nothing is added in that case.
    pub fn update(&mut self, doc: DocId, replacement: Doc) -> Option<DocId> {
        if !self.delete(doc) {
            return None;
        }
        Some(self.add(replacement))
    }

    /// Whether a document is tombstoned (unknown ids read as deleted).
    pub fn is_deleted(&self, doc: DocId) -> bool {
        self.deleted.get(doc.as_usize()).copied().unwrap_or(true)
    }

    /// Whether a document is visible to search. Always `true` outside
    /// near-real-time mode; under an NRT policy, memtable documents
    /// stay hidden until the next seal.
    #[inline]
    pub fn is_visible(&self, doc: DocId) -> bool {
        !self.policy.near_real_time || doc.0 < self.visible_limit
    }

    /// Number of live (non-deleted) documents.
    pub fn live_docs(&self) -> usize {
        self.live_docs
    }

    /// Number of documents ever added.
    pub fn total_docs(&self) -> usize {
        self.deleted.len()
    }

    /// Freeze the memtable into an immutable sealed segment:
    /// compress its posting lists, compute per-list score-bound stats,
    /// and open a fresh empty memtable. Returns `false` (and creates
    /// no segment) when the memtable holds no postings. Under a
    /// near-real-time policy this is also the moment pending documents
    /// become searchable.
    pub fn seal(&mut self) -> bool {
        self.visible_limit = self.total_docs() as u32;
        if self.active.postings.is_empty() {
            // Nothing indexed since the last seal (documents that
            // analyze to zero tokens leave no postings); just advance
            // the memtable's doc range.
            self.active = ActiveSegment::starting_at(self.total_docs() as u32);
            return false;
        }
        let next = ActiveSegment::starting_at(self.total_docs() as u32);
        let memtable = std::mem::replace(&mut self.active, next);
        let mut postings = FxHashMap::default();
        postings.reserve(memtable.postings.len());
        for (key, list) in memtable.postings {
            postings.insert(key, CompressedPostings::encode(&list));
        }
        let stats = Self::compute_stats(&self.field_len, &postings);
        self.sealed.push(SealedSegment {
            base: memtable.base,
            docs: memtable.docs,
            purged: 0,
            postings,
            stats,
        });
        true
    }

    /// One bounded maintenance step, driven by the caller's (virtual)
    /// clock: seal the memtable when it is over the size cap or older
    /// than the staleness window, then perform at most one tiered
    /// merge. Deterministic given the same schedule of calls, so
    /// replay/chaos harnesses reproduce segment layouts exactly.
    pub fn maintain(&mut self, now_ms: u64) -> MaintenanceReport {
        let mut report = MaintenanceReport::default();
        let overdue = now_ms.saturating_sub(self.last_seal_ms) >= self.policy.staleness_window_ms;
        if self.active.docs >= self.policy.memtable_max_docs || (self.active.docs > 0 && overdue) {
            report.sealed = self.seal();
            self.last_seal_ms = now_ms;
        }
        if let Some((start, end)) = self.pick_merge_run() {
            report.merged_segments = end - start;
            report.purged_docs = self.merge_run(start, end);
        }
        report
    }

    /// Choose the next merge: the oldest run of `merge_fanin` adjacent
    /// segments sharing a size tier (log2 of covered doc range), or —
    /// when no tier run exists — the first segment whose pending
    /// tombstones outnumber its live range (rewriting it reclaims a
    /// majority of its postings).
    fn pick_merge_run(&self) -> Option<(usize, usize)> {
        let fanin = self.policy.merge_fanin.max(2);
        if self.sealed.len() >= fanin {
            let tier = |seg: &SealedSegment| 32 - seg.docs.max(1).leading_zeros();
            'outer: for start in 0..=self.sealed.len() - fanin {
                let t = tier(&self.sealed[start]);
                for seg in &self.sealed[start + 1..start + fanin] {
                    if tier(seg) != t {
                        continue 'outer;
                    }
                }
                return Some((start, start + fanin));
            }
        }
        for (i, seg) in self.sealed.iter().enumerate() {
            let dead = self.dead_in_range(seg.base, seg.docs);
            if dead > seg.purged && (dead - seg.purged) * 2 > seg.docs {
                return Some((i, i + 1));
            }
        }
        None
    }

    /// Tombstoned documents in a doc-id range.
    fn dead_in_range(&self, base: u32, docs: u32) -> u32 {
        self.deleted[base as usize..(base + docs) as usize]
            .iter()
            .filter(|&&d| d)
            .count() as u32
    }

    /// Fold sealed segments `start..end` (a run adjacent in doc order)
    /// into one, physically removing tombstoned documents and
    /// recomputing score stats over the survivors. Doc ids are never
    /// renumbered — purged docs simply leave holes. Returns the number
    /// of newly purged documents.
    fn merge_run(&mut self, start: usize, end: usize) -> usize {
        let run: Vec<SealedSegment> = self.sealed.drain(start..end).collect();
        let base = run.first().map_or(0, |s| s.base);
        let docs = run.last().map_or(base, |s| s.base + s.docs) - base;
        let deleted = &self.deleted;
        let mut merged: FxHashMap<(TermId, FieldId), crate::postings::PostingList> =
            FxHashMap::default();
        // Segments are processed in doc-range order, so per-key appends
        // stay doc-ordered without a merge heap.
        for seg in &run {
            for (&key, comp) in &seg.postings {
                let out = merged.entry(key).or_default();
                comp.for_each(|doc, positions| {
                    if !deleted[doc.as_usize()] {
                        for &p in positions {
                            out.push_occurrence(doc, p);
                        }
                    }
                });
            }
        }
        let mut postings = FxHashMap::default();
        postings.reserve(merged.len());
        for (key, list) in merged {
            if list.doc_count() > 0 {
                postings.insert(key, CompressedPostings::encode(&list));
            }
        }
        let stats = Self::compute_stats(&self.field_len, &postings);
        let dead = self.dead_in_range(base, docs);
        let already: u32 = run.iter().map(|s| s.purged).sum();
        self.sealed.insert(
            start,
            SealedSegment {
                base,
                docs,
                purged: dead,
                postings,
                stats,
            },
        );
        dead.saturating_sub(already) as usize
    }

    /// Compress every posting list and precompute score-bound stats by
    /// sealing the memtable and merging all sealed segments into one
    /// fully-compacted segment. Tombstoned documents are purged, so
    /// document frequencies, score stats, and spell-model popularity
    /// stop counting them — equivalent to a from-scratch rebuild of
    /// the live corpus (the differential tests prove bit-identical
    /// search results).
    pub fn optimize(&mut self) {
        self.seal();
        if !self.sealed.is_empty() {
            self.merge_run(0, self.sealed.len());
        }
    }

    /// Score-bound ingredients per posting list: walk each compressed
    /// list once, tracking the largest tf and the smallest *non-zero*
    /// field length (zero lengths are either pre-registration backfill
    /// or reclaimed tombstones; excluding them is rank-safe because
    /// every live document containing the term has length >= 1).
    fn compute_stats(
        field_len: &[Vec<u32>],
        postings: &FxHashMap<(TermId, FieldId), CompressedPostings>,
    ) -> FxHashMap<(TermId, FieldId), TermScoreStats> {
        let mut stats = FxHashMap::default();
        stats.reserve(postings.len());
        for (&(term, field), list) in postings {
            let lens = &field_len[field.0 as usize];
            let mut max_tf = 0u32;
            let mut min_len = u32::MAX;
            let mut cur = list.cursor();
            while cur.doc() != NO_DOC {
                max_tf = max_tf.max(cur.tf());
                let len = lens[cur.doc() as usize];
                if len > 0 {
                    min_len = min_len.min(len);
                }
                cur.next();
            }
            if max_tf > 0 {
                // All lengths zero can only happen on inconsistent
                // input; clamp to the smallest real length.
                let min_len = if min_len == u32::MAX { 1 } else { min_len };
                stats.insert((term, field), TermScoreStats { max_tf, min_len });
            }
        }
        stats
    }

    /// Score-bound ingredients for `(term, field)`, folded rank-safely
    /// across sealed segments (max of `max_tf`, min of `min_len`).
    /// Returns `None` when the memtable also holds postings for the
    /// key — fresh documents may raise `max_tf` or lower `min_len`, so
    /// the pruned executor must treat the term as unbounded
    /// (always-evaluated); this never affects correctness, only how
    /// much work pruning can skip.
    pub fn term_score_stats(&self, term: TermId, field: FieldId) -> Option<TermScoreStats> {
        let key = (term, field);
        if self.active.postings.contains_key(&key) {
            return None;
        }
        let mut folded: Option<TermScoreStats> = None;
        for seg in &self.sealed {
            let Some(s) = seg.stats.get(&key) else {
                continue;
            };
            folded = Some(match folded {
                None => *s,
                Some(f) => TermScoreStats {
                    max_tf: f.max_tf.max(s.max_tf),
                    min_len: f.min_len.min(s.min_len),
                },
            });
        }
        folded
    }

    /// Whether any segment holds postings for `(term, field)`.
    pub fn has_postings(&self, term: TermId, field: FieldId) -> bool {
        let key = (term, field);
        self.active.postings.contains_key(&key)
            || self.sealed.iter().any(|s| s.postings.contains_key(&key))
    }

    /// Open a doc-ordered cursor over the union of every segment's
    /// postings for `(term, field)`, or `None` when no document
    /// contains it. Single-segment lists return their cursor directly;
    /// multi-segment lists are chained (segments cover disjoint
    /// increasing doc ranges, so concatenation preserves doc order and
    /// `seek` can skip whole segments without decoding them).
    pub fn cursor(&self, term: TermId, field: FieldId) -> Option<PostingsCursor<'_>> {
        let key = (term, field);
        let mut parts: Vec<PostingsCursor<'_>> = Vec::new();
        for seg in &self.sealed {
            if let Some(c) = seg.postings.get(&key) {
                parts.push(PostingsCursor::Compressed(c.cursor()));
            }
        }
        if let Some(l) = self.active.postings.get(&key) {
            parts.push(PostingsCursor::Raw(l.cursor()));
        }
        match parts.len() {
            0 => None,
            1 => parts.pop(),
            _ => Some(PostingsCursor::Chained(ChainedCursor::new(parts))),
        }
    }

    /// Visit every `(doc, positions)` pair for `(term, field)` in
    /// global doc order, across all segments.
    pub fn for_each_posting(&self, term: TermId, field: FieldId, mut f: impl FnMut(DocId, &[u32])) {
        let key = (term, field);
        for seg in &self.sealed {
            if let Some(c) = seg.postings.get(&key) {
                c.for_each(&mut f);
            }
        }
        if let Some(l) = self.active.postings.get(&key) {
            for p in l.postings() {
                f(p.doc, &p.positions);
            }
        }
    }

    /// Document frequency of `(term, field)`, summed over segments
    /// (tombstoned docs count until a merge purges them).
    pub fn doc_freq(&self, term: TermId, field: FieldId) -> usize {
        let key = (term, field);
        let sealed: usize = self
            .sealed
            .iter()
            .filter_map(|s| s.postings.get(&key))
            .map(|c| c.doc_count())
            .sum();
        sealed + self.active.postings.get(&key).map_or(0, |l| l.doc_count())
    }

    /// The single compressed posting list for `(term, field)` when the
    /// index is fully compacted — one sealed segment, empty memtable —
    /// and `None` otherwise. The build-determinism tests use this to
    /// compare byte streams between construction paths.
    pub fn compacted_postings(&self, term: TermId, field: FieldId) -> Option<&CompressedPostings> {
        if !self.active.postings.is_empty() || self.sealed.len() > 1 {
            return None;
        }
        self.sealed.first()?.postings.get(&(term, field))
    }

    /// Analyzed length of `field` in `doc` (0 once `doc` is deleted).
    pub fn field_len(&self, doc: DocId, field: FieldId) -> u32 {
        self.field_len[field.0 as usize][doc.as_usize()]
    }

    /// Per-document analyzed lengths of `field`, indexed by doc id —
    /// the column backing [`Index::field_len`], exposed whole so the
    /// scoring loop resolves it once per scorer instead of twice per
    /// document.
    pub fn field_lens(&self, field: FieldId) -> &[u32] {
        &self.field_len[field.0 as usize]
    }

    /// Mean analyzed length of `field` over live documents.
    pub fn avg_field_len(&self, field: FieldId) -> f32 {
        let n = self.live_docs;
        if n == 0 {
            return 0.0;
        }
        self.fields[field.0 as usize].total_len as f32 / n as f32
    }

    /// Total analyzed token count of `field` across live documents —
    /// the exact integer numerator behind [`Index::avg_field_len`].
    /// Exposed so a scatter-gather deployment can fold corpus-wide
    /// statistics across document-partitioned shards without f32
    /// rounding (see [`crate::search::GlobalScoreStats`]).
    pub fn total_field_len(&self, field: FieldId) -> u64 {
        self.fields[field.0 as usize].total_len
    }

    /// Stored original text of `field` in `doc`, when
    /// [`IndexConfig::store_text`] is on. Repeated fields return the
    /// first occurrence; deleted documents return `None` (their text
    /// is reclaimed at delete time).
    pub fn stored_text(&self, doc: DocId, field: FieldId) -> Option<&str> {
        self.stored
            .get(doc.as_usize())?
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, t)| t.as_str())
    }

    /// The term lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// The analyzer used by this index (query parsing must reuse it).
    pub fn analyzer(&self) -> &dyn Analyzer {
        self.config.analyzer.as_ref()
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> IndexStats {
        let posting_lists = self.active.postings.len()
            + self.sealed.iter().map(|s| s.postings.len()).sum::<usize>();
        let postings_bytes = self
            .active
            .postings
            .values()
            .map(|l| l.heap_bytes())
            .sum::<usize>()
            + self
                .sealed
                .iter()
                .map(|s| s.postings_bytes())
                .sum::<usize>();
        IndexStats {
            total_docs: self.total_docs(),
            live_docs: self.live_docs,
            terms: self.lexicon.len(),
            posting_lists,
            postings_bytes,
            fully_compressed: posting_lists > 0 && self.active.postings.is_empty(),
            sealed_segments: self.sealed.len(),
            memtable_docs: self.active.docs as usize,
        }
    }

    /// Estimated heap footprint of the searchable state: packed
    /// posting streams plus their block directories (and raw memtable
    /// lists), the lexicon arena (term bytes, span table, hash table),
    /// and the stored text columns. A capacity-based estimate, not an
    /// allocator measurement — its job is tracking the relative cost
    /// of representations (the E-postings experiment asserts the
    /// bit-packed format lands under the varint baseline).
    pub fn bytes_estimate(&self) -> usize {
        let postings = self
            .active
            .postings
            .values()
            .map(|l| l.heap_bytes())
            .sum::<usize>()
            + self
                .sealed
                .iter()
                .flat_map(|s| s.postings.values())
                .map(|c| c.heap_bytes())
                .sum::<usize>();
        let stored = self
            .stored
            .iter()
            .map(|fields| {
                fields.capacity() * std::mem::size_of::<(FieldId, String)>()
                    + fields.iter().map(|(_, t)| t.capacity()).sum::<usize>()
            })
            .sum::<usize>();
        postings + self.lexicon.heap_bytes() + stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::search::Searcher;

    fn small_index() -> (Index, FieldId, FieldId) {
        let mut idx = Index::new(IndexConfig::default());
        let title = idx.register_field("title", 2.0);
        let body = idx.register_field("body", 1.0);
        idx.add(
            Doc::new()
                .field(title, "Galactic Raiders")
                .field(body, "a fast space shooter with lasers"),
        );
        idx.add(
            Doc::new()
                .field(title, "Farm Story")
                .field(body, "calm farming and crops"),
        );
        idx.add(
            Doc::new()
                .field(title, "Space Trader")
                .field(body, "trade goods across space stations"),
        );
        (idx, title, body)
    }

    #[test]
    fn add_assigns_dense_ids() {
        let (idx, _, _) = small_index();
        assert_eq!(idx.total_docs(), 3);
        assert_eq!(idx.live_docs(), 3);
    }

    #[test]
    fn field_registration_is_idempotent() {
        let mut idx = Index::new(IndexConfig::default());
        let a = idx.register_field("title", 2.0);
        let b = idx.register_field("title", 9.0);
        assert_eq!(a, b);
        assert_eq!(idx.field_boost(a), 2.0);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let (idx, _, body) = small_index();
        let space = idx.lexicon().get("space").unwrap();
        assert_eq!(idx.doc_freq(space, body), 2);
    }

    #[test]
    fn field_lengths_track_analyzed_tokens() {
        let (idx, title, _) = small_index();
        assert_eq!(idx.field_len(DocId(0), title), 2);
        assert!(idx.avg_field_len(title) > 0.0);
    }

    #[test]
    fn delete_is_tombstone() {
        let (mut idx, _, _) = small_index();
        assert!(idx.delete(DocId(1)));
        assert!(!idx.delete(DocId(1)));
        assert!(idx.is_deleted(DocId(1)));
        assert_eq!(idx.live_docs(), 2);
        assert_eq!(idx.total_docs(), 3);
        // Deleted docs never surface in search results.
        let hits = Searcher::new(&idx).search(&Query::parse("farming"), 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn delete_reclaims_lengths_and_stored_text() {
        let (mut idx, title, body) = small_index();
        let before = idx.avg_field_len(body);
        idx.delete(DocId(0));
        assert_eq!(idx.field_len(DocId(0), body), 0);
        assert_eq!(idx.stored_text(DocId(0), title), None);
        // The average now reflects only the two live docs.
        assert_ne!(idx.avg_field_len(body), before);
    }

    #[test]
    fn unknown_doc_reads_as_deleted() {
        let (idx, _, _) = small_index();
        assert!(idx.is_deleted(DocId(999)));
    }

    #[test]
    fn optimize_compresses_and_preserves_results() {
        let (mut idx, _, _) = small_index();
        let before = Searcher::new(&idx).search(&Query::parse("space"), 10);
        idx.optimize();
        assert!(idx.stats().fully_compressed);
        assert_eq!(idx.stats().sealed_segments, 1);
        let after = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(
            before.iter().map(|h| h.doc).collect::<Vec<_>>(),
            after.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
    }

    #[test]
    fn add_after_optimize_lands_in_fresh_memtable() {
        let (mut idx, title, body) = small_index();
        idx.optimize();
        idx.add(
            Doc::new()
                .field(title, "Space Farm")
                .field(body, "space farming hybrid"),
        );
        // The sealed segment is untouched; the new doc is served from
        // the memtable and unioned in at query time.
        let s = idx.stats();
        assert_eq!(s.sealed_segments, 1);
        assert_eq!(s.memtable_docs, 1);
        assert!(!s.fully_compressed);
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn stored_text_roundtrip() {
        let (idx, title, _) = small_index();
        assert_eq!(idx.stored_text(DocId(0), title), Some("Galactic Raiders"));
        assert_eq!(idx.stored_text(DocId(99), title), None);
    }

    #[test]
    fn repeated_field_concatenates_with_position_gap() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "alpha beta").field(body, "gamma"));
        // Phrase across the two fragments must not match (positions gap).
        let hits = Searcher::new(&idx).search(&Query::parse("\"beta gamma\""), 10);
        // beta is at position 1, gamma at position 2 (base 2 + 0)... they
        // are adjacent here because base advances by token count; that is
        // the documented concatenation semantics.
        assert_eq!(hits.len(), 1);
        let hits = Searcher::new(&idx).search(&Query::parse("gamma"), 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn optimize_computes_term_score_stats() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space space space shooter"));
        idx.add(Doc::new().field(body, "space"));
        let space = idx.lexicon().get("space").unwrap();
        assert_eq!(idx.term_score_stats(space, body), None);
        idx.optimize();
        let s = idx.term_score_stats(space, body).unwrap();
        assert_eq!(s.max_tf, 3);
        assert_eq!(s.min_len, 1); // doc 1's body is one token long
        let shooter = idx.lexicon().get("shooter").unwrap();
        let s = idx.term_score_stats(shooter, body).unwrap();
        assert_eq!(s.max_tf, 1);
        assert_eq!(s.min_len, 4);
    }

    #[test]
    fn add_after_optimize_invalidates_touched_stats_only() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space shooter"));
        idx.optimize();
        let space = idx.lexicon().get("space").unwrap();
        let shooter = idx.lexicon().get("shooter").unwrap();
        assert!(idx.term_score_stats(space, body).is_some());
        idx.add(Doc::new().field(body, "space trader"));
        assert_eq!(idx.term_score_stats(space, body), None);
        assert!(idx.term_score_stats(shooter, body).is_some());
        // Re-optimizing restores stats over the merged list.
        idx.optimize();
        assert!(idx.term_score_stats(space, body).is_some());
    }

    #[test]
    fn delete_keeps_stats_as_safe_overestimate() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        let d0 = idx.add(Doc::new().field(body, "space space"));
        idx.add(Doc::new().field(body, "space and more words here"));
        idx.optimize();
        idx.delete(d0);
        let space = idx.lexicon().get("space").unwrap();
        let s = idx.term_score_stats(space, body).unwrap();
        // The tombstoned doc still backs max_tf/min_len: an upper bound
        // computed from it can only overestimate, never under-bound.
        assert_eq!(s.max_tf, 2);
        assert_eq!(s.min_len, 2);
    }

    #[test]
    fn merge_purges_tombstones_and_rebuilds_stats() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        let d0 = idx.add(Doc::new().field(body, "space space"));
        idx.add(Doc::new().field(body, "space and more words here"));
        idx.optimize();
        idx.delete(d0);
        let space = idx.lexicon().get("space").unwrap();
        assert_eq!(idx.doc_freq(space, body), 2, "df counts the tombstone");
        // Re-compacting purges the tombstone: df drops and the stats
        // are rebuilt from the surviving doc.
        idx.optimize();
        assert_eq!(idx.doc_freq(space, body), 1);
        let s = idx.term_score_stats(space, body).unwrap();
        assert_eq!(s.max_tf, 1);
        assert_eq!(s.min_len, 5);
    }

    #[test]
    fn purged_term_disappears_entirely() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        let d0 = idx.add(Doc::new().field(body, "unique sentinel"));
        idx.add(Doc::new().field(body, "other text"));
        idx.optimize();
        idx.delete(d0);
        idx.optimize();
        let uniq = idx.lexicon().get("uniqu").or(idx.lexicon().get("unique"));
        if let Some(t) = uniq {
            assert_eq!(idx.doc_freq(t, body), 0);
            assert!(!idx.has_postings(t, body));
            assert!(idx.cursor(t, body).is_none());
        }
    }

    #[test]
    fn stats_report_counts() {
        let (idx, _, _) = small_index();
        let s = idx.stats();
        assert_eq!(s.total_docs, 3);
        assert!(s.terms > 5);
        assert!(s.posting_lists >= s.terms); // each term in >=1 field
        assert!(!s.fully_compressed);
        assert_eq!(s.sealed_segments, 0);
        assert_eq!(s.memtable_docs, 3);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_field_panics() {
        let mut idx = Index::new(IndexConfig::default());
        idx.add(Doc::new().field(FieldId(3), "boom"));
    }

    #[test]
    fn optimize_min_len_excludes_zero_length_docs() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space shooter game"));
        idx.add(Doc::new().field(body, "space"));
        // Simulate the late-`register_field` backfill inconsistency:
        // doc 1's length reads as the zero backfill even though the doc
        // sits in the posting list.
        idx.field_len[0][1] = 0;
        idx.optimize();
        let space = idx.lexicon().get("space").unwrap();
        let s = idx.term_score_stats(space, body).unwrap();
        // The zero is excluded; the bound uses doc 0's real length
        // instead of collapsing to 0 (which would blow up the
        // length-normalized score bound).
        assert_eq!(s.min_len, 3);
    }

    #[test]
    fn optimize_min_len_clamps_when_all_lengths_missing() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space"));
        idx.field_len[0][0] = 0;
        idx.optimize();
        let space = idx.lexicon().get("space").unwrap();
        let s = idx.term_score_stats(space, body).unwrap();
        assert_eq!(s.min_len, 1);
    }

    #[test]
    fn late_registered_field_keeps_bounds_finite() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space shooter"));
        // Registering after documents exist backfills zeros for doc 0.
        let title = idx.register_field("title", 2.0);
        idx.add(Doc::new().field(title, "space trader").field(body, "space"));
        idx.optimize();
        let space = idx.lexicon().get("space").unwrap();
        let s = idx.term_score_stats(space, title).unwrap();
        assert_eq!(s.min_len, 2);
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn build_parallel_small_batch_matches_sequential() {
        let texts = [
            "galactic raiders in space",
            "calm farming and crops",
            "trade goods across space stations",
            "space shooter with lasers",
            "farm story crops again",
        ];
        let mut seq = Index::new(IndexConfig::default());
        let mut par = Index::new(IndexConfig::default());
        let sb = seq.register_field("body", 1.0);
        let pb = par.register_field("body", 1.0);
        for t in &texts {
            seq.add(Doc::new().field(sb, *t));
        }
        let ids = par.build_parallel(texts.iter().map(|t| Doc::new().field(pb, *t)).collect(), 3);
        assert_eq!(ids, (0..5).map(DocId).collect::<Vec<_>>());
        seq.optimize();
        par.optimize();
        assert_eq!(seq.stats(), par.stats());
        for q in ["space", "crops", "\"space stations\""] {
            let a = Searcher::new(&seq).search(&Query::parse(q), 10);
            let b = Searcher::new(&par).search(&Query::parse(q), 10);
            assert_eq!(
                a.iter()
                    .map(|h| (h.doc, h.score.to_bits()))
                    .collect::<Vec<_>>(),
                b.iter()
                    .map(|h| (h.doc, h.score.to_bits()))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn build_parallel_appends_to_existing_index() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space shooter"));
        idx.optimize();
        let ids = idx.build_parallel(
            vec![
                Doc::new().field(body, "space farm"),
                Doc::new().field(body, "space trader"),
            ],
            2,
        );
        assert_eq!(ids, vec![DocId(1), DocId(2)]);
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 3);
        // Stats touched by the batch are masked by the memtable, not
        // left stale.
        let space = idx.lexicon().get("space").unwrap();
        assert_eq!(idx.term_score_stats(space, body), None);
    }

    #[test]
    fn update_replaces_document_under_fresh_id() {
        let (mut idx, title, body) = small_index();
        let new_id = idx
            .update(
                DocId(1),
                Doc::new()
                    .field(title, "Farm Story Deluxe")
                    .field(body, "expanded farming with orchards"),
            )
            .unwrap();
        assert_eq!(new_id, DocId(3));
        assert!(idx.is_deleted(DocId(1)));
        assert_eq!(idx.live_docs(), 3);
        let hits = Searcher::new(&idx).search(&Query::parse("orchards"), 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, new_id);
        // The old version no longer matches anything.
        assert!(Searcher::new(&idx)
            .search(&Query::parse("calm"), 10)
            .is_empty());
    }

    #[test]
    fn update_of_deleted_or_unknown_doc_is_rejected() {
        let (mut idx, _, body) = small_index();
        idx.delete(DocId(0));
        assert_eq!(idx.update(DocId(0), Doc::new().field(body, "nope")), None);
        assert_eq!(idx.update(DocId(99), Doc::new().field(body, "nope")), None);
        assert_eq!(idx.total_docs(), 3, "rejected updates add nothing");
    }

    #[test]
    fn seal_freezes_memtable_and_reopens_empty() {
        let (mut idx, _, _) = small_index();
        assert!(idx.seal());
        let s = idx.stats();
        assert_eq!(s.sealed_segments, 1);
        assert_eq!(s.memtable_docs, 0);
        assert!(s.fully_compressed);
        // Sealing an empty memtable is a no-op.
        assert!(!idx.seal());
        assert_eq!(idx.stats().sealed_segments, 1);
        // Search is unchanged across the seal.
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn search_unions_memtable_and_multiple_sealed_segments() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space alpha"));
        idx.seal();
        idx.add(Doc::new().field(body, "space beta"));
        idx.seal();
        idx.add(Doc::new().field(body, "space gamma"));
        assert_eq!(idx.stats().sealed_segments, 2);
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn maintain_seals_on_size_and_staleness() {
        let mut idx = Index::with_policy(
            IndexConfig::default(),
            SegmentPolicy {
                memtable_max_docs: 2,
                staleness_window_ms: 100,
                ..SegmentPolicy::default()
            },
        );
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "one"));
        // Young and small: nothing happens.
        assert!(!idx.maintain(50).did_work());
        idx.add(Doc::new().field(body, "two"));
        // Size cap reached.
        let r = idx.maintain(60);
        assert!(r.sealed);
        assert_eq!(idx.stats().sealed_segments, 1);
        // Staleness window forces a seal even for a single doc.
        idx.add(Doc::new().field(body, "three"));
        assert!(!idx.maintain(100).sealed, "window measured from last seal");
        assert!(idx.maintain(160).sealed);
        assert_eq!(idx.stats().sealed_segments, 2);
    }

    #[test]
    fn maintain_merges_same_tier_runs() {
        let mut idx = Index::with_policy(
            IndexConfig::default(),
            SegmentPolicy {
                memtable_max_docs: 1,
                staleness_window_ms: u64::MAX,
                merge_fanin: 3,
                near_real_time: false,
            },
        );
        let body = idx.register_field("body", 1.0);
        let mut now = 0u64;
        for i in 0..3 {
            idx.add(Doc::new().field(body, format!("doc number {i} space")));
            now += 10;
            idx.maintain(now);
        }
        // Three one-doc segments share a tier; the third maintain call
        // merged them into one.
        let s = idx.stats();
        assert_eq!(s.sealed_segments, 1);
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn maintain_compacts_tombstone_heavy_segments() {
        let mut idx = Index::with_policy(
            IndexConfig::default(),
            SegmentPolicy {
                memtable_max_docs: 4,
                staleness_window_ms: u64::MAX,
                merge_fanin: 4,
                near_real_time: false,
            },
        );
        let body = idx.register_field("body", 1.0);
        let ids: Vec<DocId> = (0..4)
            .map(|i| idx.add(Doc::new().field(body, format!("space doc {i}"))))
            .collect();
        idx.maintain(10); // seals the 4-doc memtable
        assert_eq!(idx.stats().sealed_segments, 1);
        let space = idx.lexicon().get("space").unwrap();
        idx.delete(ids[0]);
        idx.delete(ids[1]);
        idx.delete(ids[2]);
        assert_eq!(idx.doc_freq(space, body), 4, "tombstones linger");
        let r = idx.maintain(20);
        assert_eq!(r.merged_segments, 1);
        assert_eq!(r.purged_docs, 3);
        assert_eq!(idx.doc_freq(space, body), 1);
        // A second tick finds no pending garbage and does nothing.
        assert!(!idx.maintain(30).did_work());
    }

    #[test]
    fn near_real_time_hides_memtable_until_seal() {
        let mut idx = Index::with_policy(
            IndexConfig::default(),
            SegmentPolicy {
                near_real_time: true,
                ..SegmentPolicy::default()
            },
        );
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "hidden until sealed"));
        assert!(Searcher::new(&idx)
            .search(&Query::parse("hidden"), 10)
            .is_empty());
        idx.seal();
        let hits = Searcher::new(&idx).search(&Query::parse("hidden"), 10);
        assert_eq!(hits.len(), 1);
        // The next write is hidden again; sealed docs stay visible.
        idx.add(Doc::new().field(body, "hidden again"));
        assert_eq!(
            Searcher::new(&idx)
                .search(&Query::parse("hidden"), 10)
                .len(),
            1
        );
    }

    #[test]
    fn maintain_is_deterministic_for_a_fixed_schedule() {
        let run = || {
            let mut idx = Index::with_policy(
                IndexConfig::default(),
                SegmentPolicy {
                    memtable_max_docs: 3,
                    staleness_window_ms: 40,
                    merge_fanin: 2,
                    near_real_time: false,
                },
            );
            let body = idx.register_field("body", 1.0);
            let mut reports = Vec::new();
            for i in 0..20u32 {
                idx.add(Doc::new().field(body, format!("space doc {i} word{}", i % 5)));
                if i % 3 == 0 {
                    idx.delete(DocId(i / 2));
                }
                reports.push(idx.maintain(u64::from(i) * 17));
            }
            (reports, idx.stats())
        };
        let (ra, sa) = run();
        let (rb, sb) = run();
        assert_eq!(ra, rb);
        assert_eq!(sa, sb);
    }
}
