//! The inverted index.
//!
//! Supports incremental [`Index::add`] at any time and tombstone
//! [`Index::delete`]; [`Index::optimize`] freezes posting lists into the
//! compressed representation (further adds transparently re-expand the
//! affected lists).

use crate::analysis::{Analyzer, StandardAnalyzer, TokenScratch};
use crate::fx::FxHashMap;
use crate::lexicon::{Lexicon, TermId};
use crate::postings::{CompressedPostings, PostingList, Postings};
use crate::segment::{Segment, SegmentBuilder};
use crate::DocId;
use std::collections::hash_map::Entry;

/// Upper bound on worker threads for [`Index::build_parallel`],
/// mirroring the serving path's `MAX_FANOUT_WORKERS` cap.
pub const MAX_BUILD_WORKERS: usize = 16;

/// Default build parallelism: available cores, capped at
/// [`MAX_BUILD_WORKERS`].
pub fn default_build_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_BUILD_WORKERS)
}

/// Identifier of a registered field within one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(pub u16);

/// Static configuration of an [`Index`].
pub struct IndexConfig {
    /// Analyzer applied to every field at index and query time.
    pub analyzer: Box<dyn Analyzer>,
    /// Whether original field text is retained (needed for snippets
    /// when the caller does not keep documents elsewhere).
    pub store_text: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            analyzer: Box::new(StandardAnalyzer::new()),
            store_text: true,
        }
    }
}

impl std::fmt::Debug for IndexConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexConfig")
            .field("store_text", &self.store_text)
            .finish_non_exhaustive()
    }
}

/// A document handed to [`Index::add`]: an ordered list of
/// `(field, text)` pairs. A field may appear more than once; the texts
/// are indexed as one logical field with position gaps.
#[derive(Debug, Default, Clone)]
pub struct Doc {
    fields: Vec<(FieldId, String)>,
}

impl Doc {
    /// Empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style field append.
    pub fn field(mut self, field: FieldId, text: impl Into<String>) -> Self {
        self.fields.push((field, text.into()));
        self
    }

    /// Borrow the field/text pairs.
    pub fn fields(&self) -> &[(FieldId, String)] {
        &self.fields
    }

    /// Consume the document, yielding its field/text pairs (the stored
    /// representation).
    pub(crate) fn into_fields(self) -> Vec<(FieldId, String)> {
        self.fields
    }
}

#[derive(Debug, Clone)]
struct FieldInfo {
    name: String,
    boost: f32,
    /// Sum of analyzed lengths of this field over all (including
    /// deleted) documents; used for the BM25 average length.
    total_len: u64,
}

/// Snapshot statistics for an [`Index`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Documents ever added (tombstoned ones included).
    pub total_docs: usize,
    /// Documents not deleted.
    pub live_docs: usize,
    /// Distinct terms.
    pub terms: usize,
    /// Distinct (term, field) posting lists.
    pub posting_lists: usize,
    /// Approximate heap bytes held by posting lists.
    pub postings_bytes: usize,
    /// Whether [`Index::optimize`] has compressed every list.
    pub fully_compressed: bool,
}

/// Per-`(term, field)` scoring ingredients precomputed by
/// [`Index::optimize`], stored next to the postings.
///
/// These are the two document-dependent quantities a BM25 score upper
/// bound needs: the score is monotonically increasing in term
/// frequency and decreasing in field length, so
/// `bm25(max_tf, min_len)` bounds every document's contribution. The
/// bound ingredients rather than a finished score are stored because
/// the final bound also depends on searcher-supplied parameters
/// (`k1`/`b`) and on index-wide statistics (`N`, average length) that
/// keep moving as documents are added; both are folded in at query
/// time so stored stats can never go stale in the unsafe direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermScoreStats {
    /// Largest term frequency over documents in the posting list
    /// (tombstoned documents included — an overestimate is rank-safe).
    pub max_tf: u32,
    /// Smallest field length among documents in the posting list.
    pub min_len: u32,
}

/// An in-memory positional inverted index with field boosts.
pub struct Index {
    config: IndexConfig,
    fields: Vec<FieldInfo>,
    field_by_name: FxHashMap<String, FieldId>,
    lexicon: Lexicon,
    postings: FxHashMap<(TermId, FieldId), Postings>,
    /// Score-bound ingredients per posting list; populated by
    /// [`Index::optimize`], and entries are evicted whenever
    /// [`Index::add`] touches their list (a fresh document may raise
    /// `max_tf` or lower `min_len`, so stale stats would under-bound).
    score_stats: FxHashMap<(TermId, FieldId), TermScoreStats>,
    /// Per field, per doc: analyzed token count (0 when the doc lacks
    /// the field).
    field_len: Vec<Vec<u32>>,
    stored: Vec<Vec<(FieldId, String)>>,
    deleted: Vec<bool>,
    live_docs: usize,
    /// Reused analysis staging buffers for the incremental add path.
    scratch: TokenScratch,
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Index {
    /// Create an empty index.
    pub fn new(config: IndexConfig) -> Self {
        Index {
            config,
            fields: Vec::new(),
            field_by_name: FxHashMap::default(),
            lexicon: Lexicon::new(),
            postings: FxHashMap::default(),
            score_stats: FxHashMap::default(),
            field_len: Vec::new(),
            stored: Vec::new(),
            deleted: Vec::new(),
            live_docs: 0,
            scratch: TokenScratch::default(),
        }
    }

    /// Register a field with a score boost, or return the existing id
    /// if `name` was registered before (the boost is left unchanged in
    /// that case).
    pub fn register_field(&mut self, name: &str, boost: f32) -> FieldId {
        if let Some(&id) = self.field_by_name.get(name) {
            return id;
        }
        let id = FieldId(self.fields.len() as u16);
        self.fields.push(FieldInfo {
            name: name.to_string(),
            boost,
            total_len: 0,
        });
        self.field_by_name.insert(name.to_string(), id);
        self.field_len.push(vec![0; self.deleted.len()]);
        id
    }

    /// Look up a field id by name.
    pub fn field_id(&self, name: &str) -> Option<FieldId> {
        self.field_by_name.get(name).copied()
    }

    /// Name of a registered field.
    pub fn field_name(&self, field: FieldId) -> &str {
        &self.fields[field.0 as usize].name
    }

    /// Boost of a registered field.
    pub fn field_boost(&self, field: FieldId) -> f32 {
        self.fields[field.0 as usize].boost
    }

    /// All registered fields in id order.
    pub fn field_ids(&self) -> impl Iterator<Item = FieldId> + '_ {
        (0..self.fields.len()).map(|i| FieldId(i as u16))
    }

    /// Add a document, returning its id.
    pub fn add(&mut self, doc: Doc) -> DocId {
        let id = DocId(self.deleted.len() as u32);
        self.deleted.push(false);
        self.live_docs += 1;
        for lens in &mut self.field_len {
            lens.push(0);
        }
        // Split the borrow so the token sink can mutate the lexicon and
        // postings while the analyzer (behind `config`) stays shared.
        let Index {
            config,
            fields,
            lexicon,
            postings,
            score_stats,
            field_len,
            scratch,
            ..
        } = self;
        // Group occurrences per field so repeated fields concatenate.
        for (field, text) in doc.fields() {
            let field = *field;
            assert!(
                (field.0 as usize) < fields.len(),
                "field {} not registered with this index",
                field.0
            );
            let base = field_len[field.0 as usize][id.as_usize()];
            let mut last_pos = None;
            config
                .analyzer
                .analyze_with(text, scratch, &mut |term, pos, _start, _end| {
                    last_pos = Some(pos);
                    let term = lexicon.intern(term);
                    if !score_stats.is_empty() {
                        score_stats.remove(&(term, field));
                    }
                    let list = postings
                        .entry((term, field))
                        .or_insert_with(|| Postings::Raw(PostingList::new()));
                    let raw = match list {
                        Postings::Raw(l) => l,
                        Postings::Compressed(c) => {
                            // Re-expand a compressed list for the append.
                            *list = Postings::Raw(c.decode());
                            match list {
                                Postings::Raw(l) => l,
                                Postings::Compressed(_) => unreachable!(),
                            }
                        }
                    };
                    raw.push_occurrence(id, base + pos);
                });
            let added = last_pos.map(|p| p + 1).unwrap_or(0);
            field_len[field.0 as usize][id.as_usize()] += added;
            fields[field.0 as usize].total_len += added as u64;
        }
        if self.config.store_text {
            self.stored.push(doc.fields);
        } else {
            self.stored.push(Vec::new());
        }
        id
    }

    /// Add a batch of documents using up to `threads` worker threads,
    /// returning their ids in batch order.
    ///
    /// The batch is partitioned into contiguous chunks, each built into
    /// an independent [`Segment`] on its own scoped thread (private
    /// lexicon and postings — the hot loop takes no locks), and the
    /// segments are folded back in chunk order by a deterministic
    /// merge. The result is **bit-identical** to calling [`Index::add`]
    /// on each document in order: same doc ids, same term ids, same
    /// postings bytes after [`Index::optimize`] — see the differential
    /// property tests. `threads` is clamped to `1..=`
    /// [`MAX_BUILD_WORKERS`]; with one thread (or one document) the
    /// build degenerates to the sequential path.
    pub fn build_parallel(&mut self, docs: Vec<Doc>, threads: usize) -> Vec<DocId> {
        let n = docs.len();
        let first = self.deleted.len() as u32;
        let workers = threads.clamp(1, MAX_BUILD_WORKERS).min(n.max(1));
        if workers <= 1 {
            return docs.into_iter().map(|d| self.add(d)).collect();
        }
        let chunk_size = n.div_ceil(workers);
        // Carve the batch into owned contiguous chunks, back to front so
        // each split_off is cheap.
        let mut docs = docs;
        let mut parts: Vec<Vec<Doc>> = Vec::with_capacity(workers);
        for i in (0..workers).rev() {
            let start = (i * chunk_size).min(docs.len());
            parts.push(docs.split_off(start));
        }
        parts.reverse();
        let analyzer = self.config.analyzer.as_ref();
        let store_text = self.config.store_text;
        let num_fields = self.fields.len();
        let segments: Vec<Segment> = std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .enumerate()
                .map(|(i, part)| {
                    let base = first + (i * chunk_size) as u32;
                    s.spawn(move || {
                        let mut builder =
                            SegmentBuilder::new(analyzer, store_text, num_fields, base);
                        for doc in part {
                            builder.add(doc);
                        }
                        builder.finish()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(seg) => seg,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for seg in segments {
            self.merge_segment(seg);
        }
        (0..n as u32).map(|i| DocId(first + i)).collect()
    }

    /// Fold one finished segment into the index. Called in chunk order;
    /// determinism of the merged representation relies on iterating the
    /// segment's terms in local-id (first-encounter) order and fields in
    /// id order — never on hash-map iteration order.
    fn merge_segment(&mut self, seg: Segment) {
        let Segment {
            lexicon,
            mut postings,
            field_len,
            total_len,
            stored,
            docs,
        } = seg;
        // Append-if-absent interning of the segment lexicon in local-id
        // order reproduces sequential first-encounter term ids.
        let mut remap: Vec<TermId> = Vec::with_capacity(lexicon.len());
        for (_, term) in lexicon.iter() {
            remap.push(self.lexicon.intern(term));
        }
        for (local, &global) in remap.iter().enumerate() {
            let local_id = TermId(local as u32);
            for f in 0..self.fields.len() {
                let field = FieldId(f as u16);
                let Some(list) = postings.remove(&(local_id, field)) else {
                    continue;
                };
                if !self.score_stats.is_empty() {
                    // The list grows: stale bounds could under-estimate.
                    self.score_stats.remove(&(global, field));
                }
                match self.postings.entry((global, field)) {
                    Entry::Vacant(slot) => {
                        slot.insert(Postings::Raw(list));
                    }
                    Entry::Occupied(mut slot) => {
                        let merged = slot.get_mut();
                        let raw = match merged {
                            Postings::Raw(l) => l,
                            Postings::Compressed(c) => {
                                *merged = Postings::Raw(c.decode());
                                match merged {
                                    Postings::Raw(l) => l,
                                    Postings::Compressed(_) => unreachable!(),
                                }
                            }
                        };
                        raw.append(list);
                    }
                }
            }
        }
        for (f, lens) in field_len.into_iter().enumerate() {
            self.field_len[f].extend(lens);
            self.fields[f].total_len += total_len[f];
        }
        self.stored.extend(stored);
        self.deleted
            .resize(self.deleted.len() + docs as usize, false);
        self.live_docs += docs as usize;
    }

    /// Tombstone a document. Returns `false` if it was already deleted
    /// or the id is unknown.
    ///
    /// Deleted documents keep contributing to document frequencies and
    /// average lengths until a rebuild; this is the usual
    /// tombstone-until-merge trade-off and is documented behaviour.
    pub fn delete(&mut self, doc: DocId) -> bool {
        match self.deleted.get_mut(doc.as_usize()) {
            Some(flag) if !*flag => {
                *flag = true;
                self.live_docs -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether a document is tombstoned (unknown ids read as deleted).
    pub fn is_deleted(&self, doc: DocId) -> bool {
        self.deleted.get(doc.as_usize()).copied().unwrap_or(true)
    }

    /// Number of live (non-deleted) documents.
    pub fn live_docs(&self) -> usize {
        self.live_docs
    }

    /// Number of documents ever added.
    pub fn total_docs(&self) -> usize {
        self.deleted.len()
    }

    /// Compress every posting list (E3 ablation; also the steady state
    /// for the static synthetic web corpus) and precompute the
    /// per-`(term, field)` score-bound ingredients ([`TermScoreStats`])
    /// the pruned top-k executor uses.
    pub fn optimize(&mut self) {
        for list in self.postings.values_mut() {
            if let Postings::Raw(raw) = list {
                *list = Postings::Compressed(CompressedPostings::encode(raw));
            }
        }
        let mut stats = FxHashMap::default();
        stats.reserve(self.postings.len());
        for (&(term, field), list) in &self.postings {
            let lens = &self.field_len[field.0 as usize];
            let mut max_tf = 0u32;
            let mut min_len = u32::MAX;
            let mut cur = list.cursor();
            while cur.doc() != crate::postings::NO_DOC {
                max_tf = max_tf.max(cur.tf());
                // A zero length means the doc predates the field's
                // registration (register_field backfills zeros); using
                // it as a real length would zero the min-len bound
                // ingredient. Docs that actually contain the term have
                // length >= 1, so excluding zeros stays rank-safe.
                let len = lens[cur.doc() as usize];
                if len > 0 {
                    min_len = min_len.min(len);
                }
                cur.next();
            }
            if max_tf > 0 {
                // All lengths zero can only happen on inconsistent
                // input; clamp to the smallest real length.
                let min_len = if min_len == u32::MAX { 1 } else { min_len };
                stats.insert((term, field), TermScoreStats { max_tf, min_len });
            }
        }
        self.score_stats = stats;
    }

    /// Score-bound ingredients for `(term, field)`, when
    /// [`Index::optimize`] has computed them and no later
    /// [`Index::add`] has invalidated the entry. `None` simply means
    /// the pruned executor must treat the term as unbounded
    /// (always-evaluated); it never affects correctness.
    pub fn term_score_stats(&self, term: TermId, field: FieldId) -> Option<TermScoreStats> {
        self.score_stats.get(&(term, field)).copied()
    }

    /// Posting list for `(term, field)` if any document contains it.
    pub fn postings(&self, term: TermId, field: FieldId) -> Option<&Postings> {
        self.postings.get(&(term, field))
    }

    /// Document frequency of `(term, field)`.
    pub fn doc_freq(&self, term: TermId, field: FieldId) -> usize {
        self.postings(term, field).map_or(0, |p| p.doc_count())
    }

    /// Analyzed length of `field` in `doc`.
    pub fn field_len(&self, doc: DocId, field: FieldId) -> u32 {
        self.field_len[field.0 as usize][doc.as_usize()]
    }

    /// Mean analyzed length of `field` over all documents.
    pub fn avg_field_len(&self, field: FieldId) -> f32 {
        let n = self.total_docs();
        if n == 0 {
            return 0.0;
        }
        self.fields[field.0 as usize].total_len as f32 / n as f32
    }

    /// Stored original text of `field` in `doc`, when
    /// [`IndexConfig::store_text`] is on. Repeated fields return the
    /// first occurrence.
    pub fn stored_text(&self, doc: DocId, field: FieldId) -> Option<&str> {
        self.stored
            .get(doc.as_usize())?
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, t)| t.as_str())
    }

    /// The term lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// The analyzer used by this index (query parsing must reuse it).
    pub fn analyzer(&self) -> &dyn Analyzer {
        self.config.analyzer.as_ref()
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> IndexStats {
        let postings_bytes = self.postings.values().map(|p| p.heap_bytes()).sum();
        let fully_compressed = !self.postings.is_empty()
            && self
                .postings
                .values()
                .all(|p| matches!(p, Postings::Compressed(_)));
        IndexStats {
            total_docs: self.total_docs(),
            live_docs: self.live_docs,
            terms: self.lexicon.len(),
            posting_lists: self.postings.len(),
            postings_bytes,
            fully_compressed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::search::Searcher;

    fn small_index() -> (Index, FieldId, FieldId) {
        let mut idx = Index::new(IndexConfig::default());
        let title = idx.register_field("title", 2.0);
        let body = idx.register_field("body", 1.0);
        idx.add(
            Doc::new()
                .field(title, "Galactic Raiders")
                .field(body, "a fast space shooter with lasers"),
        );
        idx.add(
            Doc::new()
                .field(title, "Farm Story")
                .field(body, "calm farming and crops"),
        );
        idx.add(
            Doc::new()
                .field(title, "Space Trader")
                .field(body, "trade goods across space stations"),
        );
        (idx, title, body)
    }

    #[test]
    fn add_assigns_dense_ids() {
        let (idx, _, _) = small_index();
        assert_eq!(idx.total_docs(), 3);
        assert_eq!(idx.live_docs(), 3);
    }

    #[test]
    fn field_registration_is_idempotent() {
        let mut idx = Index::new(IndexConfig::default());
        let a = idx.register_field("title", 2.0);
        let b = idx.register_field("title", 9.0);
        assert_eq!(a, b);
        assert_eq!(idx.field_boost(a), 2.0);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let (idx, _, body) = small_index();
        let space = idx.lexicon().get("space").unwrap();
        assert_eq!(idx.doc_freq(space, body), 2);
    }

    #[test]
    fn field_lengths_track_analyzed_tokens() {
        let (idx, title, _) = small_index();
        assert_eq!(idx.field_len(DocId(0), title), 2);
        assert!(idx.avg_field_len(title) > 0.0);
    }

    #[test]
    fn delete_is_tombstone() {
        let (mut idx, _, _) = small_index();
        assert!(idx.delete(DocId(1)));
        assert!(!idx.delete(DocId(1)));
        assert!(idx.is_deleted(DocId(1)));
        assert_eq!(idx.live_docs(), 2);
        assert_eq!(idx.total_docs(), 3);
        // Deleted docs never surface in search results.
        let hits = Searcher::new(&idx).search(&Query::parse("farming"), 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn unknown_doc_reads_as_deleted() {
        let (idx, _, _) = small_index();
        assert!(idx.is_deleted(DocId(999)));
    }

    #[test]
    fn optimize_compresses_and_preserves_results() {
        let (mut idx, _, _) = small_index();
        let before = Searcher::new(&idx).search(&Query::parse("space"), 10);
        idx.optimize();
        assert!(idx.stats().fully_compressed);
        let after = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(
            before.iter().map(|h| h.doc).collect::<Vec<_>>(),
            after.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
    }

    #[test]
    fn add_after_optimize_reexpands() {
        let (mut idx, title, body) = small_index();
        idx.optimize();
        idx.add(
            Doc::new()
                .field(title, "Space Farm")
                .field(body, "space farming hybrid"),
        );
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn stored_text_roundtrip() {
        let (idx, title, _) = small_index();
        assert_eq!(idx.stored_text(DocId(0), title), Some("Galactic Raiders"));
        assert_eq!(idx.stored_text(DocId(99), title), None);
    }

    #[test]
    fn repeated_field_concatenates_with_position_gap() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "alpha beta").field(body, "gamma"));
        // Phrase across the two fragments must not match (positions gap).
        let hits = Searcher::new(&idx).search(&Query::parse("\"beta gamma\""), 10);
        // beta is at position 1, gamma at position 2 (base 2 + 0)... they
        // are adjacent here because base advances by token count; that is
        // the documented concatenation semantics.
        assert_eq!(hits.len(), 1);
        let hits = Searcher::new(&idx).search(&Query::parse("gamma"), 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn optimize_computes_term_score_stats() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space space space shooter"));
        idx.add(Doc::new().field(body, "space"));
        let space = idx.lexicon().get("space").unwrap();
        assert_eq!(idx.term_score_stats(space, body), None);
        idx.optimize();
        let s = idx.term_score_stats(space, body).unwrap();
        assert_eq!(s.max_tf, 3);
        assert_eq!(s.min_len, 1); // doc 1's body is one token long
        let shooter = idx.lexicon().get("shooter").unwrap();
        let s = idx.term_score_stats(shooter, body).unwrap();
        assert_eq!(s.max_tf, 1);
        assert_eq!(s.min_len, 4);
    }

    #[test]
    fn add_after_optimize_invalidates_touched_stats_only() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space shooter"));
        idx.optimize();
        let space = idx.lexicon().get("space").unwrap();
        let shooter = idx.lexicon().get("shooter").unwrap();
        assert!(idx.term_score_stats(space, body).is_some());
        idx.add(Doc::new().field(body, "space trader"));
        assert_eq!(idx.term_score_stats(space, body), None);
        assert!(idx.term_score_stats(shooter, body).is_some());
        // Re-optimizing restores stats over the merged list.
        idx.optimize();
        assert!(idx.term_score_stats(space, body).is_some());
    }

    #[test]
    fn delete_keeps_stats_as_safe_overestimate() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        let d0 = idx.add(Doc::new().field(body, "space space"));
        idx.add(Doc::new().field(body, "space and more words here"));
        idx.optimize();
        idx.delete(d0);
        let space = idx.lexicon().get("space").unwrap();
        let s = idx.term_score_stats(space, body).unwrap();
        // The tombstoned doc still backs max_tf/min_len: an upper bound
        // computed from it can only overestimate, never under-bound.
        assert_eq!(s.max_tf, 2);
        assert_eq!(s.min_len, 2);
    }

    #[test]
    fn stats_report_counts() {
        let (idx, _, _) = small_index();
        let s = idx.stats();
        assert_eq!(s.total_docs, 3);
        assert!(s.terms > 5);
        assert!(s.posting_lists >= s.terms); // each term in >=1 field
        assert!(!s.fully_compressed);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_field_panics() {
        let mut idx = Index::new(IndexConfig::default());
        idx.add(Doc::new().field(FieldId(3), "boom"));
    }

    #[test]
    fn optimize_min_len_excludes_zero_length_docs() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space shooter game"));
        idx.add(Doc::new().field(body, "space"));
        // Simulate the late-`register_field` backfill inconsistency:
        // doc 1's length reads as the zero backfill even though the doc
        // sits in the posting list.
        idx.field_len[0][1] = 0;
        idx.optimize();
        let space = idx.lexicon().get("space").unwrap();
        let s = idx.term_score_stats(space, body).unwrap();
        // The zero is excluded; the bound uses doc 0's real length
        // instead of collapsing to 0 (which would blow up the
        // length-normalized score bound).
        assert_eq!(s.min_len, 3);
    }

    #[test]
    fn optimize_min_len_clamps_when_all_lengths_missing() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space"));
        idx.field_len[0][0] = 0;
        idx.optimize();
        let space = idx.lexicon().get("space").unwrap();
        let s = idx.term_score_stats(space, body).unwrap();
        assert_eq!(s.min_len, 1);
    }

    #[test]
    fn late_registered_field_keeps_bounds_finite() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space shooter"));
        // Registering after documents exist backfills zeros for doc 0.
        let title = idx.register_field("title", 2.0);
        idx.add(Doc::new().field(title, "space trader").field(body, "space"));
        idx.optimize();
        let space = idx.lexicon().get("space").unwrap();
        let s = idx.term_score_stats(space, title).unwrap();
        assert_eq!(s.min_len, 2);
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn build_parallel_small_batch_matches_sequential() {
        let texts = [
            "galactic raiders in space",
            "calm farming and crops",
            "trade goods across space stations",
            "space shooter with lasers",
            "farm story crops again",
        ];
        let mut seq = Index::new(IndexConfig::default());
        let mut par = Index::new(IndexConfig::default());
        let sb = seq.register_field("body", 1.0);
        let pb = par.register_field("body", 1.0);
        for t in &texts {
            seq.add(Doc::new().field(sb, *t));
        }
        let ids = par.build_parallel(texts.iter().map(|t| Doc::new().field(pb, *t)).collect(), 3);
        assert_eq!(ids, (0..5).map(DocId).collect::<Vec<_>>());
        seq.optimize();
        par.optimize();
        assert_eq!(seq.stats(), par.stats());
        for q in ["space", "crops", "\"space stations\""] {
            let a = Searcher::new(&seq).search(&Query::parse(q), 10);
            let b = Searcher::new(&par).search(&Query::parse(q), 10);
            assert_eq!(
                a.iter()
                    .map(|h| (h.doc, h.score.to_bits()))
                    .collect::<Vec<_>>(),
                b.iter()
                    .map(|h| (h.doc, h.score.to_bits()))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn build_parallel_appends_to_existing_index() {
        let mut idx = Index::new(IndexConfig::default());
        let body = idx.register_field("body", 1.0);
        idx.add(Doc::new().field(body, "space shooter"));
        idx.optimize();
        let ids = idx.build_parallel(
            vec![
                Doc::new().field(body, "space farm"),
                Doc::new().field(body, "space trader"),
            ],
            2,
        );
        assert_eq!(ids, vec![DocId(1), DocId(2)]);
        let hits = Searcher::new(&idx).search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 3);
        // Stats touched by the merge were evicted, not left stale.
        let space = idx.lexicon().get("space").unwrap();
        assert_eq!(idx.term_score_stats(space, body), None);
    }
}
