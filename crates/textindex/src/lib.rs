//! # symphony-text
//!
//! Full-text indexing and retrieval substrate for the Symphony
//! reproduction.
//!
//! Symphony (Shafer, Agrawal, Lauw; ICDE 2010) runs on top of a general
//! web search engine and also provides "storage and indexing" for the
//! application designer's proprietary data. Both sides need the same
//! machinery: an analyzer, an inverted index, a ranking function, and
//! snippet generation. This crate provides that machinery; the
//! `symphony-web` crate builds the simulated web search engine on top of
//! it, and `symphony-store` uses it to make proprietary tables
//! searchable.
//!
//! ## Overview
//!
//! * [`analysis`] — tokenization, stopwords, light stemming.
//! * [`lexicon`] — term interning.
//! * [`postings`] — positional posting lists, raw and varint-compressed.
//! * [`index`] — the inverted index, organized as a segment-lifecycle
//!   runtime: incremental add/update into a mutable memtable, tombstone
//!   delete, sealed immutable segments, tiered merges.
//! * [`query`] — the user-facing query language (`term`, `"a phrase"`,
//!   `+must`, `-not`, `field:term`).
//! * [`search`] — BM25 top-k execution.
//! * [`snippet`] — best-window snippet extraction with highlighting.
//! * [`spell`] — "did you mean" suggestions from the lexicon.
//!
//! ## Quick example
//!
//! ```
//! use symphony_text::{Index, IndexConfig, Doc, search::Searcher, query::Query};
//!
//! let mut index = Index::new(IndexConfig::default());
//! let title = index.register_field("title", 2.0);
//! let body = index.register_field("body", 1.0);
//! index.add(Doc::new().field(title, "Galactic Raiders").field(body, "a space shooter game"));
//! index.add(Doc::new().field(title, "Farm Story").field(body, "a calm farming game"));
//!
//! let hits = Searcher::new(&index).search(&Query::parse("space shooter"), 10);
//! assert_eq!(hits.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod docset;
pub mod fx;
pub mod index;
pub mod lexicon;
pub mod postings;
pub mod query;
pub mod search;
mod segment;
pub mod snippet;
pub mod spell;

pub use analysis::{Analyzer, StandardAnalyzer, Token, TokenScratch};
pub use docset::{DocSet, FilterCursor};
pub use index::{
    default_build_threads, Doc, FieldId, Index, IndexConfig, IndexStats, MaintenanceReport,
    SegmentPolicy, TermScoreStats, MAX_BUILD_WORKERS,
};
pub use lexicon::{Lexicon, TermId};
pub use query::Query;
pub use search::{GlobalScoreStats, ScoreMode, SearchHit, Searcher};
pub use spell::SpellSuggester;

/// Identifier of a document inside one [`Index`].
///
/// Doc ids are dense, assigned in insertion order, and never reused;
/// deletion is a tombstone (see [`Index::delete`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

impl DocId {
    /// The doc id as a usize, for indexing into per-document arrays.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}
