//! Property tests for the overload-protection primitives.
//!
//! Three laws the hosting layer leans on:
//!
//! 1. A token bucket's level can never exceed its burst capacity, no
//!    matter how acquires and arbitrary virtual-clock jumps interleave.
//! 2. Refill is monotone and split-invariant: observing the clock at
//!    `t` then `t + d` banks exactly as many tokens as observing
//!    `t + d` directly, and stale (backwards) observations change
//!    nothing.
//! 3. Deficit-round-robin fairness: over any window in which two
//!    tenants stay backlogged, each tenant's completed share tracks
//!    its weight share to within one quantum-round per tenant.

use proptest::prelude::*;
use symphony_core::admission::{DeficitScheduler, TokenBucket};

const MILLI: u64 = 1000;

#[derive(Debug, Clone)]
enum BucketOp {
    /// Try to take one token at the current virtual time.
    Acquire,
    /// Jump the clock forward.
    Advance(u64),
    /// Observe the clock without taking (the hosting layer's refill on
    /// stat reads).
    Refill,
    /// Hand the bucket a stale timestamp (a racing thread that loaded
    /// the clock before a concurrent advance).
    StaleRefill(u64),
}

fn bucket_ops() -> impl Strategy<Value = Vec<BucketOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(BucketOp::Acquire),
            (1u64..5_000).prop_map(BucketOp::Advance),
            Just(BucketOp::Refill),
            (0u64..2_000).prop_map(BucketOp::StaleRefill),
        ],
        1..120,
    )
}

proptest! {
    /// Law 1: the level is bounded by burst × 1000 milli-tokens at
    /// every step of any op interleaving, including huge clock jumps.
    #[test]
    fn bucket_level_never_exceeds_burst(
        rate in 1u32..2_000,
        burst in 1u32..50,
        ops in bucket_ops(),
    ) {
        let mut bucket = TokenBucket::new(rate, burst, 0);
        let mut now = 0u64;
        let cap = burst as u64 * MILLI;
        prop_assert!(bucket.level_milli() <= cap);
        for op in ops {
            match op {
                BucketOp::Acquire => { bucket.try_acquire(now); }
                BucketOp::Advance(d) => { now += d; bucket.refill(now); }
                BucketOp::Refill => bucket.refill(now),
                BucketOp::StaleRefill(back) => bucket.refill(now.saturating_sub(back)),
            }
            prop_assert!(
                bucket.level_milli() <= cap,
                "level {} exceeds burst cap {}",
                bucket.level_milli(),
                cap,
            );
        }
    }

    /// Law 2: refill is split-invariant — crediting an elapsed window
    /// in arbitrarily many pieces banks exactly the same milli-tokens
    /// as crediting it at once — and interleaved stale observations
    /// are no-ops.
    #[test]
    fn refill_is_monotone_and_split_invariant(
        rate in 1u32..2_000,
        burst in 1u32..50,
        drains in 0u32..20,
        splits in prop::collection::vec(1u64..500, 1..30),
    ) {
        let mut split_bucket = TokenBucket::new(rate, burst, 0);
        let mut whole_bucket = TokenBucket::new(rate, burst, 0);
        for _ in 0..drains {
            split_bucket.try_acquire(0);
            whole_bucket.try_acquire(0);
        }
        let mut now = 0u64;
        let mut last_level = split_bucket.level_milli();
        for d in &splits {
            now += d;
            split_bucket.refill(now);
            prop_assert!(
                split_bucket.level_milli() >= last_level,
                "refill went backwards: {} -> {}",
                last_level,
                split_bucket.level_milli(),
            );
            last_level = split_bucket.level_milli();
            // A stale observation between splits must change nothing.
            split_bucket.refill(now / 2);
            prop_assert_eq!(split_bucket.level_milli(), last_level);
        }
        whole_bucket.refill(now);
        prop_assert_eq!(split_bucket.level_milli(), whole_bucket.level_milli());
    }

    /// Law 3: with both tenants backlogged throughout, completed work
    /// splits by weight to within one quantum-round of slack per
    /// tenant.
    #[test]
    fn backlogged_drr_share_tracks_weight(
        weight_a in 1u32..16,
        weight_b in 1u32..16,
        quantum in 1u64..8,
        picks in 64usize..2_000,
    ) {
        let mut drr = DeficitScheduler::new(quantum);
        let a = drr.register(weight_a);
        let b = drr.register(weight_b);
        // Backlogs deep enough that neither drains inside the window.
        drr.enqueue(a, picks as u64 + 1);
        drr.enqueue(b, picks as u64 + 1);
        for _ in 0..picks {
            prop_assert!(drr.next_tenant().is_some(), "both tenants stay backlogged");
        }
        let total_weight = (weight_a + weight_b) as f64;
        let expected_a = picks as f64 * weight_a as f64 / total_weight;
        // One quantum-round of slack: each round banks quantum × weight
        // credit, and a window can cut a round at any point.
        let slack = quantum as f64 * (weight_a + weight_b) as f64 + 1.0;
        let got_a = drr.completed(a) as f64;
        prop_assert!(
            (got_a - expected_a).abs() <= slack,
            "weight-{} tenant completed {} of {} picks, expected {} ± {}",
            weight_a,
            got_a,
            picks,
            expected_a,
            slack,
        );
        prop_assert_eq!(drr.completed(a) + drr.completed(b), picks as u64);
    }
}
