//! Property tests for the LRU+TTL result cache.
//!
//! A random interleaving of puts (default and per-entry TTL), gets,
//! clock advances, and purge sweeps is replayed against an independent
//! brute-force model; the cache must agree with the model on every
//! lookup, every counter, and on which entry sits at the LRU tail
//! (`peek_lru` — the victim the TinyLFU admission policy compares
//! candidates against). This pins the subtle interaction the hosting
//! layer depends on: recency order decides capacity evictions, while
//! the TTL decides validity, and the two interleave freely on the
//! platform's virtual clock.

use proptest::prelude::*;
use symphony_core::cache::LruTtlCache;

#[derive(Debug, Clone)]
enum Op {
    /// Insert `key` (value = running op index) at the current time
    /// with the cache's default TTL.
    Put(u8),
    /// Insert `key` with an explicit per-entry TTL (degraded responses
    /// ride this path with a short fuse).
    PutTtl(u8, u64),
    /// Look up `key` at the current time.
    Get(u8),
    /// Advance the virtual clock.
    Advance(u64),
    /// Eagerly sweep expired entries.
    Purge,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Put),
        (0u8..8, 1u64..120).prop_map(|(k, t)| Op::PutTtl(k, t)),
        (0u8..8).prop_map(Op::Get),
        (1u64..80).prop_map(Op::Advance),
        Just(Op::Purge),
    ]
}

/// Brute-force reference: a flat list, no clever bookkeeping.
struct Model {
    entries: Vec<(u8, u64, u64, u64)>, // key, value, expires_at, last_used_tick
    capacity: usize,
    ttl: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    expired: u64,
}

impl Model {
    fn new(capacity: usize, ttl: u64) -> Model {
        Model {
            entries: Vec::new(),
            capacity,
            ttl,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            expired: 0,
        }
    }

    fn get(&mut self, key: u8, now: u64) -> Option<u64> {
        self.tick += 1;
        let Some(i) = self.entries.iter().position(|e| e.0 == key) else {
            self.misses += 1;
            return None;
        };
        if now > self.entries[i].2 {
            self.entries.remove(i);
            self.misses += 1;
            self.expired += 1;
            return None;
        }
        self.hits += 1;
        self.entries[i].3 = self.tick;
        Some(self.entries[i].1)
    }

    fn put(&mut self, key: u8, value: u64, now: u64) {
        let ttl = self.ttl;
        self.put_ttl(key, value, now, ttl);
    }

    fn put_ttl(&mut self, key: u8, value: u64, now: u64, ttl: u64) {
        self.tick += 1;
        let exists = self.entries.iter().any(|e| e.0 == key);
        if !exists && self.entries.len() >= self.capacity {
            // Least-recently-used goes first: recency (not insertion
            // time, not expiry) decides capacity evictions.
            if let Some(i) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.3)
                .map(|(i, _)| i)
            {
                self.entries.remove(i);
                self.evictions += 1;
            }
        }
        self.entries.retain(|e| e.0 != key);
        self.entries
            .push((key, value, now.saturating_add(ttl), self.tick));
    }

    fn purge(&mut self, now: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| now <= e.2);
        let dropped = before - self.entries.len();
        self.expired += dropped as u64;
        dropped
    }

    /// The key the cache's LRU tail must point at: least recently
    /// touched, regardless of expiry (expired entries stay resident
    /// until a lookup or sweep finds them).
    fn lru_victim(&self) -> Option<u8> {
        self.entries.iter().min_by_key(|e| e.3).map(|e| e.0)
    }
}

proptest! {
    #[test]
    fn cache_agrees_with_brute_force_model(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 1usize..6,
        ttl in 10u64..100,
    ) {
        let mut cache: LruTtlCache<u8, u64> = LruTtlCache::new(capacity, ttl);
        let mut model = Model::new(capacity, ttl);
        let mut now = 0u64;
        prop_assert_eq!(cache.ttl(), ttl);

        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Put(key) => {
                    cache.put(key, i as u64, now);
                    model.put(key, i as u64, now);
                }
                Op::PutTtl(key, entry_ttl) => {
                    cache.put_with_ttl(key, i as u64, now, entry_ttl);
                    model.put_ttl(key, i as u64, now, entry_ttl);
                }
                Op::Get(key) => {
                    prop_assert_eq!(
                        cache.get(&key, now).copied(),
                        model.get(key, now),
                        "lookup diverged at op {} (key {}, now {})", i, key, now
                    );
                }
                Op::Advance(ms) => now += ms,
                Op::Purge => {
                    prop_assert_eq!(cache.purge_expired(now), model.purge(now));
                }
            }
            // Standing invariants after every operation.
            prop_assert!(cache.len() <= capacity, "len exceeds capacity");
            prop_assert_eq!(cache.len(), model.entries.len());
            prop_assert_eq!(
                cache.peek_lru().copied(),
                model.lru_victim(),
                "LRU tail diverged at op {}", i
            );
            let rate = cache.stats().hit_rate();
            prop_assert!((0.0..=1.0).contains(&rate), "hit_rate {} out of range", rate);
        }

        let stats = cache.stats();
        prop_assert_eq!(stats.hits, model.hits);
        prop_assert_eq!(stats.misses, model.misses);
        prop_assert_eq!(stats.evictions, model.evictions);
        prop_assert_eq!(stats.expired, model.expired);
        prop_assert_eq!(stats.hits + stats.misses,
            ops.iter().filter(|o| matches!(o, Op::Get(_))).count() as u64);
    }

    /// Recency beats insertion order: a just-refreshed old entry
    /// survives an eviction that claims a newer-but-idle one, unless
    /// its TTL already lapsed.
    #[test]
    fn refreshed_entry_survives_eviction(advance in 0u64..120) {
        let ttl = 60u64;
        let mut cache: LruTtlCache<u8, u64> = LruTtlCache::new(2, ttl);
        cache.put(1, 10, 0);
        cache.put(2, 20, 5);
        let refreshed = cache.get(&1, advance).is_some(); // refresh key 1 (if still valid)
        cache.put(3, 30, advance); // capacity eviction
        if refreshed {
            // Key 2 was LRU, so key 1 must still be resident.
            prop_assert_eq!(cache.get(&1, advance), Some(&10));
            prop_assert_eq!(cache.get(&2, advance), None);
        } else {
            // Key 1 expired (advance > ttl): it was dropped by the
            // failed lookup, so the put never needed to evict key 2's
            // slot — but key 2 is itself past its TTL too.
            prop_assert!(advance > ttl);
            prop_assert_eq!(cache.get(&1, advance), None);
        }
        prop_assert_eq!(cache.get(&3, advance), Some(&30));
    }

    /// A short-TTL entry ages out on its own fuse while a sibling
    /// stored with the default TTL at the same instant stays valid —
    /// the hosting layer's degraded-response path in miniature.
    #[test]
    fn per_entry_ttl_is_independent_of_the_default(fuse in 1u64..50) {
        let mut cache: LruTtlCache<u8, u64> = LruTtlCache::new(4, 1_000);
        cache.put(1, 10, 0);
        cache.put_with_ttl(2, 20, 0, fuse);
        prop_assert_eq!(cache.get(&2, fuse), Some(&20)); // inclusive edge
        prop_assert_eq!(cache.get(&2, fuse + 1), None);
        prop_assert_eq!(cache.get(&1, fuse + 1), Some(&10));
    }
}
