//! LRU + TTL result cache.
//!
//! Hosted execution means Symphony pays for every query; community
//! verticals have head-heavy query distributions, so a small
//! per-application cache absorbs most of the load (experiment E2).
//! Time is the platform's *virtual* clock — nothing here reads wall
//! time.

use std::collections::HashMap;
use std::hash::Hash;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (absent or expired).
    pub misses: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Entries removed because their TTL lapsed (lazily on lookup or
    /// eagerly via [`LruTtlCache::purge_expired`]).
    pub expired: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    inserted_at: u64,
    last_used: u64,
}

/// An LRU cache with TTL on a caller-supplied clock.
#[derive(Debug)]
pub struct LruTtlCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, Entry<V>>,
    capacity: usize,
    ttl: u64,
    tick: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V> LruTtlCache<K, V> {
    /// Cache holding up to `capacity` entries, each valid for `ttl`
    /// clock units after insertion.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize, ttl: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruTtlCache {
            map: HashMap::with_capacity(capacity),
            capacity,
            ttl,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Look up `key` at time `now`. Expired entries count as misses
    /// and are removed.
    pub fn get(&mut self, key: &K, now: u64) -> Option<&V> {
        self.tick += 1;
        let expired = match self.map.get(key) {
            Some(e) => now.saturating_sub(e.inserted_at) > self.ttl,
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        if expired {
            self.map.remove(key);
            self.stats.misses += 1;
            self.stats.expired += 1;
            return None;
        }
        self.stats.hits += 1;
        let tick = self.tick;
        let e = self.map.get_mut(key).expect("checked above");
        e.last_used = tick;
        Some(&e.value)
    }

    /// Insert at time `now`, evicting the least-recently-used entry on
    /// overflow.
    pub fn put(&mut self, key: K, value: V, now: u64) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                inserted_at: now,
                last_used: self.tick,
            },
        );
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Remove every entry whose TTL has lapsed at time `now`,
    /// returning how many were dropped. Complements the lazy expiry in
    /// [`LruTtlCache::get`]: entries that are never looked up again
    /// would otherwise occupy capacity until evicted.
    pub fn purge_expired(&mut self, now: u64) -> usize {
        let ttl = self.ttl;
        let before = self.map.len();
        self.map
            .retain(|_, e| now.saturating_sub(e.inserted_at) <= ttl);
        let dropped = before - self.map.len();
        self.stats.expired += dropped as u64;
        dropped
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop everything (used when an app is republished).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(4, 100);
        assert_eq!(c.get(&"a", 0), None);
        c.put("a", 1, 0);
        assert_eq!(c.get(&"a", 10), Some(&1));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(4, 50);
        c.put("a", 1, 0);
        assert_eq!(c.get(&"a", 50), Some(&1), "at ttl boundary still valid");
        assert_eq!(c.get(&"a", 51), None, "past ttl expired");
        assert_eq!(c.len(), 0, "expired entry removed");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(2, 1000);
        c.put("a", 1, 0);
        c.put("b", 2, 0);
        c.get(&"a", 1); // a is now more recently used than b
        c.put("c", 3, 2);
        assert_eq!(c.get(&"b", 3), None, "b was LRU and evicted");
        assert_eq!(c.get(&"a", 3), Some(&1));
        assert_eq!(c.get(&"c", 3), Some(&3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(2, 1000);
        c.put("a", 1, 0);
        c.put("b", 2, 0);
        c.put("a", 9, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&"a", 2), Some(&9));
    }

    #[test]
    fn hit_rate() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(2, 1000);
        c.put("a", 1, 0);
        c.get(&"a", 1);
        c.get(&"b", 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn purge_expired_sweeps_only_stale_entries() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(8, 50);
        c.put("old1", 1, 0);
        c.put("old2", 2, 10);
        c.put("fresh", 3, 100);
        assert_eq!(c.purge_expired(120), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().expired, 2);
        assert_eq!(c.get(&"fresh", 121), Some(&3));
        // A second sweep at the same time finds nothing.
        assert_eq!(c.purge_expired(120), 0);
    }

    #[test]
    fn lazy_expiry_counts_in_stats() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(4, 50);
        c.put("a", 1, 0);
        assert_eq!(c.get(&"a", 51), None);
        assert_eq!(c.stats().expired, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn clear_empties() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(2, 1000);
        c.put("a", 1, 0);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: LruTtlCache<u32, u32> = LruTtlCache::new(0, 10);
    }
}
