//! LRU + TTL result cache.
//!
//! Hosted execution means Symphony pays for every query; community
//! verticals have head-heavy query distributions, so a small
//! per-application cache absorbs most of the load (experiment E2).
//! Time is the platform's *virtual* clock — nothing here reads wall
//! time.
//!
//! Recency is tracked with an intrusive doubly-linked list threaded
//! through a slab of nodes, so `get`, `put`, and capacity eviction are
//! all O(1) — the platform's L2 source cache (experiment E-cache)
//! holds thousands of entries per shard, where the former
//! scan-for-minimum eviction was O(n) per insert.

use std::collections::HashMap;
use std::hash::Hash;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (absent or expired).
    pub misses: u64,
    /// Lookups that coalesced onto an in-flight execution of the same
    /// key (reported by the shared source cache; the per-app response
    /// cache never coalesces, so it stays 0 there).
    pub coalesced: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Entries removed because their TTL lapsed (lazily on lookup or
    /// eagerly via [`LruTtlCache::purge_expired`]).
    pub expired: u64,
}

impl CacheStats {
    /// Fold `other` into `self` (cluster-wide stats sum per-shard
    /// counters; [`CacheStats::hit_rate`] over the sum is then
    /// traffic-weighted).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.evictions += other.evictions;
        self.expired += other.expired;
    }

    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sentinel slot index for "no node".
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    /// Virtual time past which the entry no longer serves (strictly
    /// greater ⇒ expired, matching `inserted_at + ttl < now`).
    expires_at: u64,
    prev: usize,
    next: usize,
}

/// An LRU cache with TTL on a caller-supplied clock.
///
/// Entries live in a slab (`Vec<Option<Node>>`) and recency order is
/// an intrusive doubly-linked list over slab indices: `head` is the
/// most recently used entry, `tail` the least. Every operation —
/// lookup, insert, capacity eviction — touches O(1) nodes.
#[derive(Debug)]
pub struct LruTtlCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    ttl: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V> LruTtlCache<K, V> {
    /// Cache holding up to `capacity` entries, each valid for `ttl`
    /// clock units after insertion.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize, ttl: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruTtlCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            ttl,
            stats: CacheStats::default(),
        }
    }

    /// The default TTL entries are inserted with via [`LruTtlCache::put`].
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    fn node(&self, slot: usize) -> &Node<K, V> {
        self.slab[slot].as_ref().expect("live slot")
    }

    fn node_mut(&mut self, slot: usize) -> &mut Node<K, V> {
        self.slab[slot].as_mut().expect("live slot")
    }

    /// Unlink `slot` from the recency list (it stays in the slab/map).
    fn detach(&mut self, slot: usize) {
        let (prev, next) = {
            let n = self.node(slot);
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.node_mut(n).prev = prev,
        }
    }

    /// Link `slot` at the head (most recently used) of the list.
    fn push_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(slot);
            n.prev = NIL;
            n.next = old_head;
        }
        match old_head {
            NIL => self.tail = slot,
            h => self.node_mut(h).prev = slot,
        }
        self.head = slot;
    }

    /// Remove `slot` entirely: list, map, and slab.
    fn remove_slot(&mut self, slot: usize) {
        self.detach(slot);
        let node = self.slab[slot].take().expect("live slot");
        self.map.remove(&node.key);
        self.free.push(slot);
    }

    /// Look up `key` at time `now`. Expired entries count as misses
    /// and are removed; a hit refreshes the entry's recency.
    pub fn get(&mut self, key: &K, now: u64) -> Option<&V> {
        let Some(&slot) = self.map.get(key) else {
            self.stats.misses += 1;
            return None;
        };
        if now > self.node(slot).expires_at {
            self.remove_slot(slot);
            self.stats.misses += 1;
            self.stats.expired += 1;
            return None;
        }
        self.detach(slot);
        self.push_front(slot);
        self.stats.hits += 1;
        Some(&self.node(slot).value)
    }

    /// Insert at time `now` with the cache-wide TTL, evicting the
    /// least-recently-used entry on overflow.
    pub fn put(&mut self, key: K, value: V, now: u64) {
        let ttl = self.ttl;
        self.put_with_ttl(key, value, now, ttl);
    }

    /// Insert at time `now` with a per-entry TTL override (degraded
    /// responses and negative entries get short lifetimes; see the
    /// hosting layer and the source cache).
    pub fn put_with_ttl(&mut self, key: K, value: V, now: u64, ttl: u64) {
        let expires_at = now.saturating_add(ttl);
        if let Some(&slot) = self.map.get(&key) {
            {
                let n = self.node_mut(slot);
                n.value = value;
                n.expires_at = expires_at;
            }
            self.detach(slot);
            self.push_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL, "non-empty cache has a tail");
            self.remove_slot(tail);
            self.stats.evictions += 1;
        }
        let node = Node {
            key: key.clone(),
            value,
            expires_at,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Some(node);
                s
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// The key next in line for capacity eviction (the least recently
    /// used entry), without touching recency or stats. Admission
    /// policies compare an insertion candidate against this victim.
    pub fn peek_lru(&self) -> Option<&K> {
        match self.tail {
            NIL => None,
            t => Some(&self.node(t).key),
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Remove every entry whose TTL has lapsed at time `now`,
    /// returning how many were dropped. Complements the lazy expiry in
    /// [`LruTtlCache::get`]: entries that are never looked up again
    /// would otherwise occupy capacity until evicted.
    pub fn purge_expired(&mut self, now: u64) -> usize {
        let mut dropped = 0usize;
        let mut cur = self.tail;
        while cur != NIL {
            let prev = self.node(cur).prev;
            if now > self.node(cur).expires_at {
                self.remove_slot(cur);
                dropped += 1;
            }
            cur = prev;
        }
        self.stats.expired += dropped as u64;
        dropped
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop everything (used when an app is republished).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(4, 100);
        assert_eq!(c.get(&"a", 0), None);
        c.put("a", 1, 0);
        assert_eq!(c.get(&"a", 10), Some(&1));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(4, 50);
        c.put("a", 1, 0);
        assert_eq!(c.get(&"a", 50), Some(&1), "at ttl boundary still valid");
        assert_eq!(c.get(&"a", 51), None, "past ttl expired");
        assert_eq!(c.len(), 0, "expired entry removed");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(2, 1000);
        c.put("a", 1, 0);
        c.put("b", 2, 0);
        c.get(&"a", 1); // a is now more recently used than b
        c.put("c", 3, 2);
        assert_eq!(c.get(&"b", 3), None, "b was LRU and evicted");
        assert_eq!(c.get(&"a", 3), Some(&1));
        assert_eq!(c.get(&"c", 3), Some(&3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(2, 1000);
        c.put("a", 1, 0);
        c.put("b", 2, 0);
        c.put("a", 9, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&"a", 2), Some(&9));
    }

    #[test]
    fn hit_rate() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(2, 1000);
        c.put("a", 1, 0);
        c.get(&"a", 1);
        c.get(&"b", 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn purge_expired_sweeps_only_stale_entries() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(8, 50);
        c.put("old1", 1, 0);
        c.put("old2", 2, 10);
        c.put("fresh", 3, 100);
        assert_eq!(c.purge_expired(120), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().expired, 2);
        assert_eq!(c.get(&"fresh", 121), Some(&3));
        // A second sweep at the same time finds nothing.
        assert_eq!(c.purge_expired(120), 0);
    }

    #[test]
    fn lazy_expiry_counts_in_stats() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(4, 50);
        c.put("a", 1, 0);
        assert_eq!(c.get(&"a", 51), None);
        assert_eq!(c.stats().expired, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn clear_empties() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(2, 1000);
        c.put("a", 1, 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.peek_lru(), None);
        // Reusable after clear.
        c.put("b", 2, 0);
        assert_eq!(c.get(&"b", 1), Some(&2));
    }

    #[test]
    fn per_entry_ttl_overrides_cache_ttl() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(4, 1_000);
        c.put_with_ttl("short", 1, 0, 10);
        c.put("long", 2, 0);
        assert_eq!(c.get(&"short", 10), Some(&1));
        assert_eq!(c.get(&"short", 11), None, "short TTL lapsed");
        assert_eq!(c.get(&"long", 11), Some(&2), "default TTL still live");
        // Re-putting with the default TTL refreshes the lifetime.
        c.put_with_ttl("short", 3, 20, 10);
        c.put("short", 4, 20);
        assert_eq!(c.get(&"short", 500), Some(&4));
    }

    #[test]
    fn peek_lru_tracks_the_eviction_victim() {
        let mut c: LruTtlCache<&str, u32> = LruTtlCache::new(3, 1_000);
        assert_eq!(c.peek_lru(), None);
        c.put("a", 1, 0);
        c.put("b", 2, 0);
        c.put("c", 3, 0);
        assert_eq!(c.peek_lru(), Some(&"a"));
        c.get(&"a", 1); // refresh: b becomes the victim
        assert_eq!(c.peek_lru(), Some(&"b"));
        c.put("d", 4, 2); // evicts b
        assert_eq!(c.get(&"b", 3), None);
        assert_eq!(c.peek_lru(), Some(&"c"));
    }

    #[test]
    fn slots_are_recycled_after_eviction_and_expiry() {
        let mut c: LruTtlCache<u32, u32> = LruTtlCache::new(2, 10);
        for i in 0..100u32 {
            c.put(i, i, (i as u64) * 5);
            let _ = c.get(&i, (i as u64) * 5);
        }
        assert!(c.len() <= 2);
        // The slab never grows past capacity + the transient slots from
        // lazy expiry (every removal recycles its slot).
        assert!(c.slab.len() <= 3, "slab grew to {}", c.slab.len());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: LruTtlCache<u32, u32> = LruTtlCache::new(0, 10);
    }

    #[test]
    fn cache_stats_merge_sums_every_counter() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            coalesced: 3,
            evictions: 4,
            expired: 5,
        };
        let b = CacheStats {
            hits: 10,
            misses: 20,
            coalesced: 30,
            evictions: 40,
            expired: 50,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CacheStats {
                hits: 11,
                misses: 22,
                coalesced: 33,
                evictions: 44,
                expired: 55,
            }
        );
        assert!((a.hit_rate() - 11.0 / 66.0).abs() < 1e-12);
    }
}
