//! # symphony-core
//!
//! The Symphony platform — the primary contribution of *Shafer,
//! Agrawal, Lauw: "Symphony: A Platform for Search-Driven
//! Applications" (ICDE 2010)* — reproduced over the substrate crates:
//!
//! * [`source`] — the unified content-source abstraction (proprietary
//!   tables, web verticals, SOAP/REST services, ads).
//! * [`app`] — validated application configurations (data sources,
//!   layout, supplemental bindings, presentation, monetization).
//! * [`runtime`] — query execution with parallel supplemental fan-out
//!   and virtual-clock latency accounting (Fig. 2).
//! * [`cache`] — the LRU+TTL result cache.
//! * [`hosting`] — the multi-tenant [`hosting::Platform`]: publish
//!   lifecycle, request/storage quotas, caching, analytics.
//! * [`embed`] — embed snippets and social-canvas deployment.
//! * [`monetize`] — interaction logging, traffic summaries, referral
//!   audit export, automatic ad-click crediting.
//! * [`recommend`] — supplemental-content recommendation (paper §IV
//!   future work), content- and crowd-driven.
//! * [`admission`] — per-tenant overload protection: token-bucket
//!   admission, weighted-fair worker scheduling, load shedding.
//! * [`trace`] — execution traces (the Fig.-2 stage tree).
//!
//! ## Quick example
//!
//! See `examples/quickstart.rs` for the complete flow; the essence:
//!
//! ```
//! use symphony_core::app::AppBuilder;
//! use symphony_core::hosting::Platform;
//! use symphony_core::source::DataSourceDef;
//! use symphony_designer::{Canvas, Element};
//! use symphony_store::ingest::{ingest, DataFormat};
//! use symphony_store::IndexedTable;
//! use symphony_web::{Corpus, CorpusConfig, SearchEngine};
//!
//! let engine = SearchEngine::new(Corpus::generate(&CorpusConfig {
//!     sites_per_topic: 1, pages_per_site: 2, ..CorpusConfig::default()
//! }));
//! let mut platform = Platform::new(engine);
//! let (tenant, key) = platform.create_tenant("WineFan");
//!
//! let (table, _) = ingest("cellar", "title,notes\nMargaux,plum and cedar\n", DataFormat::Csv).unwrap();
//! let mut indexed = IndexedTable::new(table);
//! indexed.enable_fulltext(&[("title", 2.0), ("notes", 1.0)]).unwrap();
//! platform.upload_table(tenant, &key, indexed).unwrap();
//!
//! let mut canvas = Canvas::new();
//! let root = canvas.root_id();
//! canvas.insert(root, Element::result_list("cellar", Element::text("{title}: {notes}"), 5)).unwrap();
//!
//! let app = AppBuilder::new("WineFan", tenant)
//!     .source("cellar", DataSourceDef::Proprietary { table: "cellar".into() })
//!     .layout(canvas)
//!     .build()
//!     .unwrap();
//! let id = platform.register_app(app).unwrap();
//! platform.publish(id).unwrap();
//!
//! let resp = platform.query(id, "margaux").unwrap();
//! assert!(resp.html.contains("plum and cedar"));
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod app;
pub mod cache;
pub mod embed;
pub mod error;
pub mod hosting;
pub mod monetize;
pub mod recommend;
pub mod runtime;
pub mod source;
pub mod source_cache;
pub mod trace;

pub use admission::{DeficitScheduler, FanoutScheduler, Lane, TokenBucket, WorkerGrant};
pub use app::{
    AdmissionPolicy, AppBuilder, AppId, ApplicationConfig, MonetizationConfig, ResiliencePolicy,
    SupplementalBinding,
};
pub use cache::{CacheStats, LruTtlCache};
pub use embed::{embed_snippet, SocialCanvasHost, SocialManifest};
pub use error::PlatformError;
pub use hosting::{MaintenanceSummary, Platform, QueryHost, QuotaConfig};
pub use monetize::{ClickLog, Impression, InteractionEvent, InteractionKind, TrafficSummary};
pub use recommend::{recommend_sites, recommend_sites_with_crowd, SiteRecommendation};
pub use runtime::{
    execute, execute_resilient, execute_with_overrides, shed_response, ExecCtx, ExecMode,
    QueryResponse, MAX_FANOUT_WORKERS, SHED_MS,
};
pub use source::{
    run_source, run_source_ctx, DataSourceDef, ResultItem, ScatterOutcome, ScatterSearch,
    SourceCtx, SourceOutcome, Substrates,
};
pub use source_cache::{
    normalize_query, FetchStatus, Fetched, SourceCache, SourceCacheConfig, SourceCacheStats,
};
pub use trace::{ExecutionTrace, TraceNode};
