//! Platform-level error type.

use symphony_designer::DesignError;
use symphony_services::ServiceError;
use symphony_store::StoreError;

/// Errors surfaced by the Symphony platform.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// Application id not registered.
    AppNotFound(u32),
    /// Application exists but is not published.
    NotPublished(String),
    /// Per-application request quota exceeded.
    QuotaExceeded {
        /// Application name.
        app: String,
        /// The configured limit (requests per virtual minute).
        limit: u32,
    },
    /// Tenant storage quota exceeded.
    StorageQuotaExceeded {
        /// Records over the limit.
        limit: usize,
    },
    /// A layout references a data source the app does not define.
    UnknownSource(String),
    /// A nested (supplemental) source has no query binding.
    MissingBinding(String),
    /// Application validation failed for another reason.
    InvalidConfig(String),
    /// Store error.
    Store(StoreError),
    /// Service error.
    Service(ServiceError),
    /// Designer error.
    Design(DesignError),
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::AppNotFound(id) => write!(f, "application {id} not found"),
            PlatformError::NotPublished(name) => write!(f, "application {name:?} is not published"),
            PlatformError::QuotaExceeded { app, limit } => {
                write!(f, "application {app:?} exceeded {limit} requests/min")
            }
            PlatformError::StorageQuotaExceeded { limit } => {
                write!(f, "tenant storage quota of {limit} records exceeded")
            }
            PlatformError::UnknownSource(s) => write!(f, "layout references unknown source {s:?}"),
            PlatformError::MissingBinding(s) => {
                write!(f, "supplemental source {s:?} has no query binding")
            }
            PlatformError::InvalidConfig(m) => write!(f, "invalid application config: {m}"),
            PlatformError::Store(e) => write!(f, "store: {e}"),
            PlatformError::Service(e) => write!(f, "service: {e}"),
            PlatformError::Design(e) => write!(f, "designer: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<StoreError> for PlatformError {
    fn from(e: StoreError) -> Self {
        PlatformError::Store(e)
    }
}

impl From<ServiceError> for PlatformError {
    fn from(e: ServiceError) -> Self {
        PlatformError::Service(e)
    }
}

impl From<DesignError> for PlatformError {
    fn from(e: DesignError) -> Self {
        PlatformError::Design(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: PlatformError = StoreError::AccessDenied.into();
        assert_eq!(e.to_string(), "store: access denied");
        let e: PlatformError = ServiceError::UnknownEndpoint("x".into()).into();
        assert!(e.to_string().contains("unknown endpoint"));
        let e: PlatformError = ServiceError::CircuitOpen { retry_after_ms: 25 }.into();
        assert!(e.to_string().contains("circuit open"), "{e}");
        let e: PlatformError = ServiceError::DeadlineCut { budget_ms: 7 }.into();
        assert!(e.to_string().contains("deadline cut"), "{e}");
        let e: PlatformError = DesignError::NothingToUndo.into();
        assert!(e.to_string().contains("undo"));
        assert!(PlatformError::QuotaExceeded {
            app: "a".into(),
            limit: 60
        }
        .to_string()
        .contains("60"));
    }
}
