//! Monetization: interaction logging, summaries, referral audits.
//!
//! Paper §II-A, "Monetization": the platform records customer
//! interactions, credits ad-click revenue automatically, and lets the
//! designer download click-traffic summaries "to serve as the basis
//! for charging or auditing referral compensation".

use std::collections::BTreeMap;

/// An impression: one result shown to a customer.
#[derive(Debug, Clone, PartialEq)]
pub struct Impression {
    /// Data source that produced the result.
    pub source: String,
    /// Result link target, when the layout rendered one.
    pub url: Option<String>,
    /// Result title (first text-ish binding).
    pub title: String,
    /// Position within its result list.
    pub position: usize,
    /// Whether this was an ad placement.
    pub is_ad: bool,
    /// Ad campaign id (ads only).
    pub ad_campaign: Option<u32>,
    /// GSP price in cents (ads only).
    pub ad_price_cents: Option<u32>,
}

/// One logged interaction event.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionEvent {
    /// Application name.
    pub app: String,
    /// Virtual timestamp (platform clock, ms).
    pub at_ms: u64,
    /// The customer query that produced the result.
    pub query: String,
    /// Impression or click.
    pub kind: InteractionKind,
    /// Source name.
    pub source: String,
    /// Link target, when known.
    pub url: Option<String>,
    /// Whether the result was an ad.
    pub is_ad: bool,
}

/// Event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionKind {
    /// Result rendered.
    Impression,
    /// Link clicked.
    Click,
}

/// Append-only interaction log with aggregation views.
#[derive(Debug, Default)]
pub struct ClickLog {
    events: Vec<InteractionEvent>,
}

/// A per-application traffic summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficSummary {
    /// Application name.
    pub app: String,
    /// Total impressions.
    pub impressions: u64,
    /// Total clicks.
    pub clicks: u64,
    /// Clicks per source.
    pub clicks_by_source: BTreeMap<String, u64>,
    /// Most-clicked queries with counts, descending.
    pub top_queries: Vec<(String, u64)>,
    /// Ad clicks (subset of clicks).
    pub ad_clicks: u64,
    /// Queries served (filled by the hosting layer; the click log
    /// alone cannot see queries that rendered zero impressions).
    pub queries: u64,
    /// Queries that served a degraded (partial) response after
    /// executing (source errors, deadline cuts). Disjoint from
    /// [`TrafficSummary::shed_queries`].
    pub degraded_queries: u64,
    /// Queries shed by admission control before any execution
    /// (answered with the cheap degraded shell).
    pub shed_queries: u64,
}

impl TrafficSummary {
    /// Overall click-through rate.
    pub fn ctr(&self) -> f64 {
        if self.impressions == 0 {
            0.0
        } else {
            self.clicks as f64 / self.impressions as f64
        }
    }

    /// Fraction of queries that served a degraded response (0.0, not
    /// NaN, when no queries were served).
    pub fn error_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.degraded_queries as f64 / self.queries as f64
        }
    }

    /// Fraction of queries shed by admission control (0.0, not NaN,
    /// when no queries were served).
    pub fn shed_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.shed_queries as f64 / self.queries as f64
        }
    }

    /// Fold `other` into `self`: counters sum, per-source and
    /// per-query click maps merge, and `top_queries` is re-ranked over
    /// the union. Because the derived rates ([`TrafficSummary::ctr`],
    /// [`TrafficSummary::error_rate`], [`TrafficSummary::shed_rate`])
    /// divide summed counters, a merged summary weights each input by
    /// its query volume — a shard serving 10× the traffic moves the
    /// folded rate 10× as much.
    pub fn merge(&mut self, other: &TrafficSummary) {
        self.impressions += other.impressions;
        self.clicks += other.clicks;
        self.ad_clicks += other.ad_clicks;
        self.queries += other.queries;
        self.degraded_queries += other.degraded_queries;
        self.shed_queries += other.shed_queries;
        for (source, n) in &other.clicks_by_source {
            *self.clicks_by_source.entry(source.clone()).or_insert(0) += n;
        }
        let mut by_query: BTreeMap<&str, u64> = BTreeMap::new();
        for (q, n) in self.top_queries.iter().chain(&other.top_queries) {
            *by_query.entry(q).or_insert(0) += n;
        }
        let mut merged: Vec<(String, u64)> = by_query
            .into_iter()
            .map(|(q, n)| (q.to_string(), n))
            .collect();
        merged.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        merged.truncate(10);
        self.top_queries = merged;
    }
}

impl ClickLog {
    /// Empty log.
    pub fn new() -> ClickLog {
        ClickLog::default()
    }

    /// Append an event.
    pub fn record(&mut self, event: InteractionEvent) {
        self.events.push(event);
    }

    /// All events.
    pub fn events(&self) -> &[InteractionEvent] {
        &self.events
    }

    /// Summarize one application's traffic.
    pub fn summarize(&self, app: &str) -> TrafficSummary {
        let mut impressions = 0u64;
        let mut clicks = 0u64;
        let mut ad_clicks = 0u64;
        let mut clicks_by_source: BTreeMap<String, u64> = BTreeMap::new();
        let mut query_clicks: BTreeMap<String, u64> = BTreeMap::new();
        for e in self.events.iter().filter(|e| e.app == app) {
            match e.kind {
                InteractionKind::Impression => impressions += 1,
                InteractionKind::Click => {
                    clicks += 1;
                    if e.is_ad {
                        ad_clicks += 1;
                    }
                    *clicks_by_source.entry(e.source.clone()).or_insert(0) += 1;
                    *query_clicks.entry(e.query.clone()).or_insert(0) += 1;
                }
            }
        }
        let mut top_queries: Vec<(String, u64)> = query_clicks.into_iter().collect();
        top_queries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        top_queries.truncate(10);
        TrafficSummary {
            app: app.to_string(),
            impressions,
            clicks,
            clicks_by_source,
            top_queries,
            ad_clicks,
            queries: 0,
            degraded_queries: 0,
            shed_queries: 0,
        }
    }

    /// Per-virtual-day traffic series for an application:
    /// `(day index, impressions, clicks)` in day order. The platform
    /// clock starts at 0, so day indexes are relative to platform
    /// start.
    pub fn daily_series(&self, app: &str) -> Vec<(u64, u64, u64)> {
        let mut days: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for e in self.events.iter().filter(|e| e.app == app) {
            let day = e.at_ms / 86_400_000;
            let entry = days.entry(day).or_insert((0, 0));
            match e.kind {
                InteractionKind::Impression => entry.0 += 1,
                InteractionKind::Click => entry.1 += 1,
            }
        }
        days.into_iter().map(|(d, (i, c))| (d, i, c)).collect()
    }

    /// Export an application's click events as CSV for referral
    /// auditing (the paper's "summary ... can be downloaded").
    pub fn referral_audit_csv(&self, app: &str) -> String {
        let names: Vec<String> = ["at_ms", "query", "source", "url", "is_ad"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = self
            .events
            .iter()
            .filter(|e| e.app == app && e.kind == InteractionKind::Click)
            .map(|e| {
                vec![
                    e.at_ms.to_string(),
                    e.query.clone(),
                    e.source.clone(),
                    e.url.clone().unwrap_or_default(),
                    e.is_ad.to_string(),
                ]
            })
            .collect();
        symphony_store::formats::csv::to_csv(&names, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(
        app: &str,
        kind: InteractionKind,
        source: &str,
        query: &str,
        is_ad: bool,
    ) -> InteractionEvent {
        InteractionEvent {
            app: app.into(),
            at_ms: 1000,
            query: query.into(),
            kind,
            source: source.into(),
            url: Some(format!("http://x/{query}")),
            is_ad,
        }
    }

    fn log() -> ClickLog {
        let mut l = ClickLog::new();
        for _ in 0..10 {
            l.record(event(
                "GamerQueen",
                InteractionKind::Impression,
                "inventory",
                "space",
                false,
            ));
        }
        l.record(event(
            "GamerQueen",
            InteractionKind::Click,
            "inventory",
            "space",
            false,
        ));
        l.record(event(
            "GamerQueen",
            InteractionKind::Click,
            "reviews",
            "space",
            false,
        ));
        l.record(event(
            "GamerQueen",
            InteractionKind::Click,
            "ads",
            "space",
            true,
        ));
        l.record(event(
            "GamerQueen",
            InteractionKind::Click,
            "inventory",
            "farm",
            false,
        ));
        l.record(event(
            "Other",
            InteractionKind::Click,
            "inventory",
            "space",
            false,
        ));
        l
    }

    #[test]
    fn summary_counts_per_app() {
        let s = log().summarize("GamerQueen");
        assert_eq!(s.impressions, 10);
        assert_eq!(s.clicks, 4);
        assert_eq!(s.ad_clicks, 1);
        assert_eq!(s.clicks_by_source["inventory"], 2);
        assert_eq!(s.clicks_by_source["ads"], 1);
        assert!((s.ctr() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn top_queries_ordered() {
        let s = log().summarize("GamerQueen");
        assert_eq!(s.top_queries[0].0, "space");
        assert_eq!(s.top_queries[0].1, 3);
    }

    #[test]
    fn other_apps_isolated() {
        let s = log().summarize("Other");
        assert_eq!(s.clicks, 1);
        assert_eq!(s.impressions, 0);
    }

    #[test]
    fn empty_summary() {
        let s = ClickLog::new().summarize("X");
        assert_eq!(s.ctr(), 0.0);
        assert!(s.top_queries.is_empty());
        // Rates are defined (0.0, not NaN) with zero queries.
        assert_eq!(s.error_rate(), 0.0);
        assert_eq!(s.shed_rate(), 0.0);
    }

    #[test]
    fn shed_and_error_rates_are_disjoint_fractions() {
        let mut s = ClickLog::new().summarize("X");
        s.queries = 10;
        s.degraded_queries = 2;
        s.shed_queries = 3;
        assert!((s.error_rate() - 0.2).abs() < 1e-12);
        assert!((s.shed_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn daily_series_buckets_by_virtual_day() {
        let mut l = ClickLog::new();
        let mut e = event("A", InteractionKind::Impression, "s", "q", false);
        e.at_ms = 10; // day 0
        l.record(e.clone());
        e.kind = InteractionKind::Click;
        l.record(e.clone());
        e.at_ms = 86_400_000 + 5; // day 1
        l.record(e);
        let series = l.daily_series("A");
        assert_eq!(series, vec![(0, 1, 1), (1, 0, 1)]);
        assert!(l.daily_series("B").is_empty());
    }

    #[test]
    fn audit_csv_contains_clicks_only() {
        let csv = log().referral_audit_csv("GamerQueen");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "at_ms,query,source,url,is_ad");
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[1].contains("space"));
        assert!(csv.contains("true"), "ad click flagged");
    }

    #[test]
    fn merge_sums_counters_and_reranks_top_queries() {
        let mut a = TrafficSummary {
            app: "GamerQueen".into(),
            impressions: 100,
            clicks: 10,
            clicks_by_source: [("inventory".to_string(), 6), ("web".to_string(), 4)]
                .into_iter()
                .collect(),
            top_queries: vec![("space".into(), 7), ("farm".into(), 3)],
            ad_clicks: 2,
            queries: 50,
            degraded_queries: 5,
            shed_queries: 10,
        };
        let b = TrafficSummary {
            app: "GamerQueen".into(),
            impressions: 300,
            clicks: 30,
            clicks_by_source: [("web".to_string(), 20), ("ads".to_string(), 10)]
                .into_iter()
                .collect(),
            top_queries: vec![("farm".into(), 25), ("space".into(), 5)],
            ad_clicks: 8,
            queries: 150,
            degraded_queries: 0,
            shed_queries: 0,
        };
        a.merge(&b);
        assert_eq!(a.impressions, 400);
        assert_eq!(a.clicks, 40);
        assert_eq!(a.ad_clicks, 10);
        assert_eq!(a.queries, 200);
        assert_eq!(a.degraded_queries, 5);
        assert_eq!(a.shed_queries, 10);
        assert_eq!(a.clicks_by_source["web"], 24);
        assert_eq!(a.clicks_by_source["inventory"], 6);
        assert_eq!(a.clicks_by_source["ads"], 10);
        // "farm" overtakes "space" once both shards are folded in.
        assert_eq!(
            a.top_queries,
            vec![("farm".to_string(), 28), ("space".to_string(), 12)]
        );
    }

    #[test]
    fn merged_rates_are_weighted_by_query_volume() {
        // Shard A: 10 queries, all shed. Shard B: 90 queries, none
        // shed. The folded shed rate must be 10%, not the 50% a naive
        // average of per-shard rates would give.
        let mut a = TrafficSummary {
            queries: 10,
            shed_queries: 10,
            degraded_queries: 0,
            ..Default::default()
        };
        let b = TrafficSummary {
            queries: 90,
            shed_queries: 0,
            degraded_queries: 9,
            ..Default::default()
        };
        assert_eq!(a.shed_rate(), 1.0);
        a.merge(&b);
        assert!((a.shed_rate() - 0.1).abs() < 1e-12);
        assert!((a.error_rate() - 0.09).abs() < 1e-12);
    }
}
