//! Overload protection primitives (ROADMAP item: per-tenant overload
//! protection).
//!
//! Three pieces, all driven by the platform's atomic virtual clock:
//!
//! * [`TokenBucket`] — the per-tenant admission rate limiter. Refill
//!   is computed lazily from elapsed virtual time, so arbitrary clock
//!   jumps (tests, replayed traces) behave exactly like many small
//!   ones, and the level can never exceed the configured burst.
//! * [`FanoutScheduler`] — a platform-wide worker-permit pool laid
//!   over the [`MAX_FANOUT_WORKERS`](crate::runtime::MAX_FANOUT_WORKERS)
//!   fan-out cap. Concurrent queries ask it how many OS threads their
//!   fan-out may use; grants are weighted fair shares with a
//!   deficit-style carry, so a burst tenant running many queries at
//!   once cannot monopolize the pool. Two [`Lane`]s keep background
//!   work (warmup, builds, maintenance) from ever queuing ahead of
//!   interactive queries.
//! * [`DeficitScheduler`] — the classic deficit-round-robin pick over
//!   backlogged tenant queues, used by the traffic harness and the
//!   fairness property tests to state the share bound precisely.
//!
//! Worker grants only bound *real* resource use; virtual-time
//! accounting (`max` under parallel fan-out) is untouched, so results
//! and virtual latencies stay deterministic no matter how permits land.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Milli-tokens per token: bucket arithmetic is integral so refill is
/// exact (no float drift) under any split of the same elapsed time.
const MILLI: u64 = 1000;

/// A token-bucket rate limiter on the virtual clock.
///
/// Levels are tracked in milli-tokens: at `rate_per_sec` tokens per
/// virtual second, each elapsed virtual millisecond contributes exactly
/// `rate_per_sec` milli-tokens. Refill saturates at `burst` tokens and
/// is monotone: time never removes tokens, and a backwards (or equal)
/// clock observation is a no-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    rate_per_sec: u32,
    burst: u32,
    level_milli: u64,
    last_ms: u64,
}

impl TokenBucket {
    /// A bucket that starts full. `rate_per_sec == u32::MAX` means
    /// unlimited: every acquire succeeds and the level pins at burst.
    pub fn new(rate_per_sec: u32, burst: u32, now_ms: u64) -> TokenBucket {
        TokenBucket {
            rate_per_sec,
            burst,
            level_milli: burst as u64 * MILLI,
            last_ms: now_ms,
        }
    }

    /// True when the bucket never refuses.
    pub fn is_unlimited(&self) -> bool {
        self.rate_per_sec == u32::MAX
    }

    /// Credit elapsed virtual time. Saturates at `burst` tokens;
    /// ignores clock observations at or before the last one.
    pub fn refill(&mut self, now_ms: u64) {
        if now_ms <= self.last_ms {
            return;
        }
        let elapsed = now_ms - self.last_ms;
        self.last_ms = now_ms;
        let cap = self.burst as u64 * MILLI;
        let gained = elapsed.saturating_mul(self.rate_per_sec as u64);
        self.level_milli = self.level_milli.saturating_add(gained).min(cap);
    }

    /// Refill to `now_ms`, then take one token. Returns whether the
    /// token was available (unlimited buckets always say yes).
    pub fn try_acquire(&mut self, now_ms: u64) -> bool {
        self.refill(now_ms);
        if self.is_unlimited() {
            return true;
        }
        if self.level_milli >= MILLI {
            self.level_milli -= MILLI;
            true
        } else {
            false
        }
    }

    /// Current level in milli-tokens (refilled as of the last
    /// observation; call [`TokenBucket::refill`] first for "now").
    pub fn level_milli(&self) -> u64 {
        self.level_milli
    }

    /// The burst capacity in tokens.
    pub fn burst(&self) -> u32 {
        self.burst
    }

    /// Virtual ms until one full token is available at the current
    /// level (0 when one is already banked). The chaos suite uses this
    /// to state "recovery within one refill window" exactly.
    pub fn ms_until_token(&self) -> u64 {
        if self.is_unlimited() || self.level_milli >= MILLI {
            return 0;
        }
        let missing = MILLI - self.level_milli;
        missing.div_ceil((self.rate_per_sec as u64).max(1))
    }
}

/// Scheduling lanes for the shared worker pool. Interactive grants are
/// computed as if background work did not exist (user traffic never
/// queues behind merges or warmup); background grants only see what
/// interactive traffic left over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lane {
    /// Customer queries (the serving path).
    #[default]
    Interactive,
    /// Warmup, index builds, maintenance.
    Background,
}

#[derive(Debug, Default)]
struct TenantShare {
    weight: u32,
    /// Grants currently outstanding (queries mid-fan-out).
    active: usize,
    /// Deficit carry in permits: entitlement this tenant wanted but
    /// did not receive, repaid by larger grants later.
    deficit: u64,
    /// Lifetime permits granted (fairness accounting for tests and
    /// the traffic harness).
    granted: u64,
}

#[derive(Debug, Default)]
struct PoolState {
    interactive_out: usize,
    background_out: usize,
    tenants: HashMap<u64, TenantShare>,
}

/// The platform-wide fan-out worker pool: a permit allocator shared by
/// every concurrently executing query.
///
/// `acquire` is non-blocking and always grants at least one worker
/// (every admitted query makes progress); fairness comes from sizing
/// the grant to the tenant's weighted share of the pool, carrying any
/// shortfall as a deficit that inflates the tenant's next grant.
#[derive(Debug)]
pub struct FanoutScheduler {
    cap: usize,
    state: Mutex<PoolState>,
}

/// An outstanding worker allocation; permits return to the pool on
/// drop.
#[derive(Debug)]
pub struct WorkerGrant<'a> {
    pool: &'a FanoutScheduler,
    tenant: u64,
    lane: Lane,
    workers: usize,
}

impl WorkerGrant<'_> {
    /// How many OS threads the fan-out may use.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for WorkerGrant<'_> {
    fn drop(&mut self) {
        self.pool.release(self.tenant, self.lane, self.workers);
    }
}

impl FanoutScheduler {
    /// A pool of `cap` worker permits.
    pub fn new(cap: usize) -> FanoutScheduler {
        FanoutScheduler {
            cap: cap.max(1),
            state: Mutex::new(PoolState::default()),
        }
    }

    /// The pool size.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Ask for up to `want` workers for `tenant` (any stable key; the
    /// platform uses the owning tenant id) at scheduling `weight`.
    ///
    /// The grant is `min(want, weighted fair share + deficit carry,
    /// lane availability)`, floored at one worker. Deficit carry means
    /// a tenant shorted while the pool was busy is made whole over the
    /// next grants, so long-run granted shares track weights even
    /// under contention.
    pub fn acquire(&self, tenant: u64, weight: u32, want: usize, lane: Lane) -> WorkerGrant<'_> {
        let want = want.clamp(1, self.cap);
        let weight = weight.max(1) as u64;
        let mut st = self.state.lock();
        {
            let share = st.tenants.entry(tenant).or_default();
            share.weight = weight as u32;
            share.active += 1;
        }
        let active_weight: u64 = st
            .tenants
            .values()
            .filter(|t| t.active > 0)
            .map(|t| t.weight as u64)
            .sum();
        let fair = ((self.cap as u64 * weight) / active_weight.max(1)).max(1);
        let available = match lane {
            Lane::Interactive => self.cap.saturating_sub(st.interactive_out),
            Lane::Background => self
                .cap
                .saturating_sub(st.interactive_out + st.background_out),
        };
        let share = st.tenants.get_mut(&tenant).expect("registered above");
        let entitled = (fair + share.deficit).min(self.cap as u64) as usize;
        let grant = want.min(entitled).min(available.max(1)).max(1);
        // Carry only entitlement the tenant actually wanted; cap the
        // carry so an idle-then-bursty tenant cannot bank the pool.
        share.deficit = (entitled.min(want) as u64)
            .saturating_sub(grant as u64)
            .min(self.cap as u64 * 4);
        share.granted += grant as u64;
        match lane {
            Lane::Interactive => st.interactive_out += grant,
            Lane::Background => st.background_out += grant,
        }
        drop(st);
        WorkerGrant {
            pool: self,
            tenant,
            lane,
            workers: grant,
        }
    }

    fn release(&self, tenant: u64, lane: Lane, workers: usize) {
        let mut st = self.state.lock();
        match lane {
            Lane::Interactive => st.interactive_out = st.interactive_out.saturating_sub(workers),
            Lane::Background => st.background_out = st.background_out.saturating_sub(workers),
        }
        if let Some(share) = st.tenants.get_mut(&tenant) {
            share.active = share.active.saturating_sub(1);
        }
    }

    /// Lifetime permits granted to `tenant` (fairness readout).
    pub fn granted(&self, tenant: u64) -> u64 {
        self.state
            .lock()
            .tenants
            .get(&tenant)
            .map_or(0, |t| t.granted)
    }

    /// Permits currently out per lane: `(interactive, background)`.
    pub fn outstanding(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.interactive_out, st.background_out)
    }
}

/// Deficit round robin over per-tenant backlogs: each round a
/// backlogged tenant banks `quantum × weight` credit and serves work
/// items (cost 1) while credit lasts. Over any window in which a
/// tenant stays backlogged, its completed share tracks its weight
/// share to within one quantum per tenant per round — the bound the
/// property tests assert.
#[derive(Debug, Clone)]
pub struct DeficitScheduler {
    quantum: u64,
    tenants: Vec<DrrTenant>,
    cursor: usize,
}

#[derive(Debug, Clone)]
struct DrrTenant {
    weight: u32,
    deficit: u64,
    backlog: u64,
    completed: u64,
}

impl DeficitScheduler {
    /// An empty scheduler with a per-weight-unit quantum of `quantum`
    /// work items per round.
    pub fn new(quantum: u64) -> DeficitScheduler {
        DeficitScheduler {
            quantum: quantum.max(1),
            tenants: Vec::new(),
            cursor: 0,
        }
    }

    /// Register a tenant with a scheduling weight; returns its slot.
    pub fn register(&mut self, weight: u32) -> usize {
        self.tenants.push(DrrTenant {
            weight: weight.max(1),
            deficit: 0,
            backlog: 0,
            completed: 0,
        });
        self.tenants.len() - 1
    }

    /// Add `n` work items to a tenant's backlog.
    pub fn enqueue(&mut self, tenant: usize, n: u64) {
        self.tenants[tenant].backlog += n;
    }

    /// Pending work for a tenant.
    pub fn backlog(&self, tenant: usize) -> u64 {
        self.tenants[tenant].backlog
    }

    /// Work items completed for a tenant so far.
    pub fn completed(&self, tenant: usize) -> u64 {
        self.tenants[tenant].completed
    }

    /// Pick the tenant whose work item runs next, or `None` when every
    /// backlog is empty. A tenant whose backlog drains forfeits its
    /// remaining deficit (standard DRR: credit never accrues while
    /// idle).
    pub fn next_tenant(&mut self) -> Option<usize> {
        let n = self.tenants.len();
        if n == 0 {
            return None;
        }
        // At most one full refill round past every tenant: if nothing
        // is backlogged after that, the queues are empty.
        for _ in 0..=n {
            for _ in 0..n {
                let i = self.cursor;
                let t = &mut self.tenants[i];
                if t.backlog == 0 {
                    t.deficit = 0;
                    self.cursor = (self.cursor + 1) % n;
                    continue;
                }
                if t.deficit >= 1 {
                    t.deficit -= 1;
                    t.backlog -= 1;
                    t.completed += 1;
                    // Stay on this tenant while its credit lasts.
                    if t.deficit == 0 || t.backlog == 0 {
                        if t.backlog == 0 {
                            t.deficit = 0;
                        }
                        self.cursor = (self.cursor + 1) % n;
                    }
                    return Some(i);
                }
                // Credit exhausted: bank a fresh quantum and move on;
                // the next visit serves it.
                t.deficit += self.quantum * t.weight as u64;
                self.cursor = (self.cursor + 1) % n;
            }
            if self.tenants.iter().all(|t| t.backlog == 0) {
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(10, 3, 0);
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(0), "burst of 3 exhausted");
        assert_eq!(b.ms_until_token(), 100, "10/s refills one per 100ms");
        assert!(b.try_acquire(100));
        assert!(!b.try_acquire(100));
    }

    #[test]
    fn bucket_refill_saturates_at_burst() {
        let mut b = TokenBucket::new(1000, 5, 0);
        b.refill(1_000_000);
        assert_eq!(b.level_milli(), 5 * MILLI);
    }

    #[test]
    fn bucket_ignores_backwards_clock() {
        let mut b = TokenBucket::new(10, 10, 500);
        while b.try_acquire(500) {}
        b.refill(100); // stale observation
        assert_eq!(b.level_milli(), 0);
        assert!(b.try_acquire(600), "forward time refills");
    }

    #[test]
    fn unlimited_bucket_never_refuses() {
        let mut b = TokenBucket::new(u32::MAX, 1, 0);
        for _ in 0..10_000 {
            assert!(b.try_acquire(0));
        }
    }

    #[test]
    fn solo_tenant_gets_the_whole_pool() {
        let pool = FanoutScheduler::new(16);
        let g = pool.acquire(1, 1, 16, Lane::Interactive);
        assert_eq!(g.workers(), 16);
        drop(g);
        assert_eq!(pool.outstanding(), (0, 0));
    }

    #[test]
    fn concurrent_tenants_split_by_weight() {
        let pool = FanoutScheduler::new(16);
        // Tenant 1 (weight 3) holds a grant while tenant 2 (weight 1)
        // arrives: shares split 12/4.
        let g1 = pool.acquire(1, 3, 16, Lane::Interactive);
        assert_eq!(g1.workers(), 16, "alone at acquire time");
        let g2 = pool.acquire(2, 1, 16, Lane::Interactive);
        // 16 * 1/4 = 4 entitled, but only the floor of one permit is
        // guaranteed when the pool is drained; the shortfall carries.
        assert!(g2.workers() >= 1);
        drop(g1);
        drop(g2);
        let g2b = pool.acquire(2, 1, 16, Lane::Interactive);
        assert!(
            g2b.workers() > 1,
            "deficit carry inflates the next grant: {}",
            g2b.workers()
        );
    }

    #[test]
    fn background_lane_only_sees_leftovers() {
        let pool = FanoutScheduler::new(8);
        let fg = pool.acquire(1, 1, 6, Lane::Interactive);
        assert_eq!(fg.workers(), 6);
        let bg = pool.acquire(99, 1, 8, Lane::Background);
        assert!(
            bg.workers() <= 2,
            "background must not displace interactive: {}",
            bg.workers()
        );
        drop(bg);
        // Interactive ignores background outstanding entirely.
        let bg2 = pool.acquire(99, 1, 2, Lane::Background);
        let fg2 = pool.acquire(2, 1, 2, Lane::Interactive);
        assert_eq!(fg2.workers(), 2);
        drop(fg2);
        drop(bg2);
        drop(fg);
    }

    #[test]
    fn drr_shares_track_weights() {
        let mut s = DeficitScheduler::new(1);
        let a = s.register(3);
        let b = s.register(1);
        s.enqueue(a, 10_000);
        s.enqueue(b, 10_000);
        let mut counts = [0u64; 2];
        for _ in 0..4000 {
            let who = s.next_tenant().expect("both backlogged");
            counts[who] += 1;
        }
        let share_a = counts[a] as f64 / 4000.0;
        assert!(
            (share_a - 0.75).abs() < 0.01,
            "weight-3 tenant should get ~75%, got {share_a}"
        );
        assert_eq!(counts[a], s.completed(a));
    }

    #[test]
    fn drr_drains_and_reports_empty() {
        let mut s = DeficitScheduler::new(2);
        let a = s.register(1);
        s.enqueue(a, 3);
        let mut served = 0;
        while s.next_tenant().is_some() {
            served += 1;
        }
        assert_eq!(served, 3);
        assert_eq!(s.backlog(a), 0);
        assert!(s.next_tenant().is_none());
    }
}
