//! Distribution: embed snippets and social publishing.
//!
//! Paper §II-A, "Distribution": designers embed applications "by
//! copy-and-pasting auto-generated snippets of JavaScript and HTML
//! onto a web page", or publish to social platforms. The snippet is
//! generated here; the social side produces a deployment descriptor
//! validated by a simulated canvas host (see the substitution table in
//! DESIGN.md).

use crate::app::{AppId, ApplicationConfig};

/// Generate the copy-paste embed code for an application.
///
/// The returned HTML contains the placeholder `<div>` the results are
/// injected into and the script that forwards queries to the Symphony
/// host — the mechanism of Fig. 2's first and last arrows.
pub fn embed_snippet(app: &ApplicationConfig, id: AppId, platform_host: &str) -> String {
    let div_id = format!("symphony-app-{}", id.0);
    format!(
        r#"<!-- Symphony embed for "{name}" — paste into your page -->
<div id="{div_id}" class="symphony-app"></div>
<script type="text/javascript">
  (function () {{
    var HOST = "{host}";
    var APP = {app_id};
    window.symphonySearch = function (form) {{
      var q = form.q.value;
      var xhr = new XMLHttpRequest();
      xhr.open("GET", HOST + "/apps/" + APP + "/search?q=" + encodeURIComponent(q), true);
      xhr.onload = function () {{
        document.getElementById("{div_id}").innerHTML = xhr.responseText;
      }};
      xhr.send();
      return false;
    }};
  }})();
</script>"#,
        name = app.name,
        div_id = div_id,
        host = platform_host,
        app_id = id.0,
    )
}

/// A key/value deployment descriptor for a social canvas platform
/// (the Facebook-publishing analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocialManifest {
    /// Descriptor entries.
    pub entries: Vec<(String, String)>,
}

impl SocialManifest {
    /// Build the manifest for an application.
    pub fn for_app(app: &ApplicationConfig, id: AppId, platform_host: &str) -> SocialManifest {
        SocialManifest {
            entries: vec![
                ("app_name".into(), app.name.clone()),
                (
                    "canvas_url".into(),
                    format!("{platform_host}/apps/{}/canvas", id.0),
                ),
                (
                    "callback_url".into(),
                    format!("{platform_host}/apps/{}/search", id.0),
                ),
                ("platform".into(), "symphony".into()),
                ("version".into(), "1.0".into()),
            ],
        }
    }

    /// Entry lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A simulated social canvas host that accepts app installations.
#[derive(Debug, Default)]
pub struct SocialCanvasHost {
    installed: Vec<SocialManifest>,
}

impl SocialCanvasHost {
    /// Empty host.
    pub fn new() -> SocialCanvasHost {
        SocialCanvasHost::default()
    }

    /// Validate and install a manifest, returning the canvas URL.
    pub fn install(&mut self, manifest: SocialManifest) -> Result<String, String> {
        for required in ["app_name", "canvas_url", "callback_url"] {
            match manifest.get(required) {
                None => return Err(format!("manifest missing {required}")),
                Some("") => return Err(format!("manifest has empty {required}")),
                Some(_) => {}
            }
        }
        if self
            .installed
            .iter()
            .any(|m| m.get("app_name") == manifest.get("app_name"))
        {
            return Err(format!(
                "app {:?} already installed",
                manifest.get("app_name").unwrap_or_default()
            ));
        }
        let url = manifest.get("canvas_url").expect("validated").to_string();
        self.installed.push(manifest);
        Ok(url)
    }

    /// Installed application names.
    pub fn installed_apps(&self) -> Vec<&str> {
        self.installed
            .iter()
            .filter_map(|m| m.get("app_name"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::source::DataSourceDef;
    use symphony_designer::{Canvas, Element};
    use symphony_store::TenantId;

    fn app() -> ApplicationConfig {
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas
            .insert(
                root,
                Element::result_list("inv", Element::text("{title}"), 5),
            )
            .unwrap();
        AppBuilder::new("GamerQueen", TenantId(0))
            .source(
                "inv",
                DataSourceDef::Proprietary {
                    table: "inv".into(),
                },
            )
            .layout(canvas)
            .build()
            .unwrap()
    }

    #[test]
    fn snippet_contains_div_script_and_endpoint() {
        let s = embed_snippet(&app(), AppId(7), "https://symphony.example.com");
        assert!(s.contains("id=\"symphony-app-7\""));
        assert!(s.contains("<script"));
        assert!(s.contains("https://symphony.example.com"));
        assert!(s.contains("var APP = 7;"));
        assert!(s.contains("\"/apps/\" + APP + \"/search?q=\""));
        assert!(s.contains("symphonySearch"));
    }

    #[test]
    fn manifest_entries() {
        let m = SocialManifest::for_app(&app(), AppId(3), "https://sym.example.com");
        assert_eq!(m.get("app_name"), Some("GamerQueen"));
        assert_eq!(
            m.get("canvas_url"),
            Some("https://sym.example.com/apps/3/canvas")
        );
        assert_eq!(m.get("nope"), None);
    }

    #[test]
    fn canvas_host_installs_once() {
        let mut host = SocialCanvasHost::new();
        let m = SocialManifest::for_app(&app(), AppId(1), "https://sym.example.com");
        let url = host.install(m.clone()).unwrap();
        assert!(url.ends_with("/apps/1/canvas"));
        assert_eq!(host.installed_apps(), vec!["GamerQueen"]);
        assert!(host.install(m).unwrap_err().contains("already installed"));
    }

    #[test]
    fn canvas_host_rejects_incomplete_manifest() {
        let mut host = SocialCanvasHost::new();
        let bad = SocialManifest {
            entries: vec![("app_name".into(), "X".into())],
        };
        assert!(host.install(bad).unwrap_err().contains("canvas_url"));
        let empty = SocialManifest {
            entries: vec![
                ("app_name".into(), String::new()),
                ("canvas_url".into(), "u".into()),
                ("callback_url".into(), "c".into()),
            ],
        };
        assert!(host.install(empty).unwrap_err().contains("empty app_name"));
    }
}
