//! Query execution (paper §II-C and Fig. 2).
//!
//! The flow the paper describes, end to end:
//!
//! 1. the embedded JavaScript forwards the customer's query;
//! 2. primary content sources are queried with it;
//! 3. supplemental sources are queried with templates over fields of
//!    each primary result — those fetches **fan out in parallel**
//!    (std scoped threads), one of the platform's core "heavy
//!    lifting" claims (ablated in experiment E1);
//! 4. everything merges into the designed layout and renders to HTML;
//! 5. the HTML goes back to the page.
//!
//! Latency is *virtual*: each source reports virtual milliseconds, and
//! the runtime combines them as `max` under parallel execution or
//! `sum` under the sequential ablation.

use crate::app::ApplicationConfig;
use crate::monetize::Impression;
use crate::source::{run_source, SourceOutcome, Substrates};
use crate::trace::{ExecutionTrace, TraceNode};
use std::cell::RefCell;
use std::collections::HashMap;

use symphony_designer::{render_element, Element, ElementKind};

/// Fan-out execution mode (E1 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Supplemental fetches run concurrently; virtual time is the max.
    Parallel,
    /// Fetches run one after another; virtual time is the sum.
    Sequential,
}

/// Fixed virtual cost of receiving/dispatching the snippet request.
pub const RECEIVE_MS: u32 = 1;
/// Fixed virtual cost of merging and formatting the response.
pub const MERGE_MS: u32 = 2;

/// The rendered response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Final HTML injected into the host page.
    pub html: String,
    /// Stage-by-stage trace (drives Fig. 2).
    pub trace: ExecutionTrace,
    /// Total virtual latency.
    pub virtual_ms: u32,
    /// Impressions rendered (consumed by the monetization log).
    pub impressions: Vec<Impression>,
}

/// A supplemental fetch task.
struct FanoutTask {
    primary_source: String,
    item_idx: usize,
    source: String,
    query: String,
    k: usize,
}

/// Execute `query` against an application over the given substrates.
pub fn execute(
    app: &ApplicationConfig,
    query: &str,
    subs: Substrates<'_>,
    mode: ExecMode,
) -> QueryResponse {
    execute_with_overrides(app, query, subs, mode, &HashMap::new())
}

/// Like [`execute`], with pre-resolved outcomes for some primary
/// sources. The hosting layer uses this for
/// [`DataSourceDef::ComposedApp`](crate::source::DataSourceDef::ComposedApp)
/// sources, whose results come from recursively querying another
/// hosted application.
pub fn execute_with_overrides(
    app: &ApplicationConfig,
    query: &str,
    subs: Substrates<'_>,
    mode: ExecMode,
    overrides: &HashMap<String, SourceOutcome>,
) -> QueryResponse {
    // ---- Stage 1: primary content -------------------------------
    let primary_specs = app.primary_lists();
    let mut primary: HashMap<String, SourceOutcome> = HashMap::new();
    for (source, max, _) in &primary_specs {
        if primary.contains_key(source) {
            continue;
        }
        let outcome = if let Some(pre) = overrides.get(source) {
            pre.clone()
        } else {
            match app.source(source) {
                Some(cfg) => run_source(&cfg.def, query, *max, subs, app.constraint(source)),
                None => SourceOutcome {
                    items: Vec::new(),
                    virtual_ms: 0,
                    error: Some(format!("source {source:?} not configured")),
                },
            }
        };
        primary.insert(source.clone(), outcome);
    }

    // ---- Stage 2: supplemental fan-out ---------------------------
    let mut tasks: Vec<FanoutTask> = Vec::new();
    for (psource, max, item_el) in &primary_specs {
        let outcome = &primary[psource];
        let nested = nested_lists(item_el);
        if nested.is_empty() {
            continue;
        }
        for (idx, item) in outcome.items.iter().take(*max).enumerate() {
            let lookup = |name: &str| item.field(name).map(str::to_string);
            for (ssource, smax) in &nested {
                let Some(binding) = app.binding(ssource) else {
                    continue; // validated configs always have one
                };
                let q = binding.query_template.render(&lookup);
                if q.trim().is_empty() {
                    continue;
                }
                tasks.push(FanoutTask {
                    primary_source: psource.clone(),
                    item_idx: idx,
                    source: ssource.clone(),
                    query: q,
                    k: *smax,
                });
            }
        }
    }

    let outcomes: Vec<SourceOutcome> = match mode {
        ExecMode::Sequential => tasks.iter().map(|t| dispatch(app, t, subs)).collect(),
        ExecMode::Parallel => std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .iter()
                .map(|t| scope.spawn(move || dispatch(app, t, subs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fan-out worker panicked"))
                .collect()
        }),
    };
    let mut suppl: HashMap<(String, usize, String), SourceOutcome> = HashMap::new();
    let mut fanout_trace: Vec<TraceNode> = Vec::new();
    for (t, o) in tasks.iter().zip(outcomes) {
        fanout_trace.push(TraceNode::leaf(
            format!("supplemental: {} for item #{}", t.source, t.item_idx),
            o.virtual_ms,
            match &o.error {
                Some(e) => format!("query {:?} — error: {e}", t.query),
                None => format!("query {:?} — {} results", t.query, o.items.len()),
            },
        ));
        suppl.insert((t.primary_source.clone(), t.item_idx, t.source.clone()), o);
    }

    // ---- Virtual-time accounting ---------------------------------
    let primary_ms_iter = primary.values().map(|o| o.virtual_ms);
    let suppl_ms_iter = suppl.values().map(|o| o.virtual_ms);
    let (primary_ms, suppl_ms) = match mode {
        ExecMode::Parallel => (
            primary_ms_iter.max().unwrap_or(0),
            suppl_ms_iter.max().unwrap_or(0),
        ),
        ExecMode::Sequential => (primary_ms_iter.sum(), suppl_ms_iter.sum()),
    };
    let total_ms = RECEIVE_MS + primary_ms + suppl_ms + MERGE_MS;

    // ---- Stage 3: merge + format (render to HTML) ----------------
    let impressions: RefCell<Vec<Impression>> = RefCell::new(Vec::new());
    let no_fields = |_: &str| None;
    let mut top_nested = |source: &str, max: usize, item_el: &Element| -> String {
        let Some(outcome) = primary.get(source) else {
            return String::new();
        };
        let mut html = String::new();
        for (idx, item) in outcome.items.iter().take(max).enumerate() {
            record_impression(&impressions, source, idx, item);
            let lookup = |name: &str| item.field(name).map(str::to_string);
            let psource = source;
            let mut inner_nested = |ssource: &str, smax: usize, sitem_el: &Element| -> String {
                let Some(soutcome) = suppl.get(&(psource.to_string(), idx, ssource.to_string()))
                else {
                    return String::new();
                };
                let mut shtml = String::new();
                for (sidx, sitem) in soutcome.items.iter().take(smax).enumerate() {
                    record_impression(&impressions, ssource, sidx, sitem);
                    let slookup = |name: &str| sitem.field(name).map(str::to_string);
                    // Depth > 2 nesting renders empty (the paper
                    // describes exactly one supplemental level).
                    shtml.push_str(&render_element(
                        sitem_el,
                        &app.stylesheet,
                        &slookup,
                        &mut |_, _, _| String::new(),
                    ));
                }
                shtml
            };
            html.push_str(&render_element(
                item_el,
                &app.stylesheet,
                &lookup,
                &mut inner_nested,
            ));
        }
        html
    };
    let html = render_element(
        app.layout.root(),
        &app.stylesheet,
        &no_fields,
        &mut top_nested,
    );

    // ---- Trace ----------------------------------------------------
    let mut stages = vec![TraceNode::leaf(
        "receive query from embedded snippet",
        RECEIVE_MS,
        format!("app {:?}", app.name),
    )];
    for (source, max, _) in &primary_specs {
        let o = &primary[source];
        stages.push(TraceNode::leaf(
            format!("primary: {source}"),
            o.virtual_ms,
            match &o.error {
                Some(e) => format!("error: {e}"),
                None => format!("{} results (max {max})", o.items.len()),
            },
        ));
    }
    if !fanout_trace.is_empty() {
        stages.push(TraceNode::group(
            "supplemental fan-out",
            suppl_ms,
            match mode {
                ExecMode::Parallel => format!("parallel: max of {} fetches", fanout_trace.len()),
                ExecMode::Sequential => {
                    format!("sequential: sum of {} fetches", fanout_trace.len())
                }
            },
            fanout_trace,
        ));
    }
    stages.push(TraceNode::leaf(
        "merge + format HTML",
        MERGE_MS,
        format!("{} bytes", html.len()),
    ));

    QueryResponse {
        html,
        trace: ExecutionTrace {
            app: app.name.clone(),
            query: query.to_string(),
            total_ms,
            cache_hit: false,
            stages,
        },
        virtual_ms: total_ms,
        impressions: impressions.into_inner(),
    }
}

fn dispatch(app: &ApplicationConfig, task: &FanoutTask, subs: Substrates<'_>) -> SourceOutcome {
    match app.source(&task.source) {
        Some(cfg) => run_source(
            &cfg.def,
            &task.query,
            task.k,
            subs,
            app.constraint(&task.source),
        ),
        None => SourceOutcome {
            items: Vec::new(),
            virtual_ms: 0,
            error: Some(format!("source {:?} not configured", task.source)),
        },
    }
}

fn record_impression(
    impressions: &RefCell<Vec<Impression>>,
    source: &str,
    position: usize,
    item: &crate::source::ResultItem,
) {
    let is_ad = item.field("campaign").is_some() && item.field("price_cents").is_some();
    let url = ["url", "target_url", "detail_url", "link"]
        .iter()
        .find_map(|f| item.field(f))
        .map(str::to_string);
    let title = item.field("title").unwrap_or_default().to_string();
    impressions.borrow_mut().push(Impression {
        source: source.to_string(),
        url,
        title,
        position,
        is_ad,
        ad_campaign: item.field("campaign").and_then(|c| c.parse().ok()),
        ad_price_cents: item.field("price_cents").and_then(|c| c.parse().ok()),
    });
}

/// Nested result lists in an item layout: `(source, max_results)`.
fn nested_lists(item_el: &Element) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    item_el.visit(&mut |e| {
        if let ElementKind::ResultList {
            source,
            max_results,
            ..
        } = &e.kind
        {
            out.push((source.clone(), *max_results));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::source::DataSourceDef;
    use symphony_designer::{Canvas, Element};
    use symphony_services::{CallPolicy, LatencyModel, PricingService, SimulatedTransport};
    use symphony_store::ingest::{ingest, DataFormat};
    use symphony_store::{IndexedTable, Store, TenantId};
    use symphony_web::{Corpus, CorpusConfig, SearchConfig, SearchEngine, Topic, Vertical};

    struct World {
        store: Store,
        tenant: TenantId,
        key: symphony_store::AccessKey,
        engine: SearchEngine,
        transport: SimulatedTransport,
    }

    fn world() -> World {
        let mut store = Store::new();
        let (tenant, key) = store.create_tenant("GamerQueen");
        let (table, _) = ingest(
            "inventory",
            "title,genre,description,detail_url,price\n\
             Galactic Raiders,shooter,a fast space shooter,http://shop.example.com/gr,49.99\n\
             Farm Story,sim,calm farming,http://shop.example.com/fs,19.99\n",
            DataFormat::Csv,
        )
        .unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
            .unwrap();
        store.space_mut(tenant, &key).unwrap().put_table(indexed);

        let corpus = Corpus::generate(
            &CorpusConfig {
                sites_per_topic: 2,
                pages_per_site: 4,
                ..CorpusConfig::default()
            }
            .with_entities(Topic::Games, ["Galactic Raiders", "Farm Story"]),
        );
        let engine = SearchEngine::new(corpus);
        let mut transport = SimulatedTransport::new(5);
        transport.register("pricing", Box::new(PricingService), LatencyModel::fast());
        World {
            store,
            tenant,
            key,
            engine,
            transport,
        }
    }

    fn gamer_queen(world: &World) -> ApplicationConfig {
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas
            .insert(root, Element::search_box("Search games…"))
            .unwrap();
        let item = Element::column(vec![
            Element::link_field("detail_url", "{title}"),
            Element::text("{description}"),
            Element::result_list(
                "reviews",
                Element::column(vec![
                    Element::link_field("url", "{title}"),
                    Element::rich_text("{snippet}"),
                ]),
                3,
            ),
            Element::result_list("pricing", Element::text("${price} ({currency})"), 1),
        ]);
        canvas
            .insert(root, Element::result_list("inventory", item, 10))
            .unwrap();

        AppBuilder::new("GamerQueen", world.tenant)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "reviews",
                DataSourceDef::WebVertical {
                    vertical: Vertical::Web,
                    config: SearchConfig::default().restrict_to([
                        "gamespot.com",
                        "ign.com",
                        "teamxbox.com",
                    ]),
                },
            )
            .source(
                "pricing",
                DataSourceDef::Service {
                    endpoint: "pricing".into(),
                    operation: "/price".into(),
                    item_param: "item".into(),
                    policy: CallPolicy::default(),
                },
            )
            .supplemental("reviews", "{title} review")
            .supplemental("pricing", "{title}")
            .build()
            .unwrap()
    }

    fn subs(world: &World) -> Substrates<'_> {
        Substrates {
            space: Some(world.store.space(world.tenant, &world.key).unwrap()),
            engine: Some(&world.engine),
            transport: Some(&world.transport),
            ads: None,
        }
    }

    #[test]
    fn end_to_end_gamer_queen_query() {
        let w = world();
        let app = gamer_queen(&w);
        let resp = execute(&app, "space shooter", subs(&w), ExecMode::Parallel);
        // Primary hit rendered with its fields.
        assert!(resp.html.contains("Galactic Raiders"), "{}", resp.html);
        assert!(resp.html.contains("href=\"http://shop.example.com/gr\""));
        // Supplemental review from a restricted site.
        assert!(resp.html.contains("review"), "{}", resp.html);
        // Pricing service result.
        assert!(resp.html.contains("(USD)"), "{}", resp.html);
        // Trace stages present.
        assert!(resp.trace.find("receive query").is_some());
        assert!(resp.trace.find("primary: inventory").is_some());
        assert!(resp.trace.find("supplemental fan-out").is_some());
        assert!(resp.trace.find("merge + format").is_some());
    }

    #[test]
    fn parallel_latency_is_max_sequential_is_sum() {
        let w = world();
        let app = gamer_queen(&w);
        let par = execute(&app, "space shooter", subs(&w), ExecMode::Parallel);
        let seq = execute(&app, "space shooter", subs(&w), ExecMode::Sequential);
        assert!(
            seq.virtual_ms > par.virtual_ms,
            "sequential {} must exceed parallel {}",
            seq.virtual_ms,
            par.virtual_ms
        );
        // Parallel bound: receive + max(primary) + max(suppl) + merge.
        assert!(par.virtual_ms <= RECEIVE_MS + 35 + 600 + MERGE_MS);
    }

    #[test]
    fn impressions_are_recorded_per_rendered_result() {
        let w = world();
        let app = gamer_queen(&w);
        let resp = execute(&app, "space shooter", subs(&w), ExecMode::Parallel);
        assert!(!resp.impressions.is_empty());
        let inventory_imps = resp
            .impressions
            .iter()
            .filter(|i| i.source == "inventory")
            .count();
        assert_eq!(inventory_imps, 1); // one matching game
        assert!(resp.impressions.iter().any(|i| i.source == "reviews"));
        assert!(resp.impressions.iter().all(|i| !i.is_ad));
    }

    #[test]
    fn no_results_renders_shell() {
        let w = world();
        let app = gamer_queen(&w);
        let resp = execute(&app, "zzzqqq", subs(&w), ExecMode::Parallel);
        assert!(resp.html.contains("sym-search"));
        assert!(resp.impressions.is_empty());
        assert!(resp.trace.find("supplemental fan-out").is_none());
    }

    #[test]
    fn missing_substrate_degrades_gracefully() {
        let w = world();
        let app = gamer_queen(&w);
        let partial = Substrates {
            space: Some(w.store.space(w.tenant, &w.key).unwrap()),
            engine: None,
            transport: Some(&w.transport),
            ads: None,
        };
        let resp = execute(&app, "space shooter", partial, ExecMode::Parallel);
        // The primary result still renders; reviews report an error.
        assert!(resp.html.contains("Galactic Raiders"));
        let fanout = resp.trace.find("supplemental: reviews").unwrap();
        assert!(fanout.detail.contains("error"));
    }

    #[test]
    fn supplemental_queries_are_per_item() {
        let w = world();
        let app = gamer_queen(&w);
        // "game" in description? Query matching both items:
        let resp = execute(&app, "shooter farming", subs(&w), ExecMode::Parallel);
        let fanouts: Vec<&str> = resp
            .trace
            .find("supplemental fan-out")
            .map(|n| n.children.iter().map(|c| c.detail.as_str()).collect())
            .unwrap_or_default();
        assert!(fanouts
            .iter()
            .any(|d| d.contains("Galactic Raiders review")));
        assert!(fanouts.iter().any(|d| d.contains("Farm Story review")));
    }
}
