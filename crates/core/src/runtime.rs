//! Query execution (paper §II-C and Fig. 2).
//!
//! The flow the paper describes, end to end:
//!
//! 1. the embedded JavaScript forwards the customer's query;
//! 2. primary content sources are queried with it;
//! 3. supplemental sources are queried with templates over fields of
//!    each primary result — those fetches **fan out in parallel**
//!    (std scoped threads), one of the platform's core "heavy
//!    lifting" claims (ablated in experiment E1);
//! 4. everything merges into the designed layout and renders to HTML;
//! 5. the HTML goes back to the page.
//!
//! Latency is *virtual*: each source reports virtual milliseconds, and
//! the runtime combines them as `max` under parallel execution or
//! `sum` under the sequential ablation.

use crate::admission::{FanoutScheduler, Lane};
use crate::app::{ApplicationConfig, ResiliencePolicy};
use crate::monetize::Impression;
use crate::source::{run_source_ctx, DataSourceDef, SourceCtx, SourceOutcome, Substrates};
use crate::source_cache::{FetchStatus, Fetched, SourceCache};
use crate::trace::{ExecutionTrace, TraceNode};
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

use symphony_designer::{render_element, Element, ElementKind};
use symphony_services::BreakerRegistry;

/// Fan-out execution mode (E1 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Supplemental fetches run concurrently; virtual time is the max.
    Parallel,
    /// Fetches run one after another; virtual time is the sum.
    Sequential,
}

/// Fixed virtual cost of receiving/dispatching the snippet request.
pub const RECEIVE_MS: u32 = 1;
/// Fixed virtual cost of merging and formatting the response.
pub const MERGE_MS: u32 = 2;
/// Cap on OS threads a parallel fan-out may use. Virtual-time
/// semantics (`max` combining) are unchanged; the cap only bounds
/// real resource use per query.
pub const MAX_FANOUT_WORKERS: usize = 16;
/// Flat virtual cost of a shed (admission-refused) response: cheaper
/// than a cache hit, and no source, breaker, or cache is touched.
pub const SHED_MS: u32 = 1;

/// Execution context the hosting layer threads into the runtime: the
/// platform's virtual clock and its shared circuit breakers. The
/// default (`now = 0`, no breakers) reproduces standalone execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecCtx<'a> {
    /// Virtual time at which the query arrives.
    pub now_ms: u64,
    /// Shared per-endpoint circuit breakers.
    pub breakers: Option<&'a BreakerRegistry>,
    /// The platform's shared L2 source-result cache. `None` executes
    /// every fetch directly (standalone execution, ablations).
    pub source_cache: Option<&'a SourceCache>,
    /// The platform's shared fan-out worker pool. `None` gives every
    /// query the full [`MAX_FANOUT_WORKERS`] cap (standalone
    /// execution); with a scheduler, concurrent queries receive
    /// weighted fair shares of the pool instead.
    pub scheduler: Option<&'a FanoutScheduler>,
    /// Scheduling lane (interactive serving vs background work).
    pub lane: Lane,
}

/// The rendered response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Final HTML injected into the host page.
    pub html: String,
    /// Stage-by-stage trace (drives Fig. 2).
    pub trace: ExecutionTrace,
    /// Total virtual latency.
    pub virtual_ms: u32,
    /// Impressions rendered (consumed by the monetization log).
    pub impressions: Vec<Impression>,
}

/// A supplemental fetch task.
struct FanoutTask {
    primary_source: String,
    item_idx: usize,
    source: String,
    query: String,
    k: usize,
}

/// Execute `query` against an application over the given substrates.
pub fn execute(
    app: &ApplicationConfig,
    query: &str,
    subs: Substrates<'_>,
    mode: ExecMode,
) -> QueryResponse {
    execute_with_overrides(app, query, subs, mode, &HashMap::new())
}

/// Like [`execute`], with pre-resolved outcomes for some primary
/// sources. The hosting layer uses this for
/// [`DataSourceDef::ComposedApp`](crate::source::DataSourceDef::ComposedApp)
/// sources, whose results come from recursively querying another
/// hosted application.
pub fn execute_with_overrides(
    app: &ApplicationConfig,
    query: &str,
    subs: Substrates<'_>,
    mode: ExecMode,
    overrides: &HashMap<String, SourceOutcome>,
) -> QueryResponse {
    execute_resilient(app, query, subs, mode, overrides, &ExecCtx::default())
}

/// The remaining fetch budget when `consumed` virtual ms of source
/// work already happened: the per-source soft budget, further capped
/// by what the query deadline leaves after the fixed receive/merge
/// costs. `None` = unlimited.
fn budget_for(policy: &ResiliencePolicy, consumed: u32) -> Option<u32> {
    let from_deadline = (policy.query_deadline_ms != u32::MAX).then(|| {
        policy
            .query_deadline_ms
            .saturating_sub(RECEIVE_MS + MERGE_MS + consumed)
    });
    let from_source =
        (policy.per_source_budget_ms != u32::MAX).then_some(policy.per_source_budget_ms);
    match (from_deadline, from_source) {
        (None, b) => b,
        (a, None) => a,
        (Some(a), Some(b)) => Some(a.min(b)),
    }
}

/// One source fetch, routed through the platform's L2 source cache
/// when one is attached; executed directly otherwise.
#[allow(clippy::too_many_arguments)]
fn cached_fetch(
    def: &DataSourceDef,
    owner: symphony_store::TenantId,
    query: &str,
    k: usize,
    subs: Substrates<'_>,
    constraint: Option<&symphony_store::Filter>,
    sctx: &SourceCtx<'_>,
    cache: Option<&SourceCache>,
) -> Fetched {
    match cache {
        Some(c) => c.fetch(def, Some(owner), query, k, constraint, sctx, || {
            run_source_ctx(def, query, k, subs, constraint, sctx)
        }),
        None => Fetched::uncached(run_source_ctx(def, query, k, subs, constraint, sctx)),
    }
}

/// Trace-detail marker for fetches the L2 cache satisfied.
fn status_suffix(status: FetchStatus) -> &'static str {
    match status {
        FetchStatus::Hit => " (L2 hit)",
        FetchStatus::Coalesced => " (L2 coalesced)",
        FetchStatus::Uncached | FetchStatus::Miss => "",
    }
}

/// Soft outcome for a fan-out task whose source panicked: the slot
/// degrades, the query survives.
fn panic_outcome(source: &str, payload: &(dyn std::any::Any + Send)) -> SourceOutcome {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_string());
    SourceOutcome {
        items: Vec::new(),
        virtual_ms: 0,
        error: Some(format!("source {source:?} panicked: {msg}")),
        attempts: 1,
    }
}

/// Like [`execute_with_overrides`], under an execution context: the
/// virtual clock position anchors deterministic latency draws and
/// fault windows, the app's [`ResiliencePolicy`] bounds deadlines /
/// budgets / retries, and the shared circuit breakers are consulted
/// for every service fetch.
pub fn execute_resilient(
    app: &ApplicationConfig,
    query: &str,
    subs: Substrates<'_>,
    mode: ExecMode,
    overrides: &HashMap<String, SourceOutcome>,
    ctx: &ExecCtx<'_>,
) -> QueryResponse {
    let policy = app.resilience;
    // The query-wide retry pool; `None` = unlimited.
    let mut retry_pool: Option<u32> =
        (policy.max_total_retries != u32::MAX).then_some(policy.max_total_retries);

    // ---- Stage 1: primary content -------------------------------
    let primary_specs = app.primary_lists();
    let mut primary: HashMap<String, Fetched> = HashMap::new();
    let mut consumed_primary: u32 = 0; // sequential-mode accumulation
    for (source, max, _) in &primary_specs {
        if primary.contains_key(source) {
            continue;
        }
        let fetched = if let Some(pre) = overrides.get(source) {
            Fetched::uncached(pre.clone())
        } else {
            match app.source(source) {
                Some(cfg) => {
                    let consumed = match mode {
                        ExecMode::Parallel => 0,
                        ExecMode::Sequential => consumed_primary,
                    };
                    let sctx = SourceCtx {
                        now_ms: ctx.now_ms + (RECEIVE_MS + consumed) as u64,
                        budget_ms: budget_for(&policy, consumed),
                        retries_allowed: retry_pool,
                        breakers: ctx.breakers,
                    };
                    cached_fetch(
                        &cfg.def,
                        app.owner,
                        query,
                        *max,
                        subs,
                        app.constraint(source),
                        &sctx,
                        ctx.source_cache,
                    )
                }
                None => Fetched::uncached(SourceOutcome {
                    items: Vec::new(),
                    virtual_ms: 0,
                    error: Some(format!("source {source:?} not configured")),
                    attempts: 0,
                }),
            }
        };
        // Deduct retries in configuration order (primaries execute in
        // a plain loop, so this is deterministic in both modes). Cache
        // hits charge nothing: the executing fetch already paid.
        if let Some(pool) = retry_pool.as_mut() {
            *pool = pool.saturating_sub(fetched.attempts_charged.saturating_sub(1));
        }
        consumed_primary += fetched.charged_ms;
        primary.insert(source.clone(), fetched);
    }
    let primary_ms = {
        let iter = primary.values().map(|f| f.charged_ms);
        match mode {
            ExecMode::Parallel => iter.max().unwrap_or(0),
            ExecMode::Sequential => iter.sum(),
        }
    };

    // ---- Stage 2: supplemental fan-out ---------------------------
    let mut tasks: Vec<FanoutTask> = Vec::new();
    for (psource, max, item_el) in &primary_specs {
        let outcome = &primary[psource].outcome;
        let nested = nested_lists(item_el);
        if nested.is_empty() {
            continue;
        }
        for (idx, item) in outcome.items.iter().take(*max).enumerate() {
            let lookup = |name: &str| item.field(name).map(str::to_string);
            for (ssource, smax) in &nested {
                let Some(binding) = app.binding(ssource) else {
                    continue; // validated configs always have one
                };
                let q = binding.query_template.render(&lookup);
                if q.trim().is_empty() {
                    continue;
                }
                tasks.push(FanoutTask {
                    primary_source: psource.clone(),
                    item_idx: idx,
                    source: ssource.clone(),
                    query: q,
                    k: *smax,
                });
            }
        }
    }

    // Actual OS threads the parallel fan-out used (scheduler grant or
    // the static cap); surfaces in the trace for the Fig.-2 report.
    let mut pool_workers = 0usize;
    let outcomes: Vec<Fetched> = match mode {
        ExecMode::Sequential => {
            let mut out = Vec::with_capacity(tasks.len());
            let mut consumed = primary_ms;
            for t in &tasks {
                let sctx = SourceCtx {
                    now_ms: ctx.now_ms + (RECEIVE_MS + consumed) as u64,
                    budget_ms: budget_for(&policy, consumed),
                    retries_allowed: retry_pool,
                    breakers: ctx.breakers,
                };
                let o = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    dispatch(app, t, subs, &sctx, ctx.source_cache)
                }))
                .unwrap_or_else(|p| Fetched::uncached(panic_outcome(&t.source, p.as_ref())));
                if let Some(pool) = retry_pool.as_mut() {
                    *pool = pool.saturating_sub(o.attempts_charged.saturating_sub(1));
                }
                consumed += o.charged_ms;
                out.push(o);
            }
            out
        }
        ExecMode::Parallel => {
            // All fan-out fetches start together, once the primaries
            // are in: same virtual start time and deadline budget.
            let n = tasks.len();
            let start_ms = ctx.now_ms + (RECEIVE_MS + primary_ms) as u64;
            let budget = budget_for(&policy, primary_ms);
            // Pre-split the retry pool across tasks: sharing one
            // mutable pool between racing workers would make grants
            // depend on thread scheduling.
            let grants: Vec<Option<u32>> = match retry_pool {
                None => vec![None; n],
                Some(pool) => (0..n as u32)
                    .map(|i| Some(pool / n as u32 + u32::from(i < pool % n as u32)))
                    .collect(),
            };
            // Bounded chunk pool: at most MAX_FANOUT_WORKERS OS
            // threads pull tasks off a shared index. One panicking
            // source degrades its own slot only. When the platform's
            // shared scheduler is attached, the worker count is this
            // tenant's weighted fair share of the pool instead of the
            // full cap, so concurrent queries from a burst tenant
            // cannot monopolize fan-out threads. Worker count never
            // affects virtual time (max-combining), only real
            // parallelism.
            let grant = ctx.scheduler.map(|s| {
                s.acquire(
                    app.owner.0 as u64,
                    app.admission.weight,
                    n.min(MAX_FANOUT_WORKERS),
                    ctx.lane,
                )
            });
            let workers = grant
                .as_ref()
                .map_or(n.min(MAX_FANOUT_WORKERS), |g| g.workers());
            pool_workers = workers;
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<Fetched>> = (0..n).map(|_| None).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let tasks = &tasks;
                        let grants = &grants;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= tasks.len() {
                                    break;
                                }
                                let t = &tasks[i];
                                let sctx = SourceCtx {
                                    now_ms: start_ms,
                                    budget_ms: budget,
                                    retries_allowed: grants[i],
                                    breakers: ctx.breakers,
                                };
                                let o = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    dispatch(app, t, subs, &sctx, ctx.source_cache)
                                }))
                                .unwrap_or_else(|p| {
                                    Fetched::uncached(panic_outcome(&t.source, p.as_ref()))
                                });
                                local.push((i, o));
                            }
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, o) in h.join().expect("fan-out pool worker died") {
                        slots[i] = Some(o);
                    }
                }
            });
            let outcomes: Vec<Fetched> = slots
                .into_iter()
                .map(|o| o.expect("every fan-out task ran"))
                .collect();
            if let Some(pool) = retry_pool.as_mut() {
                for o in &outcomes {
                    *pool = pool.saturating_sub(o.attempts_charged.saturating_sub(1));
                }
            }
            outcomes
        }
    };
    let mut suppl: HashMap<(String, usize, String), Fetched> = HashMap::new();
    let mut fanout_trace: Vec<TraceNode> = Vec::new();
    for (t, o) in tasks.iter().zip(outcomes) {
        fanout_trace.push(TraceNode::leaf(
            format!("supplemental: {} for item #{}", t.source, t.item_idx),
            o.charged_ms,
            match &o.outcome.error {
                Some(e) => format!(
                    "query {:?} — error: {e}{}",
                    t.query,
                    status_suffix(o.status)
                ),
                None => format!(
                    "query {:?} — {} results{}",
                    t.query,
                    o.outcome.items.len(),
                    status_suffix(o.status)
                ),
            },
        ));
        suppl.insert((t.primary_source.clone(), t.item_idx, t.source.clone()), o);
    }

    // ---- Virtual-time accounting ---------------------------------
    let suppl_ms_iter = suppl.values().map(|f| f.charged_ms);
    let suppl_ms = match mode {
        ExecMode::Parallel => suppl_ms_iter.max().unwrap_or(0),
        ExecMode::Sequential => suppl_ms_iter.sum(),
    };
    let total_ms = RECEIVE_MS + primary_ms + suppl_ms + MERGE_MS;
    let error_count = primary
        .values()
        .chain(suppl.values())
        .filter(|f| f.outcome.error.is_some())
        .count() as u32;
    let (mut l2_hits, mut l2_misses, mut l2_coalesced) = (0u32, 0u32, 0u32);
    for f in primary.values().chain(suppl.values()) {
        match f.status {
            FetchStatus::Hit => l2_hits += 1,
            FetchStatus::Miss => l2_misses += 1,
            FetchStatus::Coalesced => l2_coalesced += 1,
            FetchStatus::Uncached => {}
        }
    }

    // ---- Stage 3: merge + format (render to HTML) ----------------
    let impressions: RefCell<Vec<Impression>> = RefCell::new(Vec::new());
    let no_fields = |_: &str| None;
    let mut top_nested = |source: &str, max: usize, item_el: &Element| -> String {
        let Some(outcome) = primary.get(source).map(|f| &f.outcome) else {
            return String::new();
        };
        let mut html = String::new();
        for (idx, item) in outcome.items.iter().take(max).enumerate() {
            record_impression(&impressions, source, idx, item);
            let lookup = |name: &str| item.field(name).map(str::to_string);
            let psource = source;
            let mut inner_nested = |ssource: &str, smax: usize, sitem_el: &Element| -> String {
                let Some(soutcome) = suppl
                    .get(&(psource.to_string(), idx, ssource.to_string()))
                    .map(|f| &f.outcome)
                else {
                    return String::new();
                };
                let mut shtml = String::new();
                for (sidx, sitem) in soutcome.items.iter().take(smax).enumerate() {
                    record_impression(&impressions, ssource, sidx, sitem);
                    let slookup = |name: &str| sitem.field(name).map(str::to_string);
                    // Depth > 2 nesting renders empty (the paper
                    // describes exactly one supplemental level).
                    shtml.push_str(&render_element(
                        sitem_el,
                        &app.stylesheet,
                        &slookup,
                        &mut |_, _, _| String::new(),
                    ));
                }
                shtml
            };
            html.push_str(&render_element(
                item_el,
                &app.stylesheet,
                &lookup,
                &mut inner_nested,
            ));
        }
        html
    };
    let html = render_element(
        app.layout.root(),
        &app.stylesheet,
        &no_fields,
        &mut top_nested,
    );

    // ---- Trace ----------------------------------------------------
    let mut stages = vec![TraceNode::leaf(
        "receive query from embedded snippet",
        RECEIVE_MS,
        format!("app {:?}", app.name),
    )];
    for (source, max, _) in &primary_specs {
        let f = &primary[source];
        stages.push(TraceNode::leaf(
            format!("primary: {source}"),
            f.charged_ms,
            match &f.outcome.error {
                Some(e) => format!("error: {e}{}", status_suffix(f.status)),
                None => format!(
                    "{} results (max {max}){}",
                    f.outcome.items.len(),
                    status_suffix(f.status)
                ),
            },
        ));
    }
    if !fanout_trace.is_empty() {
        stages.push(TraceNode::group(
            "supplemental fan-out",
            suppl_ms,
            match mode {
                ExecMode::Parallel => format!(
                    "parallel: max of {} fetches ({} workers)",
                    fanout_trace.len(),
                    pool_workers
                ),
                ExecMode::Sequential => {
                    format!("sequential: sum of {} fetches", fanout_trace.len())
                }
            },
            fanout_trace,
        ));
    }
    stages.push(TraceNode::leaf(
        "merge + format HTML",
        MERGE_MS,
        format!("{} bytes", html.len()),
    ));

    QueryResponse {
        html,
        trace: ExecutionTrace {
            app: app.name.clone(),
            query: query.to_string(),
            total_ms,
            cache_hit: false,
            error_count,
            degraded: error_count > 0,
            shed: false,
            l2_hits,
            l2_misses,
            l2_coalesced,
            stages,
        },
        virtual_ms: total_ms,
        impressions: impressions.into_inner(),
    }
}

/// Build the cheap degraded response for a query shed by admission
/// control: the layout shell renders with every result slot empty —
/// the same path a fully errored query takes — at a flat [`SHED_MS`]
/// cost, without consulting any source, breaker, or cache. Each
/// primary slot carries a `(shed)` marker in its trace detail, like
/// the `(L2 hit)` suffixes on served fetches.
pub fn shed_response(app: &ApplicationConfig, query: &str, reason: &str) -> QueryResponse {
    let no_fields = |_: &str| None;
    let mut empty_nested = |_: &str, _: usize, _: &Element| String::new();
    let html = render_element(
        app.layout.root(),
        &app.stylesheet,
        &no_fields,
        &mut empty_nested,
    );
    let mut stages = vec![TraceNode::leaf(
        "admission control",
        SHED_MS,
        format!("shed: {reason}"),
    )];
    for (source, _, _) in app.primary_lists() {
        stages.push(TraceNode::leaf(
            format!("primary: {source}"),
            0,
            "not fetched (shed)",
        ));
    }
    stages.push(TraceNode::leaf(
        "merge + format HTML",
        0,
        format!("{} bytes (empty shell)", html.len()),
    ));
    QueryResponse {
        html,
        trace: ExecutionTrace {
            app: app.name.clone(),
            query: query.to_string(),
            total_ms: SHED_MS,
            cache_hit: false,
            error_count: 0,
            degraded: true,
            shed: true,
            l2_hits: 0,
            l2_misses: 0,
            l2_coalesced: 0,
            stages,
        },
        virtual_ms: SHED_MS,
        impressions: Vec::new(),
    }
}

fn dispatch(
    app: &ApplicationConfig,
    task: &FanoutTask,
    subs: Substrates<'_>,
    sctx: &SourceCtx<'_>,
    cache: Option<&SourceCache>,
) -> Fetched {
    match app.source(&task.source) {
        Some(cfg) => cached_fetch(
            &cfg.def,
            app.owner,
            &task.query,
            task.k,
            subs,
            app.constraint(&task.source),
            sctx,
            cache,
        ),
        None => Fetched::uncached(SourceOutcome {
            items: Vec::new(),
            virtual_ms: 0,
            error: Some(format!("source {:?} not configured", task.source)),
            attempts: 0,
        }),
    }
}

fn record_impression(
    impressions: &RefCell<Vec<Impression>>,
    source: &str,
    position: usize,
    item: &crate::source::ResultItem,
) {
    let is_ad = item.field("campaign").is_some() && item.field("price_cents").is_some();
    let url = ["url", "target_url", "detail_url", "link"]
        .iter()
        .find_map(|f| item.field(f))
        .map(str::to_string);
    let title = item.field("title").unwrap_or_default().to_string();
    impressions.borrow_mut().push(Impression {
        source: source.to_string(),
        url,
        title,
        position,
        is_ad,
        ad_campaign: item.field("campaign").and_then(|c| c.parse().ok()),
        ad_price_cents: item.field("price_cents").and_then(|c| c.parse().ok()),
    });
}

/// Nested result lists in an item layout: `(source, max_results)`.
fn nested_lists(item_el: &Element) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    item_el.visit(&mut |e| {
        if let ElementKind::ResultList {
            source,
            max_results,
            ..
        } = &e.kind
        {
            out.push((source.clone(), *max_results));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::source::DataSourceDef;
    use symphony_designer::{Canvas, Element};
    use symphony_services::{CallPolicy, LatencyModel, PricingService, SimulatedTransport};
    use symphony_store::ingest::{ingest, DataFormat};
    use symphony_store::{IndexedTable, Store, TenantId};
    use symphony_web::{Corpus, CorpusConfig, SearchConfig, SearchEngine, Topic, Vertical};

    struct World {
        store: Store,
        tenant: TenantId,
        key: symphony_store::AccessKey,
        engine: SearchEngine,
        transport: SimulatedTransport,
    }

    fn world() -> World {
        let mut store = Store::new();
        let (tenant, key) = store.create_tenant("GamerQueen");
        let (table, _) = ingest(
            "inventory",
            "title,genre,description,detail_url,price\n\
             Galactic Raiders,shooter,a fast space shooter,http://shop.example.com/gr,49.99\n\
             Farm Story,sim,calm farming,http://shop.example.com/fs,19.99\n",
            DataFormat::Csv,
        )
        .unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
            .unwrap();
        store.space_mut(tenant, &key).unwrap().put_table(indexed);

        let corpus = Corpus::generate(
            &CorpusConfig {
                sites_per_topic: 2,
                pages_per_site: 4,
                ..CorpusConfig::default()
            }
            .with_entities(Topic::Games, ["Galactic Raiders", "Farm Story"]),
        );
        let engine = SearchEngine::new(corpus);
        let mut transport = SimulatedTransport::new(5);
        transport.register("pricing", Box::new(PricingService), LatencyModel::fast());
        World {
            store,
            tenant,
            key,
            engine,
            transport,
        }
    }

    fn gamer_queen(world: &World) -> ApplicationConfig {
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas
            .insert(root, Element::search_box("Search games…"))
            .unwrap();
        let item = Element::column(vec![
            Element::link_field("detail_url", "{title}"),
            Element::text("{description}"),
            Element::result_list(
                "reviews",
                Element::column(vec![
                    Element::link_field("url", "{title}"),
                    Element::rich_text("{snippet}"),
                ]),
                3,
            ),
            Element::result_list("pricing", Element::text("${price} ({currency})"), 1),
        ]);
        canvas
            .insert(root, Element::result_list("inventory", item, 10))
            .unwrap();

        AppBuilder::new("GamerQueen", world.tenant)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "reviews",
                DataSourceDef::WebVertical {
                    vertical: Vertical::Web,
                    config: SearchConfig::default().restrict_to([
                        "gamespot.com",
                        "ign.com",
                        "teamxbox.com",
                    ]),
                },
            )
            .source(
                "pricing",
                DataSourceDef::Service {
                    endpoint: "pricing".into(),
                    operation: "/price".into(),
                    item_param: "item".into(),
                    policy: CallPolicy::default(),
                },
            )
            .supplemental("reviews", "{title} review")
            .supplemental("pricing", "{title}")
            .build()
            .unwrap()
    }

    fn subs(world: &World) -> Substrates<'_> {
        Substrates {
            space: Some(world.store.space(world.tenant, &world.key).unwrap()),
            engine: Some(&world.engine),
            transport: Some(&world.transport),
            ads: None,
            scatter: None,
        }
    }

    #[test]
    fn end_to_end_gamer_queen_query() {
        let w = world();
        let app = gamer_queen(&w);
        let resp = execute(&app, "space shooter", subs(&w), ExecMode::Parallel);
        // Primary hit rendered with its fields.
        assert!(resp.html.contains("Galactic Raiders"), "{}", resp.html);
        assert!(resp.html.contains("href=\"http://shop.example.com/gr\""));
        // Supplemental review from a restricted site.
        assert!(resp.html.contains("review"), "{}", resp.html);
        // Pricing service result.
        assert!(resp.html.contains("(USD)"), "{}", resp.html);
        // Trace stages present.
        assert!(resp.trace.find("receive query").is_some());
        assert!(resp.trace.find("primary: inventory").is_some());
        assert!(resp.trace.find("supplemental fan-out").is_some());
        assert!(resp.trace.find("merge + format").is_some());
    }

    #[test]
    fn parallel_latency_is_max_sequential_is_sum() {
        let w = world();
        let app = gamer_queen(&w);
        let par = execute(&app, "space shooter", subs(&w), ExecMode::Parallel);
        let seq = execute(&app, "space shooter", subs(&w), ExecMode::Sequential);
        assert!(
            seq.virtual_ms > par.virtual_ms,
            "sequential {} must exceed parallel {}",
            seq.virtual_ms,
            par.virtual_ms
        );
        // Parallel bound: receive + max(primary) + max(suppl) + merge.
        assert!(par.virtual_ms <= RECEIVE_MS + 35 + 600 + MERGE_MS);
    }

    #[test]
    fn impressions_are_recorded_per_rendered_result() {
        let w = world();
        let app = gamer_queen(&w);
        let resp = execute(&app, "space shooter", subs(&w), ExecMode::Parallel);
        assert!(!resp.impressions.is_empty());
        let inventory_imps = resp
            .impressions
            .iter()
            .filter(|i| i.source == "inventory")
            .count();
        assert_eq!(inventory_imps, 1); // one matching game
        assert!(resp.impressions.iter().any(|i| i.source == "reviews"));
        assert!(resp.impressions.iter().all(|i| !i.is_ad));
    }

    #[test]
    fn no_results_renders_shell() {
        let w = world();
        let app = gamer_queen(&w);
        let resp = execute(&app, "zzzqqq", subs(&w), ExecMode::Parallel);
        assert!(resp.html.contains("sym-search"));
        assert!(resp.impressions.is_empty());
        assert!(resp.trace.find("supplemental fan-out").is_none());
    }

    #[test]
    fn missing_substrate_degrades_gracefully() {
        let w = world();
        let app = gamer_queen(&w);
        let partial = Substrates {
            space: Some(w.store.space(w.tenant, &w.key).unwrap()),
            engine: None,
            transport: Some(&w.transport),
            ads: None,
            scatter: None,
        };
        let resp = execute(&app, "space shooter", partial, ExecMode::Parallel);
        // The primary result still renders; reviews report an error.
        assert!(resp.html.contains("Galactic Raiders"));
        let fanout = resp.trace.find("supplemental: reviews").unwrap();
        assert!(fanout.detail.contains("error"));
    }

    /// Service that tracks peak concurrent in-flight handlers.
    struct ProbeService {
        current: std::sync::Arc<AtomicUsize>,
        peak: std::sync::Arc<AtomicUsize>,
    }

    impl symphony_services::Service for ProbeService {
        fn describe(&self) -> symphony_services::ServiceDescription {
            symphony_services::ServiceDescription {
                name: "probe".into(),
                protocol: symphony_services::Protocol::Rest,
                operations: vec![symphony_services::OperationDesc {
                    name: "/price".into(),
                    params: vec!["item".into()],
                    returns: vec!["item".into(), "price".into()],
                }],
            }
        }

        fn handle(
            &self,
            request: &symphony_services::ServiceRequest,
        ) -> Result<symphony_services::ServiceResponse, symphony_services::ServiceFault> {
            let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            // Real (not virtual) dwell so workers genuinely overlap.
            std::thread::sleep(std::time::Duration::from_millis(2));
            self.current.fetch_sub(1, Ordering::SeqCst);
            Ok(symphony_services::ServiceResponse::single(&[
                ("item", request.param("item").unwrap_or("?")),
                ("price", "1.00"),
            ]))
        }
    }

    /// Service that always panics (misbehaving third-party code).
    struct PanicService;

    impl symphony_services::Service for PanicService {
        fn describe(&self) -> symphony_services::ServiceDescription {
            symphony_services::ServiceDescription {
                name: "unstable".into(),
                protocol: symphony_services::Protocol::Rest,
                operations: vec![],
            }
        }

        fn handle(
            &self,
            _request: &symphony_services::ServiceRequest,
        ) -> Result<symphony_services::ServiceResponse, symphony_services::ServiceFault> {
            panic!("unstable service blew up");
        }
    }

    /// A wide app: `rows` catalog items, each with one service
    /// supplemental — `rows` fan-out tasks.
    fn wide_app(
        rows: usize,
        endpoint: &str,
    ) -> (
        Store,
        TenantId,
        symphony_store::AccessKey,
        ApplicationConfig,
    ) {
        let mut store = Store::new();
        let (tenant, key) = store.create_tenant("Wide");
        let mut csv = String::from("title,description\n");
        for i in 0..rows {
            csv.push_str(&format!("Gadget {i},a shiny gadget\n"));
        }
        let (table, _) = ingest("catalog", &csv, DataFormat::Csv).unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("description", 1.0)])
            .unwrap();
        store.space_mut(tenant, &key).unwrap().put_table(indexed);

        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        let item = Element::column(vec![
            Element::text("{title}"),
            Element::result_list(endpoint, Element::text("{price}"), 1),
        ]);
        canvas
            .insert(root, Element::result_list("catalog", item, rows))
            .unwrap();
        let app = AppBuilder::new("Wide", tenant)
            .layout(canvas)
            .source(
                "catalog",
                DataSourceDef::Proprietary {
                    table: "catalog".into(),
                },
            )
            .source(
                endpoint,
                DataSourceDef::Service {
                    endpoint: endpoint.into(),
                    operation: "/price".into(),
                    item_param: "item".into(),
                    policy: CallPolicy::default(),
                },
            )
            .supplemental(endpoint, "{title}")
            .build()
            .unwrap();
        (store, tenant, key, app)
    }

    #[test]
    fn fanout_pool_is_bounded_with_many_tasks() {
        let current = std::sync::Arc::new(AtomicUsize::new(0));
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        let mut transport = SimulatedTransport::new(7);
        transport.register(
            "probe",
            Box::new(ProbeService {
                current: current.clone(),
                peak: peak.clone(),
            }),
            LatencyModel::fast(),
        );
        let (store, tenant, key, app) = wide_app(120, "probe");
        let subs = Substrates {
            space: Some(store.space(tenant, &key).unwrap()),
            engine: None,
            transport: Some(&transport),
            ads: None,
            scatter: None,
        };
        let resp = execute(&app, "gadget", subs, ExecMode::Parallel);
        let fanout = resp.trace.find("supplemental fan-out").unwrap();
        assert!(
            fanout.children.len() >= 100,
            "expected a wide fan-out, got {}",
            fanout.children.len()
        );
        assert!(
            peak.load(Ordering::SeqCst) <= MAX_FANOUT_WORKERS,
            "peak concurrency {} exceeded the {MAX_FANOUT_WORKERS}-worker cap",
            peak.load(Ordering::SeqCst)
        );
        // Virtual time still combines as max, not sum.
        assert!(
            resp.virtual_ms <= RECEIVE_MS + 5 + 10 + MERGE_MS,
            "parallel virtual time must be max-combined, got {}",
            resp.virtual_ms
        );
        assert!(fanout.detail.contains("workers"), "{}", fanout.detail);
        assert!(!resp.trace.degraded);
    }

    #[test]
    fn panicking_service_degrades_its_slot_only() {
        let mut transport = SimulatedTransport::new(7);
        transport.register("unstable", Box::new(PanicService), LatencyModel::fast());
        let (store, tenant, key, app) = wide_app(3, "unstable");
        let subs = Substrates {
            space: Some(store.space(tenant, &key).unwrap()),
            engine: None,
            transport: Some(&transport),
            ads: None,
            scatter: None,
        };
        let resp = execute(&app, "gadget", subs, ExecMode::Parallel);
        // The primary list still renders every item.
        assert!(resp.html.contains("Gadget 0"), "{}", resp.html);
        assert!(resp.html.contains("Gadget 2"), "{}", resp.html);
        // Each panicked slot degraded softly.
        assert!(resp.trace.degraded);
        assert_eq!(resp.trace.error_count, 3);
        let slot = resp.trace.find("supplemental: unstable").unwrap();
        assert!(slot.detail.contains("panicked"), "{}", slot.detail);
        assert!(slot.detail.contains("unstable service blew up"));
    }

    #[test]
    fn deadline_cuts_slow_supplementals_but_renders_primaries() {
        let w = world();
        let mut app = gamer_queen(&w);
        app.resilience = crate::app::ResiliencePolicy {
            query_deadline_ms: 20,
            ..Default::default()
        };
        let resp = execute(&app, "space shooter", subs(&w), ExecMode::Parallel);
        // Deadline held: receive(1) + inventory(5) + suppl(≤12) + merge(2).
        assert!(
            resp.virtual_ms <= 20,
            "deadline blown: {} ms",
            resp.virtual_ms
        );
        // Primary content renders; the 35-ms web fetch is cut for free.
        assert!(resp.html.contains("Galactic Raiders"));
        assert!(resp.trace.degraded);
        let reviews = resp.trace.find("supplemental: reviews").unwrap();
        assert!(
            reviews.detail.contains("deadline cut"),
            "{}",
            reviews.detail
        );
        assert_eq!(reviews.virtual_ms, 0);
        // The fast pricing service still fits in the remaining budget.
        let pricing = resp.trace.find("supplemental: pricing").unwrap();
        assert!(pricing.detail.contains("results"), "{}", pricing.detail);
    }

    #[test]
    fn shed_response_is_cheap_and_marked() {
        let w = world();
        let app = gamer_queen(&w);
        let resp = shed_response(&app, "space shooter", "rate limit");
        assert_eq!(resp.virtual_ms, SHED_MS);
        assert!(resp.trace.shed);
        assert!(resp.trace.degraded);
        assert_eq!(resp.trace.error_count, 0);
        assert!(resp.impressions.is_empty());
        // The layout shell still renders (search box, empty lists).
        assert!(resp.html.contains("sym-search"), "{}", resp.html);
        // Slots carry the (shed) marker like (L2 hit) suffixes.
        let slot = resp.trace.find("primary: inventory").unwrap();
        assert!(slot.detail.contains("(shed)"), "{}", slot.detail);
        assert!(resp.trace.render().contains("shed"));
    }

    #[test]
    fn scheduler_grant_bounds_fanout_workers() {
        use crate::admission::{FanoutScheduler, Lane};
        let current = std::sync::Arc::new(AtomicUsize::new(0));
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        let mut transport = SimulatedTransport::new(7);
        transport.register(
            "probe",
            Box::new(ProbeService {
                current: current.clone(),
                peak: peak.clone(),
            }),
            LatencyModel::fast(),
        );
        let (store, tenant, key, app) = wide_app(60, "probe");
        let subs = Substrates {
            space: Some(store.space(tenant, &key).unwrap()),
            engine: None,
            transport: Some(&transport),
            ads: None,
            scatter: None,
        };
        // Another tenant (weight 3) is mid-fan-out holding its share;
        // this weight-1 tenant's fair share is 16/4 = 4 workers.
        let pool = FanoutScheduler::new(MAX_FANOUT_WORKERS);
        let other = pool.acquire(999, 3, 12, Lane::Interactive);
        let ctx = ExecCtx {
            scheduler: Some(&pool),
            ..ExecCtx::default()
        };
        let resp = execute_resilient(
            &app,
            "gadget",
            subs,
            ExecMode::Parallel,
            &HashMap::new(),
            &ctx,
        );
        drop(other);
        assert!(
            peak.load(Ordering::SeqCst) <= 4,
            "fair share of 4 exceeded: {}",
            peak.load(Ordering::SeqCst)
        );
        // Every slot still served; virtual time still max-combined.
        assert!(!resp.trace.degraded);
        let fanout = resp.trace.find("supplemental fan-out").unwrap();
        assert!(fanout.detail.contains("workers"), "{}", fanout.detail);
        // The grant was released once the fan-out finished.
        assert_eq!(pool.outstanding(), (0, 0));
    }

    #[test]
    fn supplemental_queries_are_per_item() {
        let w = world();
        let app = gamer_queen(&w);
        // "game" in description? Query matching both items:
        let resp = execute(&app, "shooter farming", subs(&w), ExecMode::Parallel);
        let fanouts: Vec<&str> = resp
            .trace
            .find("supplemental fan-out")
            .map(|n| n.children.iter().map(|c| c.detail.as_str()).collect())
            .unwrap_or_default();
        assert!(fanouts
            .iter()
            .any(|d| d.contains("Galactic Raiders review")));
        assert!(fanouts.iter().any(|d| d.contains("Farm Story review")));
    }
}
