//! Execution traces — the runtime's account of Fig. 2.
//!
//! Every query through the platform produces a tree of stages with
//! virtual timings: snippet receipt, primary content queries,
//! per-result supplemental fan-out, merge/format, response. The Fig.-2
//! report binary pretty-prints this tree.

/// One stage in an execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// Stage label ("primary: inventory").
    pub label: String,
    /// Virtual milliseconds attributed to this stage (exclusive of
    /// children unless stated in the label).
    pub virtual_ms: u32,
    /// Extra detail ("3 results", "error: timed out").
    pub detail: String,
    /// Sub-stages.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Leaf node.
    pub fn leaf(label: impl Into<String>, virtual_ms: u32, detail: impl Into<String>) -> TraceNode {
        TraceNode {
            label: label.into(),
            virtual_ms,
            detail: detail.into(),
            children: Vec::new(),
        }
    }

    /// Node with children.
    pub fn group(
        label: impl Into<String>,
        virtual_ms: u32,
        detail: impl Into<String>,
        children: Vec<TraceNode>,
    ) -> TraceNode {
        TraceNode {
            label: label.into(),
            virtual_ms,
            detail: detail.into(),
            children,
        }
    }

    /// Total nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }
}

/// A full query trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// Application name.
    pub app: String,
    /// The user query.
    pub query: String,
    /// Total virtual time of the request.
    pub total_ms: u32,
    /// Whether the response came from the result cache.
    pub cache_hit: bool,
    /// Number of source fetches that ended in a soft error (their
    /// slots rendered degraded).
    pub error_count: u32,
    /// True when any slot degraded — the response served partial
    /// results.
    pub degraded: bool,
    /// True when admission control shed this query before execution:
    /// the response is the degraded layout shell, and no source fetch,
    /// breaker, or cache was ever consulted.
    pub shed: bool,
    /// Source fetches served from the platform's shared L2 source
    /// cache (completed before this query's virtual start).
    pub l2_hits: u32,
    /// Source fetches that missed the L2 cache and executed against
    /// the live source (uncacheable source kinds are not counted).
    pub l2_misses: u32,
    /// Source fetches coalesced onto another request's execution
    /// (singleflight, or an outcome completing within this query's
    /// virtual window).
    pub l2_coalesced: u32,
    /// Stage tree.
    pub stages: Vec<TraceNode>,
}

impl ExecutionTrace {
    /// Pretty-print as an indented tree (the Fig.-2 rendering).
    pub fn render(&self) -> String {
        let mut out = format!(
            "query {:?} on application {:?} — {} virtual ms{}\n",
            self.query,
            self.app,
            self.total_ms,
            if self.cache_hit { " (cache hit)" } else { "" }
        );
        if self.shed {
            out.push_str("  (shed: admission control refused execution)\n");
        } else if self.degraded {
            out.push_str(&format!(
                "  (degraded: {} source error{})\n",
                self.error_count,
                if self.error_count == 1 { "" } else { "s" }
            ));
        }
        if self.l2_hits + self.l2_coalesced > 0 {
            out.push_str(&format!(
                "  (source cache: {} hit{}, {} coalesced, {} miss{})\n",
                self.l2_hits,
                if self.l2_hits == 1 { "" } else { "s" },
                self.l2_coalesced,
                self.l2_misses,
                if self.l2_misses == 1 { "" } else { "es" }
            ));
        }
        fn go(node: &TraceNode, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(&format!("├─ {} [{} ms]", node.label, node.virtual_ms));
            if !node.detail.is_empty() {
                out.push_str(&format!(" — {}", node.detail));
            }
            out.push('\n');
            for c in &node.children {
                go(c, depth + 1, out);
            }
        }
        for s in &self.stages {
            go(s, 0, &mut out);
        }
        out
    }

    /// Find a stage by label prefix, depth-first.
    pub fn find(&self, label_prefix: &str) -> Option<&TraceNode> {
        fn go<'a>(nodes: &'a [TraceNode], prefix: &str) -> Option<&'a TraceNode> {
            for n in nodes {
                if n.label.starts_with(prefix) {
                    return Some(n);
                }
                if let Some(hit) = go(&n.children, prefix) {
                    return Some(hit);
                }
            }
            None
        }
        go(&self.stages, label_prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ExecutionTrace {
        ExecutionTrace {
            app: "GamerQueen".into(),
            query: "space shooter".into(),
            total_ms: 87,
            cache_hit: false,
            error_count: 0,
            degraded: false,
            shed: false,
            l2_hits: 0,
            l2_misses: 0,
            l2_coalesced: 0,
            stages: vec![
                TraceNode::leaf("receive snippet request", 1, ""),
                TraceNode::group(
                    "primary: inventory",
                    5,
                    "2 results",
                    vec![TraceNode::leaf("supplemental: reviews", 35, "3 results")],
                ),
                TraceNode::leaf("merge + format", 2, ""),
            ],
        }
    }

    #[test]
    fn render_includes_all_stages() {
        let text = trace().render();
        assert!(text.contains("GamerQueen"));
        assert!(text.contains("primary: inventory [5 ms] — 2 results"));
        assert!(text.contains("    ├─ supplemental: reviews"));
        assert!(text.contains("87 virtual ms"));
    }

    #[test]
    fn cache_hit_marker() {
        let mut t = trace();
        t.cache_hit = true;
        assert!(t.render().contains("(cache hit)"));
    }

    #[test]
    fn find_by_prefix() {
        let t = trace();
        assert_eq!(t.find("primary").unwrap().virtual_ms, 5);
        assert_eq!(t.find("supplemental: rev").unwrap().detail, "3 results");
        assert!(t.find("nothing").is_none());
    }

    #[test]
    fn node_count() {
        assert_eq!(trace().stages[1].node_count(), 2);
    }

    #[test]
    fn source_cache_marker_in_render() {
        let mut t = trace();
        assert!(!t.render().contains("source cache"));
        t.l2_hits = 2;
        t.l2_misses = 1;
        assert!(t
            .render()
            .contains("(source cache: 2 hits, 0 coalesced, 1 miss)"));
    }

    #[test]
    fn degraded_marker_in_render() {
        let mut t = trace();
        assert!(!t.render().contains("degraded"));
        t.error_count = 2;
        t.degraded = true;
        assert!(t.render().contains("degraded: 2 source errors"));
    }

    #[test]
    fn shed_marker_supersedes_degraded() {
        let mut t = trace();
        t.degraded = true;
        t.shed = true;
        let text = t.render();
        assert!(text.contains("(shed: admission control refused execution)"));
        assert!(!text.contains("source error"));
    }
}
