//! The platform-wide L2 source-result cache.
//!
//! The per-app response cache (L1, [`crate::hosting`]) absorbs exact
//! repeats of one app's queries, but the expensive work lives a level
//! lower: `run_source_ctx` fetches against web verticals, proprietary
//! tables, and SOAP/REST services. Community verticals share sources —
//! eight gaming apps all fan out `"{title} review"` against the same
//! web vertical — so the platform caches *source outcomes* once and
//! shares them across apps and across L1-missed queries (experiment
//! E-cache).
//!
//! Three mechanisms, layered:
//!
//! 1. **Sharded outcome cache** — FNV-1a over `SHARDS` independent
//!    mutexes (the [`BreakerRegistry`](symphony_services::BreakerRegistry)
//!    pattern), keyed by `(source fingerprint, normalized query)`.
//!    Entries hold `Arc<SourceOutcome>`, so hits are pointer clones.
//!    TTLs are per source kind; error outcomes get a short *negative*
//!    TTL and are never served while the endpoint's circuit breaker is
//!    open or half-open (an open breaker fast-fails in 0 virtual ms —
//!    cheaper and more truthful than a stale cached error — and a
//!    half-open breaker needs real probes to close).
//! 2. **Singleflight** — concurrent misses on one key coalesce onto a
//!    single executor; waiters block on the shard's [`Condvar`] and
//!    receive the leader's `Arc<SourceOutcome>`. Virtual-time
//!    accounting is interleaving-independent: a request that observes
//!    an outcome completed *after* its own start (`completed_at >
//!    now`) is charged the remaining wait, exactly as if it had run
//!    the fetch itself, so traces replay identically no matter which
//!    thread happened to lead.
//! 3. **TinyLFU admission** — a doorkeeper bitset plus a 4-bit
//!    count-min sketch estimates each key's popularity; at capacity a
//!    candidate is admitted only if it is more popular than the LRU
//!    victim, so one-hit-wonder tail queries stop evicting the hot
//!    head. Counters halve periodically to age the history.
//!
//! `std::sync` primitives (not the vendored `parking_lot` façade) are
//! used because singleflight needs a [`Condvar`].

use crate::cache::LruTtlCache;
use crate::source::{DataSourceDef, SourceCtx, SourceOutcome};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use symphony_services::BreakerState;
use symphony_store::TenantId;

/// Number of independently locked shards.
const SHARDS: usize = 8;

/// Virtual cost of serving a source outcome from the cache (pointer
/// clone + bookkeeping; cheaper than the cheapest real fetch).
pub const SOURCE_CACHE_HIT_MS: u32 = 1;

/// Tuning for the platform's shared source cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceCacheConfig {
    /// Master switch; `false` makes every fetch execute uncached.
    pub enabled: bool,
    /// Total entries across all shards.
    pub capacity: usize,
    /// TTL for web-vertical outcomes (virtual ms).
    pub web_ttl_ms: u64,
    /// TTL for proprietary-table outcomes (virtual ms).
    pub proprietary_ttl_ms: u64,
    /// TTL for service outcomes (virtual ms).
    pub service_ttl_ms: u64,
    /// Short TTL for *negative* entries (error outcomes), and the knob
    /// the hosting layer reuses for degraded L1 responses.
    pub negative_ttl_ms: u64,
}

impl Default for SourceCacheConfig {
    fn default() -> Self {
        SourceCacheConfig {
            enabled: true,
            capacity: 4096,
            web_ttl_ms: 30_000,
            proprietary_ttl_ms: 10_000,
            service_ttl_ms: 5_000,
            negative_ttl_ms: 500,
        }
    }
}

impl SourceCacheConfig {
    /// A cache that never serves or stores (the L1-only baseline in
    /// experiment E-cache, and the stress suite's sequential-equality
    /// harness, where cross-app sharing would couple the apps'
    /// virtual-time accounting).
    pub fn disabled() -> Self {
        SourceCacheConfig {
            enabled: false,
            ..SourceCacheConfig::default()
        }
    }
}

/// Aggregate statistics across all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceCacheStats {
    /// Fetches served from a live positive entry.
    pub hits: u64,
    /// Fetches served from a live negative (error) entry.
    pub negative_hits: u64,
    /// Fetches that coalesced onto another request's execution.
    pub coalesced: u64,
    /// Fetches that found nothing servable.
    pub misses: u64,
    /// Underlying source executions (misses that ran, including
    /// negative-entry bypasses while a breaker was open).
    pub executions: u64,
    /// Insertions rejected by the TinyLFU admission policy.
    pub admission_rejected: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Entries dropped because their TTL lapsed.
    pub expired: u64,
}

impl SourceCacheStats {
    /// Fraction of fetches that avoided a source execution.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.negative_hits + self.coalesced + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.negative_hits + self.coalesced) as f64 / total as f64
        }
    }
}

/// How a fetch was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchStatus {
    /// The source kind is not cacheable (ads, composed apps) or the
    /// cache is disabled; the fetch executed directly.
    Uncached,
    /// Nothing servable was cached; this request executed the fetch.
    Miss,
    /// Served from a cached outcome completed at or before this
    /// request's start.
    Hit,
    /// Coalesced onto an execution that completed after this request's
    /// start (singleflight, or a cached outcome still "in the future"
    /// of this request's virtual clock).
    Coalesced,
}

/// A source fetch as seen through the cache: the (shared) outcome plus
/// what this particular request is charged for it.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// The fetch outcome; hits share one allocation across requests.
    pub outcome: Arc<SourceOutcome>,
    /// Virtual ms this request pays (full cost for the executor,
    /// remaining wait for coalesced requests, [`SOURCE_CACHE_HIT_MS`]
    /// for hits).
    pub charged_ms: u32,
    /// Transport attempts this request is charged against the query's
    /// retry budget (0 for hits and coalesced requests — the executor
    /// already paid).
    pub attempts_charged: u32,
    /// How the fetch was satisfied.
    pub status: FetchStatus,
}

impl Fetched {
    /// Wrap a directly-executed outcome (no cache involved).
    pub fn uncached(outcome: SourceOutcome) -> Fetched {
        Fetched {
            charged_ms: outcome.virtual_ms,
            attempts_charged: outcome.attempts,
            outcome: Arc::new(outcome),
            status: FetchStatus::Uncached,
        }
    }
}

/// Cache key: source fingerprint + normalized query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FetchKey {
    fingerprint: u64,
    query: String,
}

impl FetchKey {
    /// Stable 64-bit hash (FNV-1a; `DefaultHasher` seeds vary per
    /// process, which would unshard deterministically-replayed runs).
    fn hash64(&self) -> u64 {
        let h = fnv1a(FNV_OFFSET, &self.fingerprint.to_le_bytes());
        fnv1a(h, self.query.as_bytes())
    }
}

#[derive(Debug, Clone)]
struct CachedEntry {
    outcome: Arc<SourceOutcome>,
    /// Virtual time the originating execution finished.
    completed_at: u64,
    /// True for error outcomes (short TTL, breaker-coherent serving).
    negative: bool,
}

/// Singleflight slot for one in-flight key.
enum Flight {
    /// The leader is executing; `waiters` requests are parked on the
    /// shard condvar.
    Running { waiters: usize },
    /// The leader finished; the result stays until every registered
    /// waiter has consumed it (admission may have kept it out of the
    /// cache proper).
    Done {
        outcome: Arc<SourceOutcome>,
        completed_at: u64,
        remaining: usize,
    },
}

#[derive(Default)]
struct ShardCounters {
    hits: u64,
    negative_hits: u64,
    coalesced: u64,
    misses: u64,
    executions: u64,
    admission_rejected: u64,
}

struct ShardState {
    cache: LruTtlCache<FetchKey, CachedEntry>,
    inflight: HashMap<FetchKey, Flight>,
    sketch: TinyLfu,
    counters: ShardCounters,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, ShardState> {
        // A panic can only poison this mutex if it unwinds through the
        // short bookkeeping sections below (never through user code,
        // which runs unlocked); the state is consistent either way.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The platform-wide source-result cache. One instance per
/// [`Platform`](crate::hosting::Platform), shared by every hosted app.
pub struct SourceCache {
    config: SourceCacheConfig,
    shards: Vec<Shard>,
}

impl std::fmt::Debug for SourceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceCache")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl SourceCache {
    /// Empty cache with the given tuning.
    pub fn new(config: SourceCacheConfig) -> SourceCache {
        let shard_capacity = (config.capacity / SHARDS).max(1);
        SourceCache {
            config,
            shards: (0..SHARDS)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        // Entries carry per-kind TTLs via put_with_ttl;
                        // the cache-wide TTL is never used.
                        cache: LruTtlCache::new(shard_capacity, u64::MAX),
                        inflight: HashMap::new(),
                        sketch: TinyLfu::new(shard_capacity),
                        counters: ShardCounters::default(),
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> SourceCacheConfig {
        self.config
    }

    /// Aggregate statistics across all shards.
    pub fn stats(&self) -> SourceCacheStats {
        let mut out = SourceCacheStats::default();
        for shard in &self.shards {
            let st = shard.lock();
            out.hits += st.counters.hits;
            out.negative_hits += st.counters.negative_hits;
            out.coalesced += st.counters.coalesced;
            out.misses += st.counters.misses;
            out.executions += st.counters.executions;
            out.admission_rejected += st.counters.admission_rejected;
            out.evictions += st.cache.stats().evictions;
            out.expired += st.cache.stats().expired;
        }
        out
    }

    /// Eagerly sweep expired entries from every shard at the given
    /// virtual time, returning how many were removed (they also count
    /// in [`SourceCacheStats::expired`]). Without this, an expired
    /// entry lingers until its key is touched again;
    /// [`Platform::maintenance_tick`](crate::hosting::Platform::maintenance_tick)
    /// calls it so cold keys are reclaimed on the maintenance cadence.
    pub fn purge_expired(&self, now_ms: u64) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().cache.purge_expired(now_ms))
            .sum()
    }

    /// Drop every cached outcome (admin mutations — table uploads,
    /// transport changes — invalidate source results wholesale).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut st = shard.lock();
            st.cache.clear();
            st.sketch.reset();
        }
    }

    /// TTL for a positive outcome of this source kind (0 = uncacheable).
    fn ttl_for(&self, def: &DataSourceDef) -> u64 {
        match def {
            DataSourceDef::Proprietary { .. } | DataSourceDef::Hybrid { .. } => {
                self.config.proprietary_ttl_ms
            }
            DataSourceDef::WebVertical { .. } => self.config.web_ttl_ms,
            DataSourceDef::Service { .. } => self.config.service_ttl_ms,
            DataSourceDef::Ads { .. } | DataSourceDef::ComposedApp { .. } => 0,
        }
    }

    /// Fetch through the cache: serve a live entry, coalesce onto an
    /// in-flight execution of the same key, or run `exec` and publish
    /// the outcome. `exec` runs *without* any shard lock held.
    ///
    /// The classification is purely virtual-time: an outcome that
    /// completed at or before `sctx.now_ms` is a [`FetchStatus::Hit`]
    /// charged [`SOURCE_CACHE_HIT_MS`]; one completing after it is
    /// [`FetchStatus::Coalesced`] charged the remaining wait. Either
    /// way the charge is capped by `sctx.budget_ms` — a request whose
    /// budget cannot cover the wait degrades to a deadline cut, like
    /// any other over-budget fetch.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch(
        &self,
        def: &DataSourceDef,
        owner: Option<TenantId>,
        query: &str,
        k: usize,
        constraint: Option<&symphony_store::Filter>,
        sctx: &SourceCtx<'_>,
        exec: impl FnOnce() -> SourceOutcome,
    ) -> Fetched {
        if !self.config.enabled {
            return Fetched::uncached(exec());
        }
        let Some(fingerprint) = fingerprint(def, owner, k, constraint) else {
            return Fetched::uncached(exec());
        };
        let key = FetchKey {
            fingerprint,
            query: normalize_query(query),
        };
        let hash = key.hash64();
        let shard = &self.shards[(hash % SHARDS as u64) as usize];
        let now = sctx.now_ms;

        let mut st = shard.lock();
        st.sketch.record(hash);
        let mut registered = false;
        loop {
            // 1. A live cached entry?
            if let Some(entry) = st.cache.get(&key, now) {
                let serve = !entry.negative || self.negative_servable(def, sctx);
                if serve {
                    let entry = entry.clone();
                    let counters = &mut st.counters;
                    let fetched = classify(entry.outcome, entry.completed_at, now, sctx, counters);
                    if registered {
                        consume_waiter_slot(&mut st, &key);
                    }
                    return fetched;
                }
                // Negative entry suppressed by breaker state: fall
                // through to execute (the breaker fast-fails or probes).
            }
            // 2. An in-flight or just-finished execution?
            match st.inflight.get_mut(&key) {
                Some(Flight::Done {
                    outcome,
                    completed_at,
                    ..
                }) => {
                    let (outcome, completed_at) = (outcome.clone(), *completed_at);
                    let counters = &mut st.counters;
                    let fetched = classify(outcome, completed_at, now, sctx, counters);
                    if registered {
                        consume_waiter_slot(&mut st, &key);
                    }
                    return fetched;
                }
                Some(Flight::Running { waiters }) => {
                    if !registered {
                        *waiters += 1;
                        registered = true;
                    }
                    st = shard.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                    // A leader that panicked removed the slot; loop and
                    // retry from the top (possibly becoming the leader).
                    if !st.inflight.contains_key(&key) {
                        registered = false;
                    }
                    continue;
                }
                None => {}
            }
            break;
        }

        // 3. Leader: execute without the lock, then publish.
        st.inflight
            .insert(key.clone(), Flight::Running { waiters: 0 });
        st.counters.misses += 1;
        st.counters.executions += 1;
        drop(st);

        let mut guard = InflightGuard {
            shard,
            key: Some(&key),
        };
        let outcome = Arc::new(exec());
        guard.key = None; // completion below also clears the slot
        drop(guard);

        let completed_at = now + outcome.virtual_ms as u64;
        let negative = outcome.error.is_some();
        let mut st = shard.lock();
        match st.inflight.remove(&key) {
            Some(Flight::Running { waiters }) if waiters > 0 => {
                st.inflight.insert(
                    key.clone(),
                    Flight::Done {
                        outcome: outcome.clone(),
                        completed_at,
                        remaining: waiters,
                    },
                );
            }
            _ => {}
        }
        // Outcomes where nothing was attempted (breaker fast-fails,
        // deadline cuts) are control-plane state, ~free to recompute,
        // and would go stale the moment the breaker or budget moves:
        // never cached.
        if outcome.attempts >= 1 {
            let ttl = if negative {
                self.config.negative_ttl_ms
            } else {
                self.ttl_for(def)
            };
            if ttl > 0 {
                let entry = CachedEntry {
                    outcome: outcome.clone(),
                    completed_at,
                    negative,
                };
                admit(&mut st, key, entry, now, ttl, hash);
            }
        }
        shard.cv.notify_all();
        drop(st);

        Fetched {
            charged_ms: outcome.virtual_ms,
            attempts_charged: outcome.attempts,
            outcome,
            status: FetchStatus::Miss,
        }
    }

    /// May a negative (error) entry be served right now? Only while
    /// the endpoint's breaker is closed: an open circuit fast-fails in
    /// 0 ms (cheaper and reflects live breaker state in the trace),
    /// and a half-open circuit needs its probe to actually flow.
    fn negative_servable(&self, def: &DataSourceDef, sctx: &SourceCtx<'_>) -> bool {
        let (DataSourceDef::Service { endpoint, .. }, Some(breakers)) = (def, sctx.breakers) else {
            return true; // no breaker governs this source kind
        };
        breakers.state(endpoint, sctx.now_ms) == BreakerState::Closed
    }
}

/// Classify a served outcome by virtual time and account for it.
fn classify(
    outcome: Arc<SourceOutcome>,
    completed_at: u64,
    now: u64,
    sctx: &SourceCtx<'_>,
    counters: &mut ShardCounters,
) -> Fetched {
    let (charged_ms, status) = if completed_at > now {
        // The outcome lies in this request's future: it waits exactly
        // as long as running the fetch itself would have taken, which
        // keeps parallel fan-outs interleaving-independent.
        (
            (completed_at - now).min(u32::MAX as u64) as u32,
            FetchStatus::Coalesced,
        )
    } else {
        (SOURCE_CACHE_HIT_MS, FetchStatus::Hit)
    };
    match status {
        FetchStatus::Coalesced => counters.coalesced += 1,
        _ if outcome.error.is_some() => counters.negative_hits += 1,
        _ => counters.hits += 1,
    }
    // A served outcome still has to fit the caller's budget.
    if let Some(budget) = sctx.budget_ms {
        if charged_ms > budget {
            return Fetched {
                outcome: Arc::new(SourceOutcome {
                    items: Vec::new(),
                    virtual_ms: 0,
                    error: Some(
                        symphony_services::ServiceError::DeadlineCut { budget_ms: budget }
                            .to_string(),
                    ),
                    attempts: 0,
                }),
                charged_ms: 0,
                attempts_charged: 0,
                status,
            };
        }
    }
    Fetched {
        outcome,
        charged_ms,
        attempts_charged: 0,
        status,
    }
}

/// A woken waiter consumed (or skipped past) the flight result: drop
/// its reservation, removing the `Done` slot once everyone is through.
fn consume_waiter_slot(st: &mut ShardState, key: &FetchKey) {
    if let Some(Flight::Done { remaining, .. }) = st.inflight.get_mut(key) {
        *remaining -= 1;
        if *remaining == 0 {
            st.inflight.remove(key);
        }
    }
}

/// TinyLFU-gated insert: below capacity always admits; at capacity the
/// candidate must be estimated more popular than the LRU victim.
fn admit(st: &mut ShardState, key: FetchKey, entry: CachedEntry, now: u64, ttl: u64, hash: u64) {
    let at_capacity = st.cache.len() >= st.cache_capacity();
    if at_capacity {
        let victim_estimate = st
            .cache
            .peek_lru()
            .map(|k| st.sketch.estimate(k.hash64()))
            .unwrap_or(0);
        if st.sketch.estimate(hash) <= victim_estimate {
            st.counters.admission_rejected += 1;
            return;
        }
    }
    st.cache.put_with_ttl(key, entry, now, ttl);
}

impl ShardState {
    fn cache_capacity(&self) -> usize {
        // LruTtlCache doesn't expose capacity; mirror it through the
        // sketch, which is sized from the same number.
        self.sketch.capacity
    }
}

/// Leader cleanup on panic: unpark waiters so they can elect a new
/// leader instead of blocking forever.
struct InflightGuard<'a> {
    shard: &'a Shard,
    key: Option<&'a FetchKey>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            let mut st = self.shard.lock();
            st.inflight.remove(key);
            self.shard.cv.notify_all();
        }
    }
}

// ---- Fingerprints -------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a string, continuing from `h` (crate-internal helper
/// for other stable fingerprints, e.g. the L1 override keying).
pub(crate) fn fnv1a_str(h: u64, s: &str) -> u64 {
    fnv1a(h, s.as_bytes())
}

/// Stable fingerprint of everything besides the query that determines
/// a source outcome: the source definition (including its full
/// configuration), the owning tenant for proprietary tables, the
/// result count `k`, and any structured constraint. `None` marks the
/// source kind uncacheable: ad auctions are billing-stateful, and
/// composed apps are resolved (and cached) by the hosting layer.
fn fingerprint(
    def: &DataSourceDef,
    owner: Option<TenantId>,
    k: usize,
    constraint: Option<&symphony_store::Filter>,
) -> Option<u64> {
    let mut h = fnv1a(FNV_OFFSET, &(k as u64).to_le_bytes());
    match def {
        DataSourceDef::Proprietary { table } => {
            h = fnv1a(h, b"proprietary");
            h = fnv1a(h, &owner?.0.to_le_bytes());
            h = fnv1a(h, table.as_bytes());
            if let Some(f) = constraint {
                h = fnv1a(h, format!("{f:?}").as_bytes());
            }
        }
        DataSourceDef::Hybrid { table, filter } => {
            // Tenant-scoped like proprietary; the source's baked-in
            // predicate is part of the outcome, so it keys too.
            h = fnv1a(h, b"hybrid");
            h = fnv1a(h, &owner?.0.to_le_bytes());
            h = fnv1a(h, table.as_bytes());
            h = fnv1a(h, format!("{filter:?}").as_bytes());
            if let Some(f) = constraint {
                h = fnv1a(h, format!("{f:?}").as_bytes());
            }
        }
        DataSourceDef::WebVertical { vertical, config } => {
            h = fnv1a(h, b"web");
            h = fnv1a(h, vertical.name().as_bytes());
            h = fnv1a(h, format!("{config:?}").as_bytes());
        }
        DataSourceDef::Service {
            endpoint,
            operation,
            item_param,
            policy,
        } => {
            h = fnv1a(h, b"service");
            h = fnv1a(h, endpoint.as_bytes());
            h = fnv1a(h, operation.as_bytes());
            h = fnv1a(h, item_param.as_bytes());
            // The call policy shapes latency and retries, which are
            // part of the cached outcome.
            h = fnv1a(h, format!("{policy:?}").as_bytes());
        }
        DataSourceDef::Ads { .. } | DataSourceDef::ComposedApp { .. } => return None,
    }
    Some(h)
}

// ---- Query normalization ------------------------------------------

/// Case-fold and whitespace-fold a query in a single pass over its
/// characters, allocating only the output buffer. `"  SPACE   Shooter "`
/// and `"space shooter"` map to the same cache key at both levels.
///
/// Uses `char::to_lowercase` per character, which drops the one
/// str-level refinement (`'Σ'` at word end lowercases to `'σ'`, not
/// final `'ς'`); keys are internal-only, so folding both spellings to
/// `'σ'` is exactly what a cache wants.
pub fn normalize_query(q: &str) -> String {
    let mut out = String::with_capacity(q.len());
    let mut pending_space = false;
    for c in q.chars() {
        if c.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        for lc in c.to_lowercase() {
            out.push(lc);
        }
    }
    out
}

// ---- TinyLFU -------------------------------------------------------

/// W-TinyLFU-style frequency sketch: a doorkeeper bitset in front of a
/// 4-row count-min sketch of 4-bit counters (two per byte). A key's
/// first sighting only sets its doorkeeper bit; repeats increment the
/// sketch. Every `sample_cap` recordings all counters halve and the
/// doorkeeper clears, so popularity decays.
struct TinyLfu {
    /// Shard capacity (also the admission cache's capacity; kept here
    /// because sizing derives from it).
    capacity: usize,
    doorkeeper: Vec<u64>,
    /// 4 rows × `width` 4-bit counters, packed two per byte.
    counters: Vec<u8>,
    /// Counters per row; power of two.
    width: usize,
    samples: u32,
    sample_cap: u32,
}

/// Per-row index mixers (odd constants; splitmix-style finalization).
const ROW_SEEDS: [u64; 4] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
];

fn mix(h: u64, seed: u64) -> u64 {
    let mut x = h ^ seed;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

impl TinyLfu {
    fn new(capacity: usize) -> TinyLfu {
        let width = (capacity * 2).next_power_of_two().max(64);
        TinyLfu {
            capacity,
            doorkeeper: vec![0; width / 64],
            counters: vec![0; 4 * width / 2],
            width,
            samples: 0,
            sample_cap: (capacity as u32).saturating_mul(10).max(100),
        }
    }

    fn reset(&mut self) {
        self.doorkeeper.iter_mut().for_each(|w| *w = 0);
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.samples = 0;
    }

    /// Record one access of `hash`.
    fn record(&mut self, hash: u64) {
        self.samples += 1;
        if self.samples >= self.sample_cap {
            self.halve();
        }
        let bit = (hash as usize) & (self.width - 1);
        let (word, mask) = (bit / 64, 1u64 << (bit % 64));
        if self.doorkeeper[word] & mask == 0 {
            self.doorkeeper[word] |= mask;
            return;
        }
        for (row, seed) in ROW_SEEDS.iter().enumerate() {
            let idx = (mix(hash, *seed) as usize) & (self.width - 1);
            let byte = row * self.width / 2 + idx / 2;
            let shift = (idx % 2) * 4;
            let nibble = (self.counters[byte] >> shift) & 0xF;
            if nibble < 15 {
                self.counters[byte] += 1 << shift;
            }
        }
    }

    /// Estimated popularity: the doorkeeper bit plus the count-min
    /// (minimum across rows) sketch estimate.
    fn estimate(&self, hash: u64) -> u32 {
        let bit = (hash as usize) & (self.width - 1);
        let door = u32::from(self.doorkeeper[bit / 64] & (1 << (bit % 64)) != 0);
        let mut min = u8::MAX;
        for (row, seed) in ROW_SEEDS.iter().enumerate() {
            let idx = (mix(hash, *seed) as usize) & (self.width - 1);
            let byte = row * self.width / 2 + idx / 2;
            let shift = (idx % 2) * 4;
            min = min.min((self.counters[byte] >> shift) & 0xF);
        }
        door + min as u32
    }

    /// Age the history: halve every 4-bit counter in place and clear
    /// the doorkeeper.
    fn halve(&mut self) {
        for byte in &mut self.counters {
            // Halve both packed nibbles at once: high nibble h→h/2,
            // low nibble l→l/2; the shifted-out low bit of the high
            // nibble is masked off so it can't leak into the low one.
            *byte = (*byte >> 1) & 0x77;
        }
        self.doorkeeper.iter_mut().for_each(|w| *w = 0);
        self.samples /= 2;
    }
}

// The cache sits on the platform's concurrent serving path.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SourceCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ResultItem;
    use symphony_web::{SearchConfig, Vertical};

    fn web_def() -> DataSourceDef {
        DataSourceDef::WebVertical {
            vertical: Vertical::Web,
            config: SearchConfig::default(),
        }
    }

    fn svc_def(endpoint: &str) -> DataSourceDef {
        DataSourceDef::Service {
            endpoint: endpoint.into(),
            operation: "/price".into(),
            item_param: "item".into(),
            policy: symphony_services::CallPolicy::default(),
        }
    }

    fn ok_outcome(ms: u32) -> SourceOutcome {
        SourceOutcome {
            items: vec![ResultItem {
                fields: vec![("title".into(), "x".into())],
                score: 1.0,
            }],
            virtual_ms: ms,
            error: None,
            attempts: 1,
        }
    }

    fn err_outcome(ms: u32) -> SourceOutcome {
        SourceOutcome {
            items: Vec::new(),
            virtual_ms: ms,
            error: Some("timed out".into()),
            attempts: 2,
        }
    }

    #[test]
    fn miss_then_hit_shares_the_outcome_allocation() {
        let cache = SourceCache::new(SourceCacheConfig::default());
        let first = cache.fetch(
            &web_def(),
            None,
            "space shooter",
            5,
            None,
            &SourceCtx::at(0),
            || ok_outcome(35),
        );
        assert_eq!(first.status, FetchStatus::Miss);
        assert_eq!(first.charged_ms, 35);
        assert_eq!(first.attempts_charged, 1);

        // Same key later: a hit, charged the flat cache cost, sharing
        // the same allocation.
        let second = cache.fetch(
            &web_def(),
            None,
            "  SPACE   Shooter ",
            5,
            None,
            &SourceCtx::at(100),
            || panic!("must not execute"),
        );
        assert_eq!(second.status, FetchStatus::Hit);
        assert_eq!(second.charged_ms, SOURCE_CACHE_HIT_MS);
        assert_eq!(second.attempts_charged, 0);
        assert!(Arc::ptr_eq(&first.outcome, &second.outcome));

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.executions), (1, 1, 1));
    }

    #[test]
    fn same_virtual_start_reads_as_coalesced_wait() {
        // Two requests with the same virtual start: whichever runs
        // second observes an outcome completing in its future and is
        // charged the full wait — identical accounting to having run
        // the fetch itself, so thread interleaving can't show through.
        let cache = SourceCache::new(SourceCacheConfig::default());
        cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(10), || {
            ok_outcome(35)
        });
        let twin = cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(10), || {
            panic!("must not execute")
        });
        assert_eq!(twin.status, FetchStatus::Coalesced);
        assert_eq!(twin.charged_ms, 35);
        assert_eq!(cache.stats().coalesced, 1);
    }

    #[test]
    fn different_k_or_query_miss() {
        let cache = SourceCache::new(SourceCacheConfig::default());
        cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(0), || {
            ok_outcome(35)
        });
        let other_k = cache.fetch(&web_def(), None, "q", 3, None, &SourceCtx::at(50), || {
            ok_outcome(35)
        });
        assert_eq!(other_k.status, FetchStatus::Miss);
        let other_q = cache.fetch(&web_def(), None, "r", 5, None, &SourceCtx::at(100), || {
            ok_outcome(35)
        });
        assert_eq!(other_q.status, FetchStatus::Miss);
    }

    #[test]
    fn proprietary_keys_are_tenant_scoped() {
        let def = DataSourceDef::Proprietary {
            table: "inventory".into(),
        };
        let cache = SourceCache::new(SourceCacheConfig::default());
        cache.fetch(
            &def,
            Some(TenantId(1)),
            "q",
            5,
            None,
            &SourceCtx::at(0),
            || ok_outcome(5),
        );
        let other_tenant = cache.fetch(
            &def,
            Some(TenantId(2)),
            "q",
            5,
            None,
            &SourceCtx::at(10),
            || ok_outcome(5),
        );
        assert_eq!(other_tenant.status, FetchStatus::Miss);
        let same_tenant = cache.fetch(
            &def,
            Some(TenantId(1)),
            "q",
            5,
            None,
            &SourceCtx::at(10),
            || panic!("must not execute"),
        );
        assert_eq!(same_tenant.status, FetchStatus::Hit);
    }

    #[test]
    fn ads_and_disabled_cache_bypass() {
        let cache = SourceCache::new(SourceCacheConfig::default());
        let ads = DataSourceDef::Ads { slots: 2 };
        for _ in 0..2 {
            let f = cache.fetch(&ads, None, "q", 2, None, &SourceCtx::at(0), || {
                ok_outcome(12)
            });
            assert_eq!(f.status, FetchStatus::Uncached);
        }
        let off = SourceCache::new(SourceCacheConfig::disabled());
        for _ in 0..2 {
            let f = off.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(0), || {
                ok_outcome(35)
            });
            assert_eq!(f.status, FetchStatus::Uncached);
        }
        assert_eq!(off.stats(), SourceCacheStats::default());
    }

    #[test]
    fn ttl_expiry_reexecutes() {
        let config = SourceCacheConfig {
            web_ttl_ms: 100,
            ..SourceCacheConfig::default()
        };
        let cache = SourceCache::new(config);
        cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(0), || {
            ok_outcome(35)
        });
        let fresh = cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(90), || {
            panic!("inside ttl")
        });
        assert_eq!(fresh.status, FetchStatus::Hit);
        let stale = cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(101), || {
            ok_outcome(35)
        });
        assert_eq!(stale.status, FetchStatus::Miss);
        assert_eq!(cache.stats().expired, 1);
    }

    #[test]
    fn negative_entries_expire_fast_and_count_separately() {
        let cache = SourceCache::new(SourceCacheConfig::default()); // negative_ttl 500
        let miss = cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(0), || {
            err_outcome(35)
        });
        assert!(miss.outcome.error.is_some());
        // Inside the negative TTL: the error is served back.
        let served = cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(100), || {
            panic!("negative entry must serve")
        });
        assert_eq!(served.status, FetchStatus::Hit);
        assert!(served.outcome.error.is_some());
        assert_eq!(cache.stats().negative_hits, 1);
        // Past it: re-executed.
        let retried = cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(600), || {
            ok_outcome(35)
        });
        assert_eq!(retried.status, FetchStatus::Miss);
        assert!(retried.outcome.error.is_none());
    }

    #[test]
    fn negative_entry_is_bypassed_while_breaker_not_closed() {
        use symphony_services::{BreakerConfig, BreakerRegistry};
        let cache = SourceCache::new(SourceCacheConfig::default());
        let breakers = BreakerRegistry::new(BreakerConfig {
            failure_threshold: 1,
            open_ms: 1_000,
            half_open_successes: 1,
        });
        let def = svc_def("pricing");
        cache.fetch(&def, None, "q", 5, None, &SourceCtx::at(0), || {
            err_outcome(40)
        });
        breakers.record("pricing", 40, false); // trip: Open
        let ctx = SourceCtx {
            breakers: Some(&breakers),
            ..SourceCtx::at(50)
        };
        // Open breaker: the fresh negative entry is NOT served; the
        // fetch re-executes (and would fast-fail against the breaker).
        let bypassed = cache.fetch(&def, None, "q", 5, None, &ctx, || SourceOutcome {
            items: Vec::new(),
            virtual_ms: 0,
            error: Some("circuit open".into()),
            attempts: 0,
        });
        assert_eq!(bypassed.status, FetchStatus::Miss);
        assert!(bypassed.outcome.error.as_deref() == Some("circuit open"));
        // Attempts == 0 outcomes are never cached: once the breaker
        // closes again the healthy path re-executes immediately.
        breakers.reset();
        let after = cache.fetch(
            &def,
            None,
            "q",
            5,
            None,
            &SourceCtx {
                breakers: Some(&breakers),
                ..SourceCtx::at(60)
            },
            || ok_outcome(10),
        );
        // The original negative entry (still inside its TTL) serves
        // again now that the breaker is closed... unless it was
        // overwritten; either way no stale circuit-open error appears.
        assert!(after.outcome.error.as_deref() != Some("circuit open"));
    }

    #[test]
    fn over_budget_hit_degrades_to_deadline_cut() {
        let cache = SourceCache::new(SourceCacheConfig::default());
        cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(0), || {
            ok_outcome(35)
        });
        // Coalesced wait of 35 ms against a 10 ms budget: cut.
        let cut = cache.fetch(
            &web_def(),
            None,
            "q",
            5,
            None,
            &SourceCtx {
                budget_ms: Some(10),
                ..SourceCtx::at(0)
            },
            || panic!("must not execute"),
        );
        assert_eq!(cut.charged_ms, 0);
        assert_eq!(cut.attempts_charged, 0);
        assert!(cut.outcome.error.as_ref().unwrap().contains("deadline cut"));
        // A plain hit (1 ms) fits the same budget.
        let hit = cache.fetch(
            &web_def(),
            None,
            "q",
            5,
            None,
            &SourceCtx {
                budget_ms: Some(10),
                ..SourceCtx::at(100)
            },
            || panic!("must not execute"),
        );
        assert_eq!(hit.status, FetchStatus::Hit);
        assert!(hit.outcome.error.is_none());
    }

    #[test]
    fn singleflight_coalesces_concurrent_misses_to_one_execution() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = SourceCache::new(SourceCacheConfig::default());
        let executions = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = &cache;
                    let executions = &executions;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        cache.fetch(
                            &web_def(),
                            None,
                            "stampede",
                            5,
                            None,
                            &SourceCtx::at(0),
                            || {
                                executions.fetch_add(1, Ordering::SeqCst);
                                // Real dwell so the others genuinely pile up.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                ok_outcome(35)
                            },
                        )
                    })
                })
                .collect();
            let results: Vec<Fetched> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(
                executions.load(Ordering::SeqCst),
                1,
                "exactly one execution per coalesced key"
            );
            // Same virtual start ⇒ every non-leader is charged the full
            // wait; all share the leader's allocation.
            for f in &results {
                assert_eq!(f.charged_ms, 35);
                assert!(Arc::ptr_eq(&f.outcome, &results[0].outcome));
            }
            let statuses = |s: FetchStatus| results.iter().filter(|f| f.status == s).count();
            assert_eq!(statuses(FetchStatus::Miss), 1);
            assert_eq!(statuses(FetchStatus::Coalesced), 7);
        });
    }

    #[test]
    fn panicking_leader_unparks_waiters() {
        let cache = Arc::new(SourceCache::new(SourceCacheConfig::default()));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (c2, b2) = (cache.clone(), barrier.clone());
        let waiter = std::thread::spawn(move || {
            b2.wait();
            // Arrive second (the leader dwells before panicking).
            std::thread::sleep(std::time::Duration::from_millis(5));
            c2.fetch(
                &web_def(),
                None,
                "doomed",
                5,
                None,
                &SourceCtx::at(0),
                || ok_outcome(35),
            )
        });
        barrier.wait();
        let leader = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.fetch(
                &web_def(),
                None,
                "doomed",
                5,
                None,
                &SourceCtx::at(0),
                || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("leader died");
                },
            )
        }));
        assert!(leader.is_err());
        // The waiter must not deadlock: it re-elects itself leader.
        let f = waiter.join().unwrap();
        assert!(f.outcome.error.is_none());
    }

    #[test]
    fn admission_protects_hot_entries_from_one_hit_wonders() {
        // Shard capacity 1 (capacity < SHARDS): a hot key is recorded
        // many times, then a cold key on the same shard tries to evict
        // it. TinyLFU must reject the newcomer.
        let config = SourceCacheConfig {
            capacity: 1,
            ..SourceCacheConfig::default()
        };
        let cache = SourceCache::new(config);
        // Heat up "hot" with repeated fetches (first is a miss).
        for t in 0..5u64 {
            cache.fetch(
                &web_def(),
                None,
                "hot",
                5,
                None,
                &SourceCtx::at(t * 10),
                || ok_outcome(35),
            );
        }
        // Walk distinct cold keys until one lands on hot's shard; each
        // is seen once, so its estimate can't beat the hot key's.
        for i in 0..64 {
            let q = format!("cold {i}");
            cache.fetch(&web_def(), None, &q, 5, None, &SourceCtx::at(100), || {
                ok_outcome(35)
            });
        }
        assert!(cache.stats().admission_rejected > 0, "no insert rejected");
        // The hot key is still resident.
        let hot = cache.fetch(
            &web_def(),
            None,
            "hot",
            5,
            None,
            &SourceCtx::at(200),
            || panic!("hot key was evicted"),
        );
        assert_eq!(hot.status, FetchStatus::Hit);
    }

    #[test]
    fn purge_expired_sweeps_all_shards() {
        let config = SourceCacheConfig::default();
        let cache = SourceCache::new(config);
        // Populate several keys (they spread over the shards).
        for i in 0..16 {
            cache.fetch(
                &web_def(),
                None,
                &format!("query {i}"),
                5,
                None,
                &SourceCtx::at(0),
                || ok_outcome(35),
            );
        }
        // Nothing is expired yet.
        assert_eq!(cache.purge_expired(config.web_ttl_ms / 2), 0);
        // Past the web TTL everything goes, and the stats agree.
        let swept = cache.purge_expired(config.web_ttl_ms + 40);
        assert_eq!(swept, 16);
        assert_eq!(cache.stats().expired, 16);
        assert_eq!(cache.purge_expired(config.web_ttl_ms + 41), 0);
    }

    #[test]
    fn clear_invalidates_everything() {
        let cache = SourceCache::new(SourceCacheConfig::default());
        cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(0), || {
            ok_outcome(35)
        });
        cache.clear();
        let refetched = cache.fetch(&web_def(), None, "q", 5, None, &SourceCtx::at(1), || {
            ok_outcome(35)
        });
        assert_eq!(refetched.status, FetchStatus::Miss);
    }

    // ---- TinyLFU unit tests ---------------------------------------

    #[test]
    fn sketch_estimates_grow_with_recorded_frequency() {
        let mut lfu = TinyLfu::new(64);
        let (hot, cold) = (0xAAAA_u64, 0x5555_u64);
        assert_eq!(lfu.estimate(hot), 0);
        lfu.record(hot); // doorkeeper only
        assert_eq!(lfu.estimate(hot), 1);
        for _ in 0..6 {
            lfu.record(hot);
        }
        assert!(lfu.estimate(hot) >= 6);
        lfu.record(cold);
        assert!(lfu.estimate(hot) > lfu.estimate(cold));
    }

    #[test]
    fn sketch_counters_saturate_at_fifteen() {
        let mut lfu = TinyLfu::new(64);
        for _ in 0..100 {
            lfu.record(7);
        }
        assert_eq!(lfu.estimate(7), 1 + 15, "doorkeeper + saturated nibble");
    }

    #[test]
    fn halving_ages_counters_and_clears_doorkeeper() {
        let mut lfu = TinyLfu::new(64);
        for _ in 0..9 {
            lfu.record(7); // doorkeeper + 8 increments
        }
        let before = lfu.estimate(7);
        assert_eq!(before, 9);
        lfu.halve();
        // Doorkeeper bit gone (-1), counters 8 → 4.
        assert_eq!(lfu.estimate(7), 4);
        // Both packed nibble positions halve independently: exercise a
        // hash pair landing in the same byte, different nibbles.
        let mut lfu2 = TinyLfu::new(64);
        for h in [2u64, 3u64] {
            for _ in 0..7 {
                lfu2.record(h);
            }
        }
        let (a, b) = (lfu2.estimate(2), lfu2.estimate(3));
        lfu2.halve();
        assert_eq!(lfu2.estimate(2), (a - 1) / 2);
        assert_eq!(lfu2.estimate(3), (b - 1) / 2);
    }

    #[test]
    fn sample_cap_triggers_automatic_halving() {
        let mut lfu = TinyLfu::new(8); // sample_cap = max(80, 100) = 100
        for _ in 0..99 {
            lfu.record(42);
        }
        let before = lfu.estimate(42);
        lfu.record(42); // 100th sample: halve fires first
        assert!(lfu.estimate(42) < before, "automatic halving never fired");
    }

    // ---- normalize_query unit tests -------------------------------

    #[test]
    fn normalize_folds_case_and_whitespace_in_one_pass() {
        assert_eq!(normalize_query("  SPACE   Shooter "), "space shooter");
        assert_eq!(normalize_query("a\tb\nc"), "a b c");
        assert_eq!(normalize_query(""), "");
        assert_eq!(normalize_query(" \t\n "), "");
        assert_eq!(normalize_query("one"), "one");
    }

    #[test]
    fn normalize_handles_unicode() {
        // Multi-char expansions: 'İ' lowercases to "i\u{307}".
        assert_eq!(normalize_query("İstanbul"), "i\u{307}stanbul");
        // German sharp s is already lowercase; uppercase ẞ folds to it.
        assert_eq!(normalize_query("STRAẞE"), "straße");
        // Greek sigma: char-level folding maps 'Σ' to 'σ' everywhere
        // (no final-sigma rule) — both spellings share one key.
        assert_eq!(normalize_query("ΟΔΟΣ"), "οδοσ");
        assert_eq!(normalize_query("οδος"), "οδος");
        // Non-ASCII whitespace folds too.
        assert_eq!(normalize_query("a\u{00a0}b\u{2003}c"), "a b c");
        // CJK text passes through untouched.
        assert_eq!(normalize_query("東京 タワー"), "東京 タワー");
    }

    #[test]
    fn normalize_matches_the_split_join_reference() {
        // The old implementation, kept as a reference oracle.
        fn reference(q: &str) -> String {
            q.split_whitespace()
                .map(|w| w.to_lowercase())
                .collect::<Vec<_>>()
                .join(" ")
        }
        for q in [
            "Space Shooter",
            "  a  B  c  ",
            "",
            "  ",
            "MIXED case\tTABS",
            "ünïcödé STRAẞE",
            "日本語 テスト",
        ] {
            assert_eq!(normalize_query(q), reference(q), "diverged on {q:?}");
        }
    }
}
