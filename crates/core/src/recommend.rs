//! Supplemental-content recommendation (paper §IV future work):
//! *"recommending suitable supplemental content (e.g., good game
//! review sites) for a designer's primary content (e.g., game
//! inventory)"*.
//!
//! Two evidence streams, combinable:
//!
//! 1. **Content-driven** — for each entity in the primary table, run
//!    an unrestricted web search for `"<entity> review"`; domains that
//!    repeatedly rank well across entities are good restriction
//!    candidates.
//! 2. **Crowd-driven** — the Site Suggest co-click model over query
//!    logs (paper ref [2]) seeded with the domains the first stream
//!    surfaced.

use std::collections::BTreeMap;
use symphony_store::IndexedTable;
use symphony_web::{LogEntry, SearchConfig, SearchEngine, SiteSuggest, Vertical};

/// One recommended supplemental site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRecommendation {
    /// Domain to add to the restriction list.
    pub domain: String,
    /// Aggregate evidence score (higher = better).
    pub score: f64,
    /// How many distinct primary entities contributed evidence.
    pub supporting_entities: usize,
}

/// Recommend review/supplemental sites for the entities found in the
/// `title_column` of a primary table.
///
/// For each entity the top `probe_k` unrestricted web results for
/// `"<entity> review"` vote for their domains with a rank-discounted
/// weight; domains supported by at least `min_support` entities are
/// returned, best first.
pub fn recommend_sites(
    engine: &SearchEngine,
    primary: &IndexedTable,
    title_column: &str,
    probe_k: usize,
    min_support: usize,
) -> Vec<SiteRecommendation> {
    let Some(col) = primary.table().schema().col(title_column) else {
        return Vec::new();
    };
    let mut votes: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    let mut entities = 0usize;
    for (_, record) in primary.table().iter() {
        let title = record.get(col).display_string();
        if title.is_empty() {
            continue;
        }
        entities += 1;
        let results = engine.search(
            Vertical::Web,
            &format!("{title} review"),
            &SearchConfig::default(),
            probe_k,
        );
        let mut seen_this_entity: Vec<&str> = Vec::new();
        for (rank, r) in results.iter().enumerate() {
            let entry = votes.entry(r.domain.clone()).or_insert((0.0, 0));
            entry.0 += 1.0 / (rank + 1) as f64;
            if !seen_this_entity.contains(&r.domain.as_str()) {
                entry.1 += 1;
                seen_this_entity.push(&r.domain);
            }
        }
    }
    let _ = entities;
    let mut out: Vec<SiteRecommendation> = votes
        .into_iter()
        .filter(|(_, (_, support))| *support >= min_support)
        .map(
            |(domain, (score, supporting_entities))| SiteRecommendation {
                domain,
                score,
                supporting_entities,
            },
        )
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.domain.cmp(&b.domain))
    });
    out
}

/// Expand content-driven recommendations with crowd evidence: the top
/// content recommendations seed Site Suggest over `logs`, and any
/// co-clicked site not already recommended is appended (scores scaled
/// into the tail of the list).
pub fn recommend_sites_with_crowd(
    engine: &SearchEngine,
    primary: &IndexedTable,
    title_column: &str,
    logs: &[LogEntry],
    k: usize,
) -> Vec<SiteRecommendation> {
    let mut base = recommend_sites(engine, primary, title_column, 8, 2);
    let seeds: Vec<&str> = base.iter().take(3).map(|r| r.domain.as_str()).collect();
    if !seeds.is_empty() {
        let suggest = SiteSuggest::from_logs(logs);
        let tail_scale = base.last().map(|r| r.score).unwrap_or(1.0) * 0.5;
        for s in suggest.suggest(&seeds, k) {
            if !base.iter().any(|r| r.domain == s.domain) {
                base.push(SiteRecommendation {
                    domain: s.domain,
                    score: tail_scale * s.score,
                    supporting_entities: 0,
                });
            }
        }
    }
    base.truncate(k);
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphony_store::ingest::{ingest, DataFormat};
    use symphony_web::{generate_logs, Corpus, CorpusConfig, LogConfig, Topic};

    fn world() -> (SearchEngine, IndexedTable) {
        let corpus = Corpus::generate(
            &CorpusConfig {
                sites_per_topic: 3,
                pages_per_site: 6,
                ..CorpusConfig::default()
            }
            .with_entities(
                Topic::Games,
                ["Galactic Raiders", "Farm Story", "Space Trader"],
            ),
        );
        let engine = SearchEngine::new(corpus);
        let (table, _) = ingest(
            "inventory",
            "title\nGalactic Raiders\nFarm Story\nSpace Trader\n",
            DataFormat::Csv,
        )
        .unwrap();
        (engine, IndexedTable::new(table))
    }

    #[test]
    fn recommends_the_authoritative_review_sites() {
        let (engine, inventory) = world();
        let recs = recommend_sites(&engine, &inventory, "title", 8, 2);
        assert!(!recs.is_empty());
        let top3: Vec<&str> = recs.iter().take(3).map(|r| r.domain.as_str()).collect();
        // The paper's hand-picked sites should dominate: they host a
        // review page per entity.
        assert!(
            top3.contains(&"gamespot.com")
                && top3.contains(&"ign.com")
                && top3.contains(&"teamxbox.com"),
            "top3 = {top3:?}"
        );
        // Supported by all three entities.
        assert!(recs[0].supporting_entities >= 3);
    }

    #[test]
    fn min_support_filters_one_off_domains() {
        let (engine, inventory) = world();
        let loose = recommend_sites(&engine, &inventory, "title", 8, 1);
        let strict = recommend_sites(&engine, &inventory, "title", 8, 3);
        assert!(strict.len() <= loose.len());
        assert!(strict.iter().all(|r| r.supporting_entities >= 3));
    }

    #[test]
    fn unknown_column_is_empty() {
        let (engine, inventory) = world();
        assert!(recommend_sites(&engine, &inventory, "nope", 8, 1).is_empty());
    }

    #[test]
    fn crowd_expansion_appends_coclicked_sites() {
        let (engine, inventory) = world();
        let logs = generate_logs(
            &engine,
            &LogConfig {
                sessions: 300,
                topics: vec![Topic::Games],
                ..LogConfig::default()
            },
        );
        let with_crowd = recommend_sites_with_crowd(&engine, &inventory, "title", &logs, 10);
        let without = recommend_sites(&engine, &inventory, "title", 8, 2);
        assert!(with_crowd.len() >= without.len().min(10));
        // Ordering still best-first by score for the content core.
        for w in with_crowd.windows(2).take(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
