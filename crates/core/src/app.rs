//! Application configuration.
//!
//! Everything the designer produced, in one validated object: the data
//! sources, the layout canvas, the supplemental query bindings, the
//! presentation stylesheet, and the monetization settings. The paper
//! calls this "the configuration file for the application" (§II-C).

use crate::error::PlatformError;
use crate::source::DataSourceDef;
use symphony_designer::{Canvas, Stylesheet, Template};
use symphony_store::{Filter, TenantId};

/// Identifier of a hosted application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u32);

/// A named data source in an application.
#[derive(Debug, Clone)]
pub struct DataSourceConfig {
    /// Name referenced by layout `ResultList`s.
    pub name: String,
    /// What it is and how to query it.
    pub def: DataSourceDef,
}

/// How a supplemental (nested) source builds its query from the
/// enclosing primary result (paper §II-A "Data Integration": sources
/// "queried based on selected fields from the primary content").
#[derive(Debug, Clone)]
pub struct SupplementalBinding {
    /// The supplemental source name.
    pub source: String,
    /// Query template over the primary record's fields, e.g.
    /// `"{title}" review`.
    pub query_template: Template,
}

/// Per-query resilience limits. All virtual-clock based; the runtime
/// enforces them so one slow or down dependency cannot stall a whole
/// response — fetches that would blow the deadline are cut off and
/// rendered as degraded slots instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Hard deadline for the whole query in virtual ms
    /// (`u32::MAX` = unlimited). Must leave room for the runtime's
    /// fixed receive/merge costs.
    pub query_deadline_ms: u32,
    /// Soft budget per source fetch in virtual ms (`u32::MAX` =
    /// unlimited); caps attempts, backoff, and timeouts of one fetch.
    pub per_source_budget_ms: u32,
    /// Total retries the whole query may spend across all fetches
    /// (`u32::MAX` = unlimited).
    pub max_total_retries: u32,
}

impl Default for ResiliencePolicy {
    /// Unlimited: the pre-resilience behaviour.
    fn default() -> Self {
        ResiliencePolicy {
            query_deadline_ms: u32::MAX,
            per_source_budget_ms: u32::MAX,
            max_total_retries: u32::MAX,
        }
    }
}

impl ResiliencePolicy {
    /// True when no limit is configured.
    pub fn is_unlimited(&self) -> bool {
        *self == ResiliencePolicy::default()
    }
}

/// Per-tenant admission limits, enforced by the hosting layer before
/// any query work begins. Where [`ResiliencePolicy`] protects a query
/// against *downstream* failure, this protects the platform against
/// *upstream* overload: requests beyond the bucket rate or concurrency
/// cap are shed with a cheap degraded response instead of executing.
/// All rates are on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Sustained admission rate in queries per virtual second
    /// (`u32::MAX` = unlimited; the token bucket never refuses).
    pub rate_per_sec: u32,
    /// Burst capacity in queries: how far above the sustained rate a
    /// short spike may go before shedding starts. Must be at least 1
    /// when a rate is configured.
    pub burst: u32,
    /// Maximum queries of this app concurrently in execution
    /// (`u32::MAX` = unlimited). Cache hits do not count: they consume
    /// no execution resources.
    pub max_concurrency: u32,
    /// Weighted-fair-scheduling weight for this tenant's share of the
    /// platform's fan-out worker pool (must be at least 1).
    pub weight: u32,
}

impl Default for AdmissionPolicy {
    /// Unlimited: the pre-admission-control behaviour.
    fn default() -> Self {
        AdmissionPolicy {
            rate_per_sec: u32::MAX,
            burst: u32::MAX,
            max_concurrency: u32::MAX,
            weight: 1,
        }
    }
}

impl AdmissionPolicy {
    /// True when no admission limit is configured (weight is advisory
    /// and does not count: it only shapes worker-pool shares).
    pub fn is_unlimited(&self) -> bool {
        self.rate_per_sec == u32::MAX && self.max_concurrency == u32::MAX
    }
}

/// Monetization settings (paper: voluntary, revenue-shared).
#[derive(Debug, Clone)]
pub struct MonetizationConfig {
    /// Log customer interactions for this app.
    pub log_interactions: bool,
    /// Publisher name credited in the ad ledger.
    pub publisher: String,
}

impl Default for MonetizationConfig {
    fn default() -> Self {
        MonetizationConfig {
            log_interactions: true,
            publisher: String::new(),
        }
    }
}

/// A complete application definition.
#[derive(Debug, Clone)]
pub struct ApplicationConfig {
    /// Application name ("GamerQueen").
    pub name: String,
    /// Owning tenant.
    pub owner: TenantId,
    /// Data sources by name.
    pub sources: Vec<DataSourceConfig>,
    /// The designed layout (top-level result lists are primary content
    /// queried with the user's query; nested ones are supplemental).
    pub layout: Canvas,
    /// Supplemental query bindings.
    pub supplemental: Vec<SupplementalBinding>,
    /// Structured constraints on proprietary sources (paper §IV
    /// "richer querying of structured data"): rows failing the filter
    /// never surface, regardless of text relevance.
    pub constraints: Vec<(String, Filter)>,
    /// Presentation stylesheet.
    pub stylesheet: Stylesheet,
    /// Monetization settings.
    pub monetization: MonetizationConfig,
    /// Per-query deadline / budget / retry limits.
    pub resilience: ResiliencePolicy,
    /// Per-tenant admission rate / concurrency / scheduling weight.
    pub admission: AdmissionPolicy,
}

impl ApplicationConfig {
    /// Look up a source definition by name.
    pub fn source(&self, name: &str) -> Option<&DataSourceConfig> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// Look up a supplemental binding by source name.
    pub fn binding(&self, source: &str) -> Option<&SupplementalBinding> {
        self.supplemental.iter().find(|b| b.source == source)
    }

    /// Look up a structured constraint by source name.
    pub fn constraint(&self, source: &str) -> Option<&Filter> {
        self.constraints
            .iter()
            .find(|(s, _)| s == source)
            .map(|(_, f)| f)
    }

    /// The primary result lists: every `ResultList` reachable from the
    /// root through containers only (a list inside another list's item
    /// layout is supplemental). Returns `(source, max_results, item
    /// layout)` in render order.
    pub fn primary_lists(&self) -> Vec<(String, usize, symphony_designer::Element)> {
        use symphony_designer::{Element, ElementKind};
        fn walk(e: &Element, out: &mut Vec<(String, usize, Element)>) {
            match &e.kind {
                ElementKind::Container { children, .. } => {
                    for c in children {
                        walk(c, out);
                    }
                }
                ElementKind::ResultList {
                    source,
                    item,
                    max_results,
                } => {
                    // Do not recurse into `item`: lists inside it are
                    // supplemental, resolved per primary result.
                    out.push((source.clone(), *max_results, (**item).clone()));
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        walk(self.layout.root(), &mut out);
        out
    }

    /// Source names used by primary result lists.
    pub fn primary_sources(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (source, _, _) in self.primary_lists() {
            if !out.contains(&source) {
                out.push(source);
            }
        }
        out
    }

    /// Source names used by nested result lists (supplemental).
    pub fn supplemental_sources(&self) -> Vec<String> {
        let all = self.layout.root().sources();
        let primary = self.primary_sources();
        all.into_iter().filter(|s| !primary.contains(s)).collect()
    }

    /// Validate the configuration:
    /// every layout source must be defined; every supplemental source
    /// must have a query binding; monetization needs a publisher name
    /// when interactions are logged.
    pub fn validate(&self) -> Result<(), PlatformError> {
        for s in self.layout.root().sources() {
            if self.source(&s).is_none() {
                return Err(PlatformError::UnknownSource(s));
            }
        }
        for s in self.supplemental_sources() {
            if self.binding(&s).is_none() {
                return Err(PlatformError::MissingBinding(s));
            }
        }
        if self.primary_sources().is_empty() {
            return Err(PlatformError::InvalidConfig(
                "layout has no top-level result list".into(),
            ));
        }
        for s in self.supplemental_sources() {
            if let Some(cfg) = self.source(&s) {
                if matches!(cfg.def, crate::source::DataSourceDef::ComposedApp { .. }) {
                    return Err(PlatformError::InvalidConfig(format!(
                        "composed app source {s:?} must be primary (top-level), not supplemental"
                    )));
                }
            }
        }
        for (source, _) in &self.constraints {
            match self.source(source).map(|c| &c.def) {
                Some(
                    crate::source::DataSourceDef::Proprietary { .. }
                    | crate::source::DataSourceDef::Hybrid { .. },
                ) => {}
                Some(_) => {
                    return Err(PlatformError::InvalidConfig(format!(
                        "constraint on non-proprietary source {source:?}"
                    )))
                }
                None => return Err(PlatformError::UnknownSource(source.clone())),
            }
        }
        if self.monetization.log_interactions && self.monetization.publisher.is_empty() {
            return Err(PlatformError::InvalidConfig(
                "monetization requires a publisher name".into(),
            ));
        }
        let fixed = crate::runtime::RECEIVE_MS + crate::runtime::MERGE_MS;
        if self.resilience.query_deadline_ms != u32::MAX
            && self.resilience.query_deadline_ms <= fixed
        {
            return Err(PlatformError::InvalidConfig(format!(
                "query deadline of {}ms leaves no room for the fixed \
                 receive+merge cost of {}ms",
                self.resilience.query_deadline_ms, fixed
            )));
        }
        if self.admission.weight == 0 {
            return Err(PlatformError::InvalidConfig(
                "admission weight must be at least 1".into(),
            ));
        }
        if self.admission.max_concurrency == 0 {
            return Err(PlatformError::InvalidConfig(
                "admission concurrency cap of 0 would shed every query".into(),
            ));
        }
        if self.admission.rate_per_sec != u32::MAX
            && (self.admission.rate_per_sec == 0 || self.admission.burst == 0)
        {
            return Err(PlatformError::InvalidConfig(
                "admission rate limiting needs a positive rate and burst".into(),
            ));
        }
        Ok(())
    }
}

/// Fluent builder for [`ApplicationConfig`].
#[derive(Debug)]
pub struct AppBuilder {
    config: ApplicationConfig,
}

impl AppBuilder {
    /// Start a new application for a tenant.
    pub fn new(name: &str, owner: TenantId) -> AppBuilder {
        AppBuilder {
            config: ApplicationConfig {
                name: name.to_string(),
                owner,
                sources: Vec::new(),
                layout: Canvas::new(),
                supplemental: Vec::new(),
                constraints: Vec::new(),
                stylesheet: Stylesheet::new(),
                monetization: MonetizationConfig {
                    log_interactions: true,
                    publisher: name.to_string(),
                },
                resilience: ResiliencePolicy::default(),
                admission: AdmissionPolicy::default(),
            },
        }
    }

    /// Add a data source.
    pub fn source(mut self, name: &str, def: DataSourceDef) -> AppBuilder {
        self.config.sources.push(DataSourceConfig {
            name: name.to_string(),
            def,
        });
        self
    }

    /// Set the layout canvas (usually from a [`symphony_designer::Designer`]).
    pub fn layout(mut self, layout: Canvas) -> AppBuilder {
        self.config.layout = layout;
        self
    }

    /// Bind a supplemental source's query template.
    pub fn supplemental(mut self, source: &str, query_template: &str) -> AppBuilder {
        self.config.supplemental.push(SupplementalBinding {
            source: source.to_string(),
            query_template: Template::parse(query_template),
        });
        self
    }

    /// Attach a structured constraint to a proprietary source.
    pub fn constraint(mut self, source: &str, filter: Filter) -> AppBuilder {
        self.config.constraints.push((source.to_string(), filter));
        self
    }

    /// Set the stylesheet.
    pub fn stylesheet(mut self, sheet: Stylesheet) -> AppBuilder {
        self.config.stylesheet = sheet;
        self
    }

    /// Configure monetization.
    pub fn monetization(mut self, m: MonetizationConfig) -> AppBuilder {
        self.config.monetization = m;
        self
    }

    /// Set the per-query resilience limits.
    pub fn resilience(mut self, policy: ResiliencePolicy) -> AppBuilder {
        self.config.resilience = policy;
        self
    }

    /// Set the per-tenant admission limits.
    pub fn admission(mut self, policy: AdmissionPolicy) -> AppBuilder {
        self.config.admission = policy;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ApplicationConfig, PlatformError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphony_designer::Element;
    use symphony_web::{SearchConfig, Vertical};

    fn layout_with(primary: &str, nested: Option<&str>) -> Canvas {
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        let mut item = Element::column(vec![Element::text("{title}")]);
        if let Some(n) = nested {
            if let symphony_designer::ElementKind::Container { children, .. } = &mut item.kind {
                children.push(Element::result_list(n, Element::text("{title}"), 3));
            }
        }
        canvas
            .insert(root, Element::result_list(primary, item, 10))
            .unwrap();
        canvas
    }

    fn builder(layout: Canvas) -> AppBuilder {
        AppBuilder::new("GamerQueen", TenantId(0))
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "reviews",
                DataSourceDef::WebVertical {
                    vertical: Vertical::Web,
                    config: SearchConfig::default(),
                },
            )
            .layout(layout)
    }

    #[test]
    fn valid_config_builds() {
        let app = builder(layout_with("inventory", Some("reviews")))
            .supplemental("reviews", "{title} review")
            .build()
            .unwrap();
        assert_eq!(app.primary_sources(), vec!["inventory"]);
        assert_eq!(app.supplemental_sources(), vec!["reviews"]);
        assert!(app.binding("reviews").is_some());
    }

    #[test]
    fn unknown_layout_source_rejected() {
        let err = builder(layout_with("mystery", None)).build().unwrap_err();
        assert_eq!(err, PlatformError::UnknownSource("mystery".into()));
    }

    #[test]
    fn missing_supplemental_binding_rejected() {
        let err = builder(layout_with("inventory", Some("reviews")))
            .build()
            .unwrap_err();
        assert_eq!(err, PlatformError::MissingBinding("reviews".into()));
    }

    #[test]
    fn empty_layout_rejected() {
        let err = builder(Canvas::new()).build().unwrap_err();
        assert!(matches!(err, PlatformError::InvalidConfig(_)));
    }

    #[test]
    fn monetization_needs_publisher() {
        let err = builder(layout_with("inventory", None))
            .monetization(MonetizationConfig {
                log_interactions: true,
                publisher: String::new(),
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::InvalidConfig(_)));
        // Disabling logging removes the requirement.
        let ok = builder(layout_with("inventory", None))
            .monetization(MonetizationConfig {
                log_interactions: false,
                publisher: String::new(),
            })
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn constraints_validate_against_source_kind() {
        use symphony_store::{CmpOp, Value};
        // Constraint on a proprietary source: fine.
        let ok = builder(layout_with("inventory", None))
            .constraint("inventory", Filter::cmp(2, CmpOp::Lt, Value::Float(50.0)))
            .build();
        assert!(ok.is_ok());
        assert!(ok.unwrap().constraint("inventory").is_some());
        // Constraint on a web source: rejected.
        let err = builder(layout_with("inventory", None))
            .constraint("reviews", Filter::True)
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::InvalidConfig(_)));
        // Constraint on an unknown source: rejected.
        let err = builder(layout_with("inventory", None))
            .constraint("ghost", Filter::True)
            .build()
            .unwrap_err();
        assert_eq!(err, PlatformError::UnknownSource("ghost".into()));
    }

    #[test]
    fn primary_lists_found_inside_containers() {
        // A result list wrapped in a column (header + list) is still
        // primary; only lists inside another list's item layout are
        // supplemental.
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas
            .insert(
                root,
                Element::column(vec![
                    Element::text("Games"),
                    Element::result_list(
                        "inventory",
                        Element::column(vec![
                            Element::text("{title}"),
                            Element::result_list("reviews", Element::text("{title}"), 2),
                        ]),
                        5,
                    ),
                ]),
            )
            .unwrap();
        let app = builder(canvas)
            .supplemental("reviews", "{title} review")
            .build()
            .unwrap();
        assert_eq!(app.primary_sources(), vec!["inventory"]);
        assert_eq!(app.supplemental_sources(), vec!["reviews"]);
        assert_eq!(app.primary_lists().len(), 1);
        assert_eq!(app.primary_lists()[0].1, 5);
    }

    #[test]
    fn resilience_deadline_must_cover_fixed_costs() {
        let tight = ResiliencePolicy {
            query_deadline_ms: crate::runtime::RECEIVE_MS + crate::runtime::MERGE_MS,
            ..ResiliencePolicy::default()
        };
        let err = builder(layout_with("inventory", None))
            .resilience(tight)
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::InvalidConfig(_)));
        let ok = builder(layout_with("inventory", None))
            .resilience(ResiliencePolicy {
                query_deadline_ms: 500,
                per_source_budget_ms: 200,
                max_total_retries: 4,
            })
            .build()
            .unwrap();
        assert!(!ok.resilience.is_unlimited());
        assert!(ApplicationConfig::validate(&ok).is_ok());
        // The default is unlimited and always valid.
        let def = builder(layout_with("inventory", None)).build().unwrap();
        assert!(def.resilience.is_unlimited());
    }

    #[test]
    fn admission_policy_validates() {
        // Defaults are unlimited and always valid.
        let def = builder(layout_with("inventory", None)).build().unwrap();
        assert!(def.admission.is_unlimited());
        // A rate-limited policy must have positive rate and burst.
        for bad in [
            AdmissionPolicy {
                rate_per_sec: 10,
                burst: 0,
                ..AdmissionPolicy::default()
            },
            AdmissionPolicy {
                rate_per_sec: 0,
                burst: 5,
                ..AdmissionPolicy::default()
            },
            AdmissionPolicy {
                weight: 0,
                ..AdmissionPolicy::default()
            },
            AdmissionPolicy {
                max_concurrency: 0,
                ..AdmissionPolicy::default()
            },
        ] {
            let err = builder(layout_with("inventory", None))
                .admission(bad)
                .build()
                .unwrap_err();
            assert!(matches!(err, PlatformError::InvalidConfig(_)), "{bad:?}");
        }
        let ok = builder(layout_with("inventory", None))
            .admission(AdmissionPolicy {
                rate_per_sec: 50,
                burst: 10,
                max_concurrency: 4,
                weight: 2,
            })
            .build()
            .unwrap();
        assert!(!ok.admission.is_unlimited());
    }

    #[test]
    fn source_lookup() {
        let app = builder(layout_with("inventory", None)).build().unwrap();
        assert!(app.source("inventory").is_some());
        assert!(app.source("nope").is_none());
    }
}
