//! The hosted platform.
//!
//! Paper §II-A, "Hosting": *"Regardless of how an application is
//! distributed, its execution and the resources involved are always
//! shouldered by Symphony."* [`Platform`] owns every substrate, hosts
//! registered applications behind a publish lifecycle, enforces
//! request and storage quotas, caches results, and feeds the
//! monetization log.
//!
//! # Concurrency model
//!
//! The platform splits its API along the serving/administration line:
//!
//! - **Serving** ([`Platform::query`], [`Platform::click`], and the
//!   analytics/readout methods) takes `&self` and may run from many
//!   threads against one shared `Platform` (it is `Send + Sync`).
//! - **Administration** (tenant/table management, app registration,
//!   publish/unpublish, substrate mutators) takes `&mut self`, so
//!   exclusive access is enforced statically — no lock is ever needed
//!   to read app configs or tenant tables on the serving path.
//!
//! Mutable serving state is sharded behind fine-grained locks so
//! unrelated requests do not contend: each hosted app has its own
//! result-cache and request-metering [`Mutex`]es, the interaction log
//! is one coarse [`Mutex`] (append-only), ad billing synchronizes
//! inside [`AdServer`], and the virtual clock is an [`AtomicU64`].

use crate::admission::{FanoutScheduler, Lane, TokenBucket};
use crate::app::{AppId, ApplicationConfig};
use crate::cache::{CacheStats, LruTtlCache};
use crate::embed::{embed_snippet, SocialManifest};
use crate::error::PlatformError;
use crate::monetize::{ClickLog, Impression, InteractionEvent, InteractionKind, TrafficSummary};
use crate::runtime::{execute_resilient, shed_response, ExecCtx, ExecMode, QueryResponse};
use crate::source::Substrates;
use crate::source_cache::{normalize_query, SourceCache, SourceCacheConfig, SourceCacheStats};

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use symphony_ads::{AdServer, CampaignId, Placement};
use symphony_store::{AccessKey, IndexedTable, Store, TenantId};
use symphony_web::SearchEngine;

/// Virtual cost of serving a response from the cache.
pub const CACHE_HIT_MS: u32 = 2;

/// Platform-wide quota configuration.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Requests allowed per application per virtual minute.
    pub requests_per_minute: u32,
    /// Maximum live records per tenant space.
    pub max_records_per_tenant: usize,
    /// Result-cache entries per application.
    pub cache_capacity: usize,
    /// Result-cache TTL in virtual ms.
    pub cache_ttl_ms: u64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            requests_per_minute: 600,
            max_records_per_tenant: 100_000,
            cache_capacity: 256,
            cache_ttl_ms: 60_000,
        }
    }
}

/// What one [`Platform::maintenance_tick`] did across substrates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceSummary {
    /// Full-text views visited (tenant tables, plus one entry for the
    /// web engine's verticals when the platform owns the engine).
    pub views: usize,
    /// Views that sealed their memtable segment this tick.
    pub sealed: usize,
    /// Background segment merges run.
    pub merges: usize,
    /// Tombstoned documents physically purged from posting lists.
    pub purged_docs: usize,
    /// Expired entries swept out of the per-app L1 response caches.
    pub purged_responses: usize,
    /// Expired entries swept out of the shared L2 source cache.
    pub purged_sources: usize,
}

struct HostedApp {
    /// Immutable after [`Platform::register_app`] (admin ops hold
    /// `&mut Platform`, so the serving path reads it lock-free).
    config: ApplicationConfig,
    published: bool,
    /// Per-app result cache (L1): requests for different apps never
    /// contend on it. Entries are `Arc`s of the pre-marked hit variant
    /// of a response, so a hit is a pointer clone — no deep
    /// `QueryResponse` copy on the hot path.
    cache: Mutex<LruTtlCache<String, Arc<QueryResponse>>>,
    /// Request timestamps inside the current quota window.
    metering: Mutex<VecDeque<u64>>,
    /// Queries served (cache hits and shed queries included).
    queries: AtomicU64,
    /// Queries whose response was degraded (some source slot errored).
    /// Disjoint from `shed_queries`.
    degraded_queries: AtomicU64,
    /// Queries shed by admission control before execution.
    shed_queries: AtomicU64,
    /// Admission token bucket, refilled on the virtual clock.
    bucket: Mutex<TokenBucket>,
    /// Queries of this app currently in execution (cache hits and shed
    /// responses never count: they consume no execution resources).
    inflight: AtomicU32,
}

/// RAII in-execution marker: holds one slot of an app's concurrency
/// cap, released on drop (panic-safe).
struct InflightSlot<'a>(&'a AtomicU32);

impl<'a> InflightSlot<'a> {
    /// Atomically claim a slot if fewer than `max` are taken.
    fn try_enter(counter: &'a AtomicU32, max: u32) -> Option<InflightSlot<'a>> {
        counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                (c < max).then_some(c + 1)
            })
            .ok()
            .map(|_| InflightSlot(counter))
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The Symphony platform: substrates + hosted applications.
///
/// `Send + Sync`; see the [module docs](self) for which methods may
/// run concurrently.
pub struct Platform {
    store: Store,
    engine: Arc<SearchEngine>,
    transport: symphony_services::SimulatedTransport,
    ads: AdServer,
    apps: Vec<HostedApp>,
    click_log: Mutex<ClickLog>,
    /// Per-endpoint circuit breakers, shared by every hosted app
    /// (lock-sharded internally).
    breakers: symphony_services::BreakerRegistry,
    /// Platform-wide L2 source-result cache, shared by every hosted
    /// app (lock-sharded internally; singleflight + TinyLFU).
    source_cache: SourceCache,
    /// Platform-wide fan-out worker-permit pool: concurrent queries
    /// share [`crate::runtime::MAX_FANOUT_WORKERS`] OS threads in
    /// weighted fair shares.
    scheduler: FanoutScheduler,
    clock_ms: AtomicU64,
    quotas: QuotaConfig,
    mode: ExecMode,
    host_url: String,
    /// Distributed web-search backend; when set, web-vertical sources
    /// scatter across shard nodes instead of hitting `engine`.
    scatter: Option<Arc<dyn crate::source::ScatterSearch>>,
}

// Compile-time guarantee that the serving path can be shared across
// threads; a non-Sync field would fail here, not at a distant callsite.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Platform>();
};

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("apps", &self.apps.len())
            .field("clock_ms", &self.clock_ms.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl Platform {
    /// Create a platform over a prepared web engine. Accepts either an
    /// owned engine or a shared `Arc` (baseline models share one corpus).
    pub fn new(engine: impl Into<Arc<SearchEngine>>) -> Platform {
        Platform {
            store: Store::new(),
            engine: engine.into(),
            transport: symphony_services::SimulatedTransport::new(0xD1CE),
            ads: AdServer::new(),
            apps: Vec::new(),
            click_log: Mutex::new(ClickLog::new()),
            breakers: symphony_services::BreakerRegistry::new(
                symphony_services::BreakerConfig::default(),
            ),
            source_cache: SourceCache::new(SourceCacheConfig::default()),
            scheduler: FanoutScheduler::new(crate::runtime::MAX_FANOUT_WORKERS),
            clock_ms: AtomicU64::new(0),
            quotas: QuotaConfig::default(),
            mode: ExecMode::Parallel,
            host_url: "https://symphony.example.com".into(),
            scatter: None,
        }
    }

    /// Attach a distributed web-search backend. Web-vertical sources
    /// then scatter across its shard nodes instead of querying the
    /// local engine; caches are cleared because cached entries were
    /// produced by the other backend.
    pub fn set_scatter(&mut self, scatter: Arc<dyn crate::source::ScatterSearch>) {
        self.scatter = Some(scatter);
        self.source_cache.clear();
        for app in &mut self.apps {
            app.cache.get_mut().clear();
        }
    }

    /// Override quotas.
    pub fn with_quotas(mut self, quotas: QuotaConfig) -> Platform {
        self.quotas = quotas;
        self
    }

    /// Override the fan-out mode (E1 ablation).
    pub fn with_mode(mut self, mode: ExecMode) -> Platform {
        self.mode = mode;
        self
    }

    /// Override the circuit-breaker configuration
    /// ([`BreakerConfig::disabled`](symphony_services::BreakerConfig::disabled)
    /// restores the pre-breaker behaviour). Resets breaker state, and
    /// drops cached source results whose negative entries were keyed
    /// to the old breaker behaviour.
    pub fn with_breaker_config(mut self, config: symphony_services::BreakerConfig) -> Platform {
        self.breakers = symphony_services::BreakerRegistry::new(config);
        self.source_cache.clear();
        self
    }

    /// Override the L2 source-cache configuration
    /// ([`SourceCacheConfig::disabled`] restores the pre-L2 behaviour,
    /// where every L1 miss re-fetches every source).
    pub fn with_source_cache(mut self, config: SourceCacheConfig) -> Platform {
        self.source_cache = SourceCache::new(config);
        self
    }

    /// Replace the transport with a freshly seeded one (chaos tests
    /// run the same scenario over a seed grid). Call before
    /// registering services: existing registrations are dropped, and
    /// cached source results with them.
    pub fn with_transport_seed(mut self, seed: u64) -> Platform {
        self.transport = symphony_services::SimulatedTransport::new(seed);
        self.source_cache.clear();
        self
    }

    // ---- Substrate access ----------------------------------------

    /// Mutable transport (register services before building apps).
    /// Invalidates the L2 source cache: cached service outcomes may
    /// not survive re-registration or fault-plan changes.
    pub fn transport_mut(&mut self) -> &mut symphony_services::SimulatedTransport {
        self.source_cache.clear();
        &mut self.transport
    }

    /// Mutable ad server (create campaigns).
    pub fn ads_mut(&mut self) -> &mut AdServer {
        &mut self.ads
    }

    /// The ad server (ledger access).
    pub fn ads(&self) -> &AdServer {
        &self.ads
    }

    /// The web engine.
    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    /// Mutable web engine, for live corpus updates (crawl ingest,
    /// URL removal, click feedback). `None` when the engine `Arc` is
    /// shared outside this platform (baseline models share one
    /// corpus); ingest through a dedicated platform instead. Drops the
    /// L2 source cache and every app's result cache, since web results
    /// may change underneath them.
    pub fn engine_mut(&mut self) -> Option<&mut SearchEngine> {
        Arc::get_mut(&mut self.engine)?;
        self.source_cache.clear();
        for app in &mut self.apps {
            app.cache.get_mut().clear();
        }
        Arc::get_mut(&mut self.engine)
    }

    /// The shared circuit breakers (inspection / manual reset).
    pub fn breakers(&self) -> &symphony_services::BreakerRegistry {
        &self.breakers
    }

    /// The shared fan-out worker pool (fairness readouts: lifetime
    /// grants per tenant, outstanding permits per lane).
    pub fn scheduler(&self) -> &FanoutScheduler {
        &self.scheduler
    }

    /// Breaker state for one endpoint at the current virtual time.
    pub fn breaker_state(&self, endpoint: &str) -> symphony_services::BreakerState {
        self.breakers
            .state(endpoint, self.clock_ms.load(Ordering::SeqCst))
    }

    /// The store (tenant management through the normal keyed API).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable store. Invalidates the L2 source cache: cached
    /// proprietary-table outcomes may not survive data changes.
    pub fn store_mut(&mut self) -> &mut Store {
        self.source_cache.clear();
        &mut self.store
    }

    /// Aggregate statistics of the platform-wide L2 source cache.
    pub fn source_cache_stats(&self) -> SourceCacheStats {
        self.source_cache.stats()
    }

    // ---- Tenants and data -----------------------------------------

    /// Create a tenant space.
    pub fn create_tenant(&mut self, name: &str) -> (TenantId, AccessKey) {
        self.store.create_tenant(name)
    }

    /// Upload a table into a tenant space, enforcing the storage
    /// quota.
    pub fn upload_table(
        &mut self,
        tenant: TenantId,
        key: &AccessKey,
        table: IndexedTable,
    ) -> Result<(), PlatformError> {
        let limit = self.quotas.max_records_per_tenant;
        let space = self.store.space_mut(tenant, key)?;
        if space.total_records() + table.table().len() > limit {
            return Err(PlatformError::StorageQuotaExceeded { limit });
        }
        space.put_table(table);
        // Cached outcomes against the replaced table are stale.
        self.source_cache.clear();
        Ok(())
    }

    /// Warm the platform for serving: compress every tenant table's
    /// full-text posting lists and precompute their score-bound stats,
    /// spreading tables across scoped worker threads (capped like the
    /// fan-out pool). Multi-app boot calls this once after uploading
    /// tenant data so first queries skip the raw-postings slow path.
    /// Optimization never changes results, so nothing cached is
    /// invalidated. Returns the number of tables visited.
    pub fn warmup(&mut self) -> usize {
        let tables: Vec<&mut IndexedTable> = self
            .store
            .spaces_mut()
            .flat_map(|space| space.tables_mut())
            .collect();
        let n = tables.len();
        if n == 0 {
            return 0;
        }
        // Warmup is background work: take its worker budget from the
        // background lane so it can never displace interactive queries
        // mid-flight.
        let grant = self.scheduler.acquire(
            u64::MAX,
            1,
            crate::runtime::MAX_FANOUT_WORKERS.min(n),
            Lane::Background,
        );
        let workers = grant.workers();
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            let mut rest = tables;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let part: Vec<&mut IndexedTable> = rest.drain(..take).collect();
                s.spawn(move || {
                    for table in part {
                        table.optimize_fulltext();
                    }
                });
            }
        });
        n
    }

    /// One background-maintenance step over every full-text view at
    /// the current virtual clock: each tenant table's view — and the
    /// web engine's verticals, when the platform owns the engine —
    /// seals its memtable if over the segment policy's size cap or
    /// staleness window, then runs at most one tombstone-purging
    /// merge. Driven off the same virtual clock the serving path
    /// advances, so a replayed workload schedules the exact same
    /// seals and merges.
    ///
    /// Maintenance is rank-safe (results are bit-identical before and
    /// after), so nothing cached is invalidated; under a
    /// `near_real_time` segment policy it is also the moment buffered
    /// documents become visible.
    pub fn maintenance_tick(&mut self) -> MaintenanceSummary {
        let now = self.clock_ms.load(Ordering::SeqCst);
        let mut summary = MaintenanceSummary::default();
        for space in self.store.spaces_mut() {
            for table in space.tables_mut() {
                if let Some(r) = table.maintain_fulltext(now) {
                    summary.views += 1;
                    summary.sealed += usize::from(r.sealed);
                    summary.merges += r.merged_segments;
                    summary.purged_docs += r.purged_docs;
                }
            }
        }
        if let Some(engine) = Arc::get_mut(&mut self.engine) {
            let r = engine.maintain(now);
            summary.views += 1;
            summary.sealed += usize::from(r.sealed);
            summary.merges += r.merged_segments;
            summary.purged_docs += r.purged_docs;
        }
        // Eager cache sweeps ride the same tick: expired L1 response
        // entries and L2 source outcomes are reclaimed here instead of
        // lingering until a lookup happens to land on them.
        for app in &mut self.apps {
            summary.purged_responses += app.cache.get_mut().purge_expired(now);
        }
        summary.purged_sources += self.source_cache.purge_expired(now);
        summary
    }

    // ---- Application lifecycle ------------------------------------

    /// Register a validated application (starts unpublished).
    pub fn register_app(&mut self, config: ApplicationConfig) -> Result<AppId, PlatformError> {
        config.validate()?;
        let id = AppId(self.apps.len() as u32);
        let admission = config.admission;
        self.apps.push(HostedApp {
            config,
            published: false,
            cache: Mutex::new(LruTtlCache::new(
                self.quotas.cache_capacity,
                self.quotas.cache_ttl_ms,
            )),
            metering: Mutex::new(VecDeque::new()),
            queries: AtomicU64::new(0),
            degraded_queries: AtomicU64::new(0),
            shed_queries: AtomicU64::new(0),
            bucket: Mutex::new(TokenBucket::new(
                admission.rate_per_sec,
                admission.burst,
                self.clock_ms.load(Ordering::SeqCst),
            )),
            inflight: AtomicU32::new(0),
        });
        Ok(id)
    }

    /// Publish an application (it becomes queryable).
    pub fn publish(&mut self, id: AppId) -> Result<(), PlatformError> {
        let app = self
            .apps
            .get_mut(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))?;
        app.published = true;
        Ok(())
    }

    /// Unpublish an application (cache cleared).
    pub fn unpublish(&mut self, id: AppId) -> Result<(), PlatformError> {
        let app = self
            .apps
            .get_mut(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))?;
        app.published = false;
        app.cache.get_mut().clear();
        Ok(())
    }

    /// The configuration of a hosted app.
    pub fn app(&self, id: AppId) -> Option<&ApplicationConfig> {
        self.apps.get(id.0 as usize).map(|a| &a.config)
    }

    /// Copy-paste embed code for an app.
    pub fn embed_code(&self, id: AppId) -> Result<String, PlatformError> {
        let app = self
            .apps
            .get(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))?;
        Ok(embed_snippet(&app.config, id, &self.host_url))
    }

    /// Social deployment descriptor for an app.
    pub fn social_manifest(&self, id: AppId) -> Result<SocialManifest, PlatformError> {
        let app = self
            .apps
            .get(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))?;
        Ok(SocialManifest::for_app(&app.config, id, &self.host_url))
    }

    // ---- Query path (Fig. 2) --------------------------------------

    /// Execute a customer query against a published application.
    ///
    /// Takes `&self`: any number of queries (for the same or different
    /// apps) may run concurrently against one shared platform. The
    /// response is shared ([`Arc`]): cache hits hand out the same
    /// allocation to every caller instead of deep-cloning it.
    pub fn query(&self, id: AppId, query: &str) -> Result<Arc<QueryResponse>, PlatformError> {
        self.query_at_depth(id, query, 0)
    }

    /// Maximum app-composition depth (paper §IV: "creating new
    /// applications by composing other applications"). Depth 0 is the
    /// queried app; its composed sources run at depth 1. Beyond the
    /// limit a composed source degrades to a soft error, which also
    /// breaks composition cycles.
    ///
    /// Composed sources are resolved on every parent request, *before*
    /// the parent's cache lookup — the child usually answers from its
    /// own result cache, so repeated composition is cheap, and child
    /// traffic statistics stay accurate.
    pub const MAX_COMPOSE_DEPTH: u32 = 2;

    fn query_at_depth(
        &self,
        id: AppId,
        query: &str,
        depth: u32,
    ) -> Result<Arc<QueryResponse>, PlatformError> {
        // Resolve composed primary sources by recursively querying the
        // referenced apps *before* the main borrow-split below.
        let composed: Vec<(String, AppId)> = {
            let config = self
                .apps
                .get(id.0 as usize)
                .map(|a| &a.config)
                .ok_or(PlatformError::AppNotFound(id.0))?;
            config
                .sources
                .iter()
                .filter_map(|s| match s.def {
                    crate::source::DataSourceDef::ComposedApp { app } => {
                        Some((s.name.clone(), app))
                    }
                    _ => None,
                })
                .collect()
        };
        let mut overrides: std::collections::HashMap<String, crate::source::SourceOutcome> =
            std::collections::HashMap::new();
        for (name, child) in composed {
            let outcome = if depth + 1 >= Self::MAX_COMPOSE_DEPTH {
                crate::source::SourceOutcome {
                    items: Vec::new(),
                    virtual_ms: 0,
                    error: Some(format!(
                        "composition depth limit ({}) reached",
                        Self::MAX_COMPOSE_DEPTH
                    )),
                    attempts: 0,
                }
            } else {
                let child_name = self
                    .app(child)
                    .map(|c| c.name.clone())
                    .unwrap_or_else(|| format!("app-{}", child.0));
                match self.query_at_depth(child, query, depth + 1) {
                    Ok(resp) => crate::source::SourceOutcome {
                        items: resp
                            .impressions
                            .iter()
                            .filter(|imp| !imp.is_ad) // never re-syndicate ads
                            .map(|imp| crate::source::ResultItem {
                                fields: vec![
                                    ("title".to_string(), imp.title.clone()),
                                    ("url".to_string(), imp.url.clone().unwrap_or_default()),
                                    ("source".to_string(), imp.source.clone()),
                                    ("app".to_string(), child_name.clone()),
                                ],
                                score: 0.0,
                            })
                            .collect(),
                        virtual_ms: resp.virtual_ms,
                        error: None,
                        attempts: 1,
                    },
                    Err(e) => crate::source::SourceOutcome {
                        items: Vec::new(),
                        virtual_ms: 0,
                        error: Some(e.to_string()),
                        attempts: 0,
                    },
                }
            };
            overrides.insert(name, outcome);
        }
        self.query_with_overrides(id, query, overrides)
    }

    fn query_with_overrides(
        &self,
        id: AppId,
        query: &str,
        overrides: std::collections::HashMap<String, crate::source::SourceOutcome>,
    ) -> Result<Arc<QueryResponse>, PlatformError> {
        let hosted = self
            .apps
            .get(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))?;
        if !hosted.published {
            return Err(PlatformError::NotPublished(hosted.config.name.clone()));
        }
        let now = self.clock_ms.load(Ordering::SeqCst);

        // Request quota over the last virtual minute, under this
        // app's metering lock (requests for other apps don't touch it).
        {
            let mut metering = hosted.metering.lock();
            let window_start = now.saturating_sub(60_000);
            while metering.front().is_some_and(|&t| t < window_start) {
                metering.pop_front();
            }
            if metering.len() >= self.quotas.requests_per_minute as usize {
                return Err(PlatformError::QuotaExceeded {
                    app: hosted.config.name.clone(),
                    limit: self.quotas.requests_per_minute,
                });
            }
            metering.push_back(now);
        }

        // Responses computed under parent-composition `overrides` are
        // a different result than the app's plain answer for the same
        // text: key them separately so neither can poison the other.
        let mut cache_key = normalize_query(query);
        if !overrides.is_empty() {
            cache_key.push_str(&format!(
                "\u{1}ov:{:016x}",
                overrides_fingerprint(&overrides)
            ));
        }
        let log_interactions = hosted.config.monetization.log_interactions;
        let app_name = hosted.config.name.as_str();

        let cached = hosted.cache.lock().get(&cache_key, now).cloned();
        if let Some(resp) = cached {
            // The cached entry is already the marked hit variant
            // (cache_hit, flat CACHE_HIT_MS timing): serving it is a
            // pointer clone, not a deep response copy.
            hosted.queries.fetch_add(1, Ordering::Relaxed);
            if resp.trace.degraded && !resp.trace.shed {
                hosted.degraded_queries.fetch_add(1, Ordering::Relaxed);
            }
            let at = self.advance_clock_by(CACHE_HIT_MS as u64);
            if log_interactions {
                log_impressions(&self.click_log, app_name, query, &resp.impressions, at);
            }
            return Ok(resp);
        }

        // Admission control (tentpole: per-tenant overload protection).
        // Checked only on the execute path — cache hits above consume
        // no execution resources and are never shed. Order: claim a
        // concurrency slot first (a refused slot consumes no token),
        // then a bucket token; refusal on either sheds the query with
        // the cheap degraded shell instead of queuing it.
        let admission = hosted.config.admission;
        let _inflight = if admission.is_unlimited() {
            None
        } else {
            let Some(slot) = InflightSlot::try_enter(&hosted.inflight, admission.max_concurrency)
            else {
                return Ok(self.shed(hosted, query, "concurrency cap reached"));
            };
            if !hosted.bucket.lock().try_acquire(now) {
                drop(slot);
                return Ok(self.shed(hosted, query, "rate limit exceeded"));
            }
            Some(slot)
        };

        // Cache miss: execute without holding the cache lock, so a
        // slow source never blocks this app's cache hits. Concurrent
        // misses on the same key may both assemble the response, but
        // the expensive source fetches underneath coalesce in the L2
        // source cache's singleflight; last writer wins here.
        let subs = Substrates {
            space: self.store.space_by_id(hosted.config.owner),
            engine: Some(&self.engine),
            transport: Some(&self.transport),
            ads: Some(&self.ads),
            scatter: self.scatter.as_deref(),
        };
        let resp = execute_resilient(
            &hosted.config,
            query,
            subs,
            self.mode,
            &overrides,
            &ExecCtx {
                now_ms: now,
                breakers: Some(&self.breakers),
                source_cache: Some(&self.source_cache),
                scheduler: Some(&self.scheduler),
                lane: Lane::Interactive,
            },
        );
        hosted.queries.fetch_add(1, Ordering::Relaxed);
        if resp.trace.degraded {
            hosted.degraded_queries.fetch_add(1, Ordering::Relaxed);
        }
        let at = self.advance_clock_by(resp.virtual_ms as u64);
        if log_interactions {
            log_impressions(&self.click_log, app_name, query, &resp.impressions, at);
        }
        // Build the hit variant once, at insert time (the one clone a
        // miss pays); every later hit shares it.
        let mut hit = resp.clone();
        hit.trace.cache_hit = true;
        hit.virtual_ms = CACHE_HIT_MS;
        hit.trace.total_ms = CACHE_HIT_MS;
        // A degraded response (deadline cut, breaker open, source
        // errors) must not shadow a healthy re-execution for the full
        // response TTL: give it the same short TTL as a negative
        // source entry.
        let ttl = if resp.trace.degraded {
            self.source_cache
                .config()
                .negative_ttl_ms
                .min(self.quotas.cache_ttl_ms)
        } else {
            self.quotas.cache_ttl_ms
        };
        // Zero TTL means the response cache is disabled — skip the
        // insert entirely. A ttl-0 entry would still be servable at the
        // clock millisecond it was inserted (expiry is strict `>`), and
        // because shed queries do not advance the clock, a burst of
        // queued arrivals can process at that frozen instant and ride
        // the entry past admission control.
        if ttl > 0 {
            hosted
                .cache
                .lock()
                .put_with_ttl(cache_key, Arc::new(hit), at, ttl);
        }
        Ok(Arc::new(resp))
    }

    /// Shed one query: account it and hand back the degraded shell
    /// without touching the serving clock. Never cached, never logged
    /// as impressions (a shed response renders none), never counted as
    /// degraded (the rates stay disjoint).
    fn shed(&self, hosted: &HostedApp, query: &str, reason: &str) -> Arc<QueryResponse> {
        let resp = shed_response(&hosted.config, query, reason);
        hosted.queries.fetch_add(1, Ordering::Relaxed);
        hosted.shed_queries.fetch_add(1, Ordering::Relaxed);
        // Deliberately no clock advance: admission refuses work at the
        // front door, *before* it occupies the serving path, so a shed
        // consumes none of the platform's serving capacity. The
        // response still reports `SHED_MS` as the client-visible
        // latency of the rejection itself.
        Arc::new(resp)
    }

    /// Advance the virtual clock by `ms`, returning the new time.
    fn advance_clock_by(&self, ms: u64) -> u64 {
        self.clock_ms.fetch_add(ms, Ordering::SeqCst) + ms
    }

    /// Record a customer click on a rendered impression. Ad clicks are
    /// billed and the publisher credited automatically.
    ///
    /// Takes `&self`; safe to call concurrently with queries and other
    /// clicks.
    pub fn click(
        &self,
        id: AppId,
        query: &str,
        impression: &Impression,
    ) -> Result<Option<u32>, PlatformError> {
        let hosted = self
            .apps
            .get(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))?;
        let app_name = hosted.config.name.clone();
        let publisher = &hosted.config.monetization.publisher;
        let log_interactions = hosted.config.monetization.log_interactions;
        if log_interactions {
            self.click_log.lock().record(InteractionEvent {
                app: app_name,
                at_ms: self.clock_ms.load(Ordering::SeqCst),
                query: query.to_string(),
                kind: InteractionKind::Click,
                source: impression.source.clone(),
                url: impression.url.clone(),
                is_ad: impression.is_ad,
            });
        }
        if impression.is_ad {
            if let (Some(campaign), Some(price)) =
                (impression.ad_campaign, impression.ad_price_cents)
            {
                let placement = Placement {
                    campaign: CampaignId(campaign),
                    position: impression.position,
                    price_cents: price,
                    keyword: String::new(),
                    title: impression.title.clone(),
                    display_url: String::new(),
                    target_url: impression.url.clone().unwrap_or_default(),
                    text: String::new(),
                };
                let entry = self
                    .ads
                    .record_click(&placement, publisher)
                    .map_err(|e| PlatformError::InvalidConfig(e.to_string()))?;
                return Ok(Some(entry.publisher_share_cents));
            }
        }
        Ok(None)
    }

    // ---- Analytics --------------------------------------------------

    /// Traffic summary for an app, including the degraded-query error
    /// rate.
    pub fn traffic_summary(&self, id: AppId) -> Result<TrafficSummary, PlatformError> {
        let app = self
            .apps
            .get(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))?;
        let mut summary = self.click_log.lock().summarize(&app.config.name);
        summary.queries = app.queries.load(Ordering::Relaxed);
        summary.degraded_queries = app.degraded_queries.load(Ordering::Relaxed);
        summary.shed_queries = app.shed_queries.load(Ordering::Relaxed);
        Ok(summary)
    }

    /// Per-virtual-day `(day, impressions, clicks)` series for an app.
    pub fn daily_series(&self, id: AppId) -> Result<Vec<(u64, u64, u64)>, PlatformError> {
        let app = self
            .apps
            .get(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))?;
        Ok(self.click_log.lock().daily_series(&app.config.name))
    }

    /// Referral-audit CSV for an app.
    pub fn referral_audit_csv(&self, id: AppId) -> Result<String, PlatformError> {
        let app = self
            .apps
            .get(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))?;
        Ok(self.click_log.lock().referral_audit_csv(&app.config.name))
    }

    /// Cache statistics for an app.
    pub fn cache_stats(&self, id: AppId) -> Option<CacheStats> {
        self.apps.get(id.0 as usize).map(|a| a.cache.lock().stats())
    }

    /// Sweep expired entries from an app's result cache, returning how
    /// many were removed (they are also counted in
    /// [`CacheStats::expired`]).
    pub fn purge_expired_cache(&self, id: AppId) -> Option<usize> {
        let now = self.clock_ms.load(Ordering::SeqCst);
        self.apps
            .get(id.0 as usize)
            .map(|a| a.cache.lock().purge_expired(now))
    }

    /// The platform's virtual clock.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms.load(Ordering::SeqCst)
    }

    /// Advance the virtual clock (think time between requests, TTL
    /// expiry in tests/benches).
    pub fn advance_clock(&self, ms: u64) {
        self.clock_ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// Earnings credited to an app's publisher so far, in cents.
    pub fn publisher_earnings_cents(&self, id: AppId) -> Option<u64> {
        let app = self.apps.get(id.0 as usize)?;
        Some(
            self.ads
                .ledger()
                .publisher_earnings_cents(&app.config.monetization.publisher),
        )
    }
}

/// A query-serving host the traffic harness can drive: a single
/// [`Platform`] or a multi-shard router hosting many platforms.
///
/// The clock methods take the app whose traffic is being played so a
/// router can keep one virtual clock *per shard* — tenants homed on
/// different shards advance independently, which is exactly how
/// wall-clock parallelism across nodes shows up under virtual time. A
/// single platform has one global clock and ignores the app.
pub trait QueryHost: Sync {
    /// Virtual clock of the node serving `app`'s queries.
    fn host_clock_ms(&self, app: AppId) -> u64;
    /// Advance the clock of the node serving `app`.
    fn host_advance_clock(&self, app: AppId, ms: u64);
    /// Serve one query for `app`.
    fn host_query(&self, app: AppId, query: &str) -> Result<Arc<QueryResponse>, PlatformError>;
    /// Record a click on one of `app`'s impressions.
    fn host_click(
        &self,
        app: AppId,
        query: &str,
        impression: &Impression,
    ) -> Result<Option<u32>, PlatformError>;
    /// Latest virtual time across all serving nodes (replay span end).
    fn host_span_end(&self) -> u64;
}

impl QueryHost for Platform {
    fn host_clock_ms(&self, _app: AppId) -> u64 {
        self.clock_ms()
    }

    fn host_advance_clock(&self, _app: AppId, ms: u64) {
        self.advance_clock(ms)
    }

    fn host_query(&self, app: AppId, query: &str) -> Result<Arc<QueryResponse>, PlatformError> {
        self.query(app, query)
    }

    fn host_click(
        &self,
        app: AppId,
        query: &str,
        impression: &Impression,
    ) -> Result<Option<u32>, PlatformError> {
        self.click(app, query, impression)
    }

    fn host_span_end(&self) -> u64 {
        self.clock_ms()
    }
}

/// Stable fingerprint of a pre-resolved override set (sorted by source
/// name, hashing the full outcome). Appended to the L1 key so that
/// responses computed under different parent-composition contexts
/// never collide.
fn overrides_fingerprint(
    overrides: &std::collections::HashMap<String, crate::source::SourceOutcome>,
) -> u64 {
    let mut names: Vec<&String> = overrides.keys().collect();
    names.sort();
    let mut h = crate::source_cache::fnv1a_str(0xcbf2_9ce4_8422_2325, "");
    for name in names {
        h = crate::source_cache::fnv1a_str(h, name);
        h = crate::source_cache::fnv1a_str(h, &format!("{:?}", overrides[name]));
    }
    h
}

fn log_impressions(
    log: &Mutex<ClickLog>,
    app: &str,
    query: &str,
    impressions: &[Impression],
    at_ms: u64,
) {
    // One lock acquisition per response, not per impression.
    let mut log = log.lock();
    for imp in impressions {
        log.record(InteractionEvent {
            app: app.to_string(),
            at_ms,
            query: query.to_string(),
            kind: InteractionKind::Impression,
            source: imp.source.clone(),
            url: imp.url.clone(),
            is_ad: imp.is_ad,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::source::DataSourceDef;
    use symphony_designer::{Canvas, Element};
    use symphony_store::ingest::{ingest, DataFormat};
    use symphony_web::{Corpus, CorpusConfig, SearchConfig, Topic, Vertical};

    fn platform() -> (Platform, TenantId, AccessKey) {
        let corpus = Corpus::generate(
            &CorpusConfig {
                sites_per_topic: 2,
                pages_per_site: 4,
                ..CorpusConfig::default()
            }
            .with_entities(Topic::Games, ["Galactic Raiders", "Farm Story"]),
        );
        let mut platform = Platform::new(SearchEngine::new(corpus));
        let (tenant, key) = platform.create_tenant("GamerQueen");
        let (table, _) = ingest(
            "inventory",
            "title,genre,description\nGalactic Raiders,shooter,a fast space shooter\nFarm Story,sim,calm farming\n",
            DataFormat::Csv,
        )
        .unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
            .unwrap();
        platform.upload_table(tenant, &key, indexed).unwrap();
        (platform, tenant, key)
    }

    fn register_gamer_queen(platform: &mut Platform, tenant: TenantId) -> AppId {
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas.insert(root, Element::search_box("Search…")).unwrap();
        let item = Element::column(vec![
            Element::text("{title}"),
            Element::result_list("reviews", Element::text("{title}"), 2),
        ]);
        canvas
            .insert(root, Element::result_list("inventory", item, 10))
            .unwrap();
        let config = AppBuilder::new("GamerQueen", tenant)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "reviews",
                DataSourceDef::WebVertical {
                    vertical: Vertical::Web,
                    config: SearchConfig::default().restrict_to(["gamespot.com", "ign.com"]),
                },
            )
            .supplemental("reviews", "{title} review")
            .build()
            .unwrap();
        platform.register_app(config).unwrap()
    }

    #[test]
    fn publish_lifecycle() {
        let (mut p, tenant, _key) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        assert!(matches!(
            p.query(id, "shooter").unwrap_err(),
            PlatformError::NotPublished(_)
        ));
        p.publish(id).unwrap();
        let resp = p.query(id, "shooter").unwrap();
        assert!(resp.html.contains("Galactic Raiders"));
        p.unpublish(id).unwrap();
        assert!(p.query(id, "shooter").is_err());
    }

    #[test]
    fn unknown_app_errors() {
        let (mut p, _, _) = platform();
        assert_eq!(
            p.query(AppId(9), "x").unwrap_err(),
            PlatformError::AppNotFound(9)
        );
        assert!(p.publish(AppId(9)).is_err());
        assert!(p.embed_code(AppId(9)).is_err());
    }

    #[test]
    fn cache_hits_are_fast_and_marked() {
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        let first = p.query(id, "shooter").unwrap();
        assert!(!first.trace.cache_hit);
        let second = p.query(id, "Shooter").unwrap(); // normalized key
        assert!(second.trace.cache_hit);
        assert_eq!(second.virtual_ms, CACHE_HIT_MS);
        assert_eq!(second.html, first.html);
        let stats = p.cache_stats(id).unwrap();
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn cache_hits_share_one_allocation() {
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        p.query(id, "shooter").unwrap();
        // Every hit hands out the same Arc — no per-hit deep clone of
        // the response.
        let a = p.query(id, "shooter").unwrap();
        let b = p.query(id, "shooter").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn source_cache_stats_track_the_query_path() {
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        p.query(id, "shooter").unwrap();
        let first = p.source_cache_stats();
        assert!(first.misses > 0, "fresh platform must miss");
        assert_eq!(first.hits, 0);
        // A distinct query re-runs the primary (new key) but re-uses
        // the per-item supplemental web fetches it shares with the
        // first query's result set, if any; at minimum nothing breaks
        // and counters only grow.
        p.query(id, "galactic shooter").unwrap();
        let second = p.source_cache_stats();
        assert!(second.misses >= first.misses);
        assert!(second.executions >= first.executions);
        // An L1 hit never reaches the source layer.
        let before = p.source_cache_stats();
        p.query(id, "shooter").unwrap();
        let after = p.source_cache_stats();
        assert_eq!(before.executions, after.executions);
    }

    #[test]
    fn cache_expires_after_ttl() {
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        p.query(id, "shooter").unwrap();
        p.advance_clock(120_000); // past the 60s TTL
        let again = p.query(id, "shooter").unwrap();
        assert!(!again.trace.cache_hit);
    }

    #[test]
    fn request_quota_enforced_and_recovers() {
        let corpus = Corpus::generate(&CorpusConfig {
            sites_per_topic: 1,
            pages_per_site: 2,
            ..CorpusConfig::default()
        });
        let mut p = Platform::new(SearchEngine::new(corpus)).with_quotas(QuotaConfig {
            requests_per_minute: 3,
            ..QuotaConfig::default()
        });
        let (tenant, key) = p.create_tenant("T");
        let (table, _) = ingest("inv", "title\nA\n", DataFormat::Csv).unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed.enable_fulltext(&[("title", 1.0)]).unwrap();
        p.upload_table(tenant, &key, indexed).unwrap();
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas
            .insert(
                root,
                Element::result_list("inv", Element::text("{title}"), 5),
            )
            .unwrap();
        let id = p
            .register_app(
                AppBuilder::new("T", tenant)
                    .source(
                        "inv",
                        DataSourceDef::Proprietary {
                            table: "inv".into(),
                        },
                    )
                    .layout(canvas)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        p.publish(id).unwrap();
        for _ in 0..3 {
            p.query(id, "a").unwrap();
        }
        assert!(matches!(
            p.query(id, "a").unwrap_err(),
            PlatformError::QuotaExceeded { limit: 3, .. }
        ));
        // After a virtual minute, capacity returns.
        p.advance_clock(61_000);
        assert!(p.query(id, "a").is_ok());
    }

    #[test]
    fn storage_quota_enforced() {
        let corpus = Corpus::generate(&CorpusConfig {
            sites_per_topic: 1,
            pages_per_site: 2,
            ..CorpusConfig::default()
        });
        let mut p = Platform::new(SearchEngine::new(corpus)).with_quotas(QuotaConfig {
            max_records_per_tenant: 1,
            ..QuotaConfig::default()
        });
        let (tenant, key) = p.create_tenant("T");
        let (table, _) = ingest("inv", "t\nA\nB\n", DataFormat::Csv).unwrap();
        let err = p
            .upload_table(tenant, &key, IndexedTable::new(table))
            .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::StorageQuotaExceeded { limit: 1 }
        ));
    }

    #[test]
    fn impressions_logged_and_summarized() {
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        let resp = p.query(id, "shooter").unwrap();
        assert!(!resp.impressions.is_empty());
        let imp = resp.impressions[0].clone();
        p.click(id, "shooter", &imp).unwrap();
        let summary = p.traffic_summary(id).unwrap();
        assert!(summary.impressions >= 1);
        assert_eq!(summary.clicks, 1);
        let csv = p.referral_audit_csv(id).unwrap();
        assert!(csv.lines().count() >= 2);
    }

    #[test]
    fn embed_and_manifest_accessible() {
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        let code = p.embed_code(id).unwrap();
        assert!(code.contains("symphony-app-0"));
        let manifest = p.social_manifest(id).unwrap();
        assert_eq!(manifest.get("app_name"), Some("GamerQueen"));
    }

    #[test]
    fn warmup_optimizes_tenant_tables_and_preserves_results() {
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        let before = p.query(id, "shooter").unwrap().html.clone();
        assert_eq!(p.warmup(), 1);
        let table = p
            .store()
            .space_by_id(tenant)
            .unwrap()
            .table("inventory")
            .unwrap();
        assert!(table.fulltext().unwrap().index().stats().fully_compressed);
        p.advance_clock(120_000); // expire the L1 entry
        let after = p.query(id, "shooter").unwrap();
        assert!(!after.trace.cache_hit);
        assert_eq!(after.html, before);
    }

    #[test]
    fn warmup_on_empty_store_is_a_noop() {
        let corpus = Corpus::generate(&CorpusConfig {
            sites_per_topic: 1,
            pages_per_site: 2,
            ..CorpusConfig::default()
        });
        let mut p = Platform::new(SearchEngine::new(corpus));
        assert_eq!(p.warmup(), 0);
    }

    #[test]
    fn maintenance_tick_runs_on_the_virtual_clock_and_preserves_results() {
        let (mut p, tenant, key) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        let policy = symphony_text::SegmentPolicy {
            memtable_max_docs: 4096,
            staleness_window_ms: 10,
            merge_fanin: 4,
            near_real_time: false,
        };
        p.store_mut()
            .space_mut(tenant, &key)
            .unwrap()
            .table_mut("inventory")
            .unwrap()
            .set_fulltext_policy(policy);
        let before = p.query(id, "shooter").unwrap().html.clone();
        // The query advanced the clock past the staleness window, so
        // the tick seals the tenant view's memtable.
        let s = p.maintenance_tick();
        assert_eq!(s.views, 2, "tenant view + owned engine");
        assert!(s.sealed >= 1);
        // Maintenance is rank-safe: after the cache expires, the same
        // query renders the same response.
        p.advance_clock(120_000);
        let after = p.query(id, "shooter").unwrap();
        assert!(!after.trace.cache_hit);
        assert_eq!(after.html, before);
        // A second tick with no elapsed time and an empty memtable
        // finds nothing to do on the tenant view.
        let quiet = p.maintenance_tick();
        assert_eq!(quiet.views, 2);
    }

    #[test]
    fn engine_mut_allows_live_ingest_and_drops_caches() {
        use symphony_web::{Page, PageKind};
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        p.query(id, "shooter").unwrap();
        assert!(p.query(id, "shooter").unwrap().trace.cache_hit);
        let page = Page {
            site: 0,
            url: format!("http://{}/fresh-crawl", p.engine().corpus().sites[0].domain),
            title: "Fresh Crawl".into(),
            body: "freshly crawled page".into(),
            links: Vec::new(),
            kind: PageKind::Article,
        };
        p.engine_mut().unwrap().ingest_page(page);
        // Live ingest cleared the result caches: the next query is a
        // miss, not a stale hit over the pre-ingest corpus.
        assert!(!p.query(id, "shooter").unwrap().trace.cache_hit);
    }

    #[test]
    fn engine_mut_refuses_a_shared_engine() {
        let corpus = Corpus::generate(&CorpusConfig {
            sites_per_topic: 1,
            pages_per_site: 2,
            ..CorpusConfig::default()
        });
        let shared = Arc::new(SearchEngine::new(corpus));
        let mut p = Platform::new(shared.clone());
        assert!(p.engine_mut().is_none());
        drop(shared);
        assert!(p.engine_mut().is_some());
    }

    fn register_rate_limited(
        platform: &mut Platform,
        tenant: TenantId,
        rate: u32,
        burst: u32,
    ) -> AppId {
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas
            .insert(
                root,
                Element::result_list("inventory", Element::text("{title}"), 10),
            )
            .unwrap();
        let config = AppBuilder::new("Limited", tenant)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .admission(crate::app::AdmissionPolicy {
                rate_per_sec: rate,
                burst,
                max_concurrency: u32::MAX,
                weight: 1,
            })
            .build()
            .unwrap();
        platform.register_app(config).unwrap()
    }

    #[test]
    fn over_rate_queries_are_shed_with_the_degraded_shell() {
        let (mut p, tenant, _) = platform();
        let id = register_rate_limited(&mut p, tenant, 1, 2);
        p.publish(id).unwrap();
        // Burst of 2 admits; distinct queries defeat the L1 cache.
        assert!(!p.query(id, "shooter one").unwrap().trace.shed);
        assert!(!p.query(id, "shooter two").unwrap().trace.shed);
        // The two executions advanced the clock well under a second at
        // 1 token/s the bucket is still empty: the third is shed.
        let clock_before = p.clock_ms();
        let shed = p.query(id, "shooter three").unwrap();
        assert!(shed.trace.shed);
        assert!(shed.trace.degraded);
        assert_eq!(shed.trace.error_count, 0);
        assert_eq!(shed.virtual_ms, crate::runtime::SHED_MS);
        // Front-door rejection: the serving clock never saw the query.
        assert_eq!(p.clock_ms(), clock_before);
        assert!(shed.impressions.is_empty());
        assert!(shed.trace.render().contains("shed"));
        // Shed responses are never cached: after the bucket refills,
        // the same query executes for real.
        p.advance_clock(2_000);
        let again = p.query(id, "shooter three").unwrap();
        assert!(!again.trace.shed);
        assert!(!again.trace.cache_hit);
        // Counters: disjoint shed vs degraded, both rates defined.
        let s = p.traffic_summary(id).unwrap();
        assert_eq!(s.queries, 4);
        assert_eq!(s.shed_queries, 1);
        assert_eq!(s.degraded_queries, 0);
        assert!((s.shed_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cache_hits_bypass_admission() {
        let (mut p, tenant, _) = platform();
        let id = register_rate_limited(&mut p, tenant, 1, 1);
        p.publish(id).unwrap();
        assert!(!p.query(id, "shooter").unwrap().trace.shed);
        // The bucket is empty, but repeats are L1 hits — admission
        // never sees them and nothing is shed.
        for _ in 0..5 {
            let r = p.query(id, "shooter").unwrap();
            assert!(r.trace.cache_hit);
            assert!(!r.trace.shed);
        }
        assert_eq!(p.traffic_summary(id).unwrap().shed_queries, 0);
    }

    #[test]
    fn concurrency_cap_sheds_and_releases() {
        let (mut p, tenant, _) = platform();
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas
            .insert(
                root,
                Element::result_list("inventory", Element::text("{title}"), 10),
            )
            .unwrap();
        let config = AppBuilder::new("Capped", tenant)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .admission(crate::app::AdmissionPolicy {
                max_concurrency: 1,
                ..crate::app::AdmissionPolicy::default()
            })
            .build()
            .unwrap();
        let id = p.register_app(config).unwrap();
        p.publish(id).unwrap();
        // Queries here are sequential, so the single slot is always
        // free again by the next call: nothing is shed, and the slot
        // count returns to zero (the RAII guard released it).
        for i in 0..4 {
            assert!(!p.query(id, &format!("shooter {i}")).unwrap().trace.shed);
        }
        assert_eq!(p.traffic_summary(id).unwrap().shed_queries, 0);
        // Saturate the slot by hand and the next query sheds.
        let hosted = &p.apps[id.0 as usize];
        let held = InflightSlot::try_enter(&hosted.inflight, 1).unwrap();
        assert!(p.query(id, "while full").unwrap().trace.shed);
        drop(held);
        assert!(!p.query(id, "after release").unwrap().trace.shed);
    }

    #[test]
    fn maintenance_tick_sweeps_expired_caches() {
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        p.query(id, "shooter").unwrap();
        p.query(id, "farm").unwrap();
        // Nothing has expired yet.
        let fresh = p.maintenance_tick();
        assert_eq!(fresh.purged_responses, 0);
        // Push the clock past both the L1 TTL (60s) and the L2 TTLs.
        p.advance_clock(600_000);
        let swept = p.maintenance_tick();
        assert_eq!(swept.purged_responses, 2, "both L1 entries reclaimed");
        assert!(swept.purged_sources > 0, "L2 outcomes reclaimed");
        // The sweep is also visible in the per-app cache stats.
        assert_eq!(p.cache_stats(id).unwrap().expired, 2);
        let again = p.maintenance_tick();
        assert_eq!(again.purged_responses, 0);
        assert_eq!(again.purged_sources, 0);
    }

    #[test]
    fn clock_advances_with_work() {
        let (mut p, tenant, _) = platform();
        let id = register_gamer_queen(&mut p, tenant);
        p.publish(id).unwrap();
        let before = p.clock_ms();
        let resp = p.query(id, "shooter").unwrap();
        assert_eq!(p.clock_ms(), before + resp.virtual_ms as u64);
    }
}
