//! Unified content sources.
//!
//! The paper's central abstraction: proprietary tables, web-search
//! verticals, third-party services, and ads are all "data sources"
//! that can be dropped onto an application and "configured just like
//! any other content source". [`DataSourceDef`] is the configuration;
//! [`run_source`] executes one query against one source over the
//! platform substrates, returning uniform field/value records plus the
//! virtual time the source took.

use symphony_ads::AdServer;
use symphony_services::{
    BreakerRegistry, CallPolicy, ResilienceContext, ServiceClient, ServiceError, ServiceRequest,
    SimulatedTransport,
};
use symphony_store::TenantSpace;
use symphony_web::{SearchConfig, SearchEngine, Vertical, WebResult};

/// Virtual cost of a proprietary-table query (local index hit).
pub const PROPRIETARY_MS: u32 = 5;
/// Virtual cost of a web-vertical query (remote search API).
pub const WEB_MS: u32 = 35;
/// Virtual cost of an ad auction.
pub const ADS_MS: u32 = 12;

/// Configuration of one data source inside an application.
#[derive(Debug, Clone)]
pub enum DataSourceDef {
    /// The designer's own indexed table.
    Proprietary {
        /// Table name in the tenant space.
        table: String,
    },
    /// A vertical of the general web search engine.
    WebVertical {
        /// Which vertical.
        vertical: Vertical,
        /// Customization (site restriction, augmentation, preference).
        config: SearchConfig,
    },
    /// A hybrid structured + full-text source: one of the designer's
    /// indexed tables queried through the selectivity-planned hybrid
    /// engine (`symphony_store::hybrid`), with a structured predicate
    /// baked into the source definition. Unlike [`Proprietary`]
    /// (closure post-filter over an over-fetched list), the predicate
    /// reaches the text executor as an index-resolved skip cursor when
    /// it is selective — and the result is exact, never truncated by
    /// an over-fetch guess.
    ///
    /// [`Proprietary`]: DataSourceDef::Proprietary
    Hybrid {
        /// Table name in the tenant space.
        table: String,
        /// Structured predicate over the table's columns.
        filter: symphony_store::Filter,
    },
    /// A SOAP/REST service.
    Service {
        /// Endpoint in the transport registry.
        endpoint: String,
        /// Operation (REST path or SOAP operation).
        operation: String,
        /// Parameter name carrying the query/item text.
        item_param: String,
        /// Timeout/retry policy.
        policy: CallPolicy,
    },
    /// The integrated ad service.
    Ads {
        /// Slots to auction.
        slots: usize,
    },
    /// Another hosted application used as a content source (paper §IV
    /// future work: "creating new applications by composing other
    /// applications"). Resolved by the hosting layer, which runs the
    /// referenced app's full pipeline and feeds its results in as a
    /// pre-computed outcome; only valid as a *primary* source.
    ComposedApp {
        /// The hosted application to query.
        app: crate::app::AppId,
    },
}

impl DataSourceDef {
    /// Palette category shown on the designer card.
    pub fn category(&self) -> &'static str {
        match self {
            DataSourceDef::Proprietary { .. } => "proprietary",
            DataSourceDef::Hybrid { .. } => "hybrid",
            DataSourceDef::WebVertical { vertical, .. } => vertical.name(),
            DataSourceDef::Service { .. } => "service",
            DataSourceDef::Ads { .. } => "ads",
            DataSourceDef::ComposedApp { .. } => "app",
        }
    }

    /// Fields the source exposes for layout binding.
    pub fn fields(
        &self,
        space: Option<&TenantSpace>,
        transport: Option<&SimulatedTransport>,
    ) -> Vec<String> {
        match self {
            DataSourceDef::Proprietary { table } | DataSourceDef::Hybrid { table, .. } => space
                .and_then(|s| s.table(table).ok())
                .map(|t| {
                    t.table()
                        .schema()
                        .fields()
                        .iter()
                        .map(|f| f.name.clone())
                        .collect()
                })
                .unwrap_or_default(),
            DataSourceDef::WebVertical { vertical, .. } => {
                let mut fs = vec![
                    "url".to_string(),
                    "title".to_string(),
                    "snippet".to_string(),
                    "domain".to_string(),
                ];
                match vertical {
                    Vertical::Image => fs.push("image_src".into()),
                    Vertical::Video => fs.push("duration_s".into()),
                    Vertical::News => fs.push("date".into()),
                    Vertical::Web => {}
                }
                fs
            }
            DataSourceDef::Service {
                endpoint,
                operation,
                ..
            } => transport
                .and_then(|t| t.describe(endpoint))
                .and_then(|d| {
                    d.operations
                        .iter()
                        .find(|o| &o.name == operation)
                        .map(|o| o.returns.clone())
                })
                .unwrap_or_default(),
            DataSourceDef::Ads { .. } => vec![
                "title".into(),
                "display_url".into(),
                "target_url".into(),
                "text".into(),
                "keyword".into(),
                "campaign".into(),
                "price_cents".into(),
                "position".into(),
            ],
            DataSourceDef::ComposedApp { .. } => {
                vec!["title".into(), "url".into(), "source".into(), "app".into()]
            }
        }
    }
}

/// One result from any source: uniform `(field, value)` records.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultItem {
    /// Ordered field/value pairs.
    pub fields: Vec<(String, String)>,
    /// Relevance score (0 for sources without scoring).
    pub score: f32,
}

impl ResultItem {
    /// Field lookup.
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of running a source.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceOutcome {
    /// Items returned (possibly empty).
    pub items: Vec<ResultItem>,
    /// Virtual time the source took.
    pub virtual_ms: u32,
    /// Soft error: the runtime degrades gracefully (paper: results
    /// merge whatever content arrived), recording what went wrong.
    pub error: Option<String>,
    /// Transport attempts made (1 for local sources; >1 when a
    /// service call was retried; 0 when nothing was attempted — e.g.
    /// a breaker fast-fail or a deadline cut before the wire). The
    /// runtime deducts `attempts - 1` from the query's retry budget.
    pub attempts: u32,
}

/// Per-fetch resilience context the runtime threads into
/// [`run_source_ctx`]: where on the virtual clock the fetch starts,
/// how much of the query deadline it may spend, how many retries the
/// query's retry budget still grants, and the platform's shared
/// circuit-breaker registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceCtx<'a> {
    /// Virtual time at which the fetch starts.
    pub now_ms: u64,
    /// Budget in virtual ms for the whole fetch (`None` = unlimited).
    pub budget_ms: Option<u32>,
    /// Retries granted from the per-query retry budget (`None` =
    /// the source's own policy decides alone).
    pub retries_allowed: Option<u32>,
    /// Shared circuit breakers (service sources only).
    pub breakers: Option<&'a BreakerRegistry>,
}

impl<'a> SourceCtx<'a> {
    /// Context at a virtual time with no limits.
    pub fn at(now_ms: u64) -> Self {
        SourceCtx {
            now_ms,
            ..Default::default()
        }
    }
}

/// Outcome of one scatter-gather web query across shard nodes.
///
/// `results` carry the rank-safe merged top-k (bit-identical to a
/// single-index search when every shard answered); `shards_answered <
/// shards_total` marks a degraded partial answer, with `error` naming
/// the shards that stayed silent.
#[derive(Debug, Clone, Default)]
pub struct ScatterOutcome {
    /// Merged ranked results.
    pub results: Vec<WebResult>,
    /// Virtual cost of the scatter: max over shard call chains plus
    /// the gather step (shards run in parallel on the virtual clock).
    pub virtual_ms: u32,
    /// Shards whose pools made it into the merge.
    pub shards_answered: u32,
    /// Total shards the query scattered to.
    pub shards_total: u32,
    /// `Some` when at least one shard stayed silent (partial result).
    pub error: Option<String>,
}

/// A distributed web-search backend: scatters a vertical query across
/// document-partitioned shard nodes and gathers a rank-safe merge.
/// When attached to [`Substrates`], web-vertical sources prefer it
/// over the local `engine`.
pub trait ScatterSearch: Send + Sync {
    /// Run `query` against every shard of `vertical`, merging to `k`
    /// results. `now_ms` positions the shard RPCs on the virtual
    /// clock (fault windows, breaker cooldowns).
    fn scatter(
        &self,
        vertical: Vertical,
        query: &str,
        config: &SearchConfig,
        k: usize,
        now_ms: u64,
    ) -> ScatterOutcome;
}

/// Shared references to every substrate a source may need.
#[derive(Clone, Copy)]
pub struct Substrates<'a> {
    /// The tenant's private space (proprietary tables).
    pub space: Option<&'a TenantSpace>,
    /// The general web search engine.
    pub engine: Option<&'a SearchEngine>,
    /// The service transport.
    pub transport: Option<&'a SimulatedTransport>,
    /// The ad service.
    pub ads: Option<&'a AdServer>,
    /// Distributed web-search backend; preferred over `engine` for
    /// web verticals when set.
    pub scatter: Option<&'a dyn ScatterSearch>,
}

// The parallel fan-out and the platform's concurrent serving path
// both hand `Substrates` to worker threads: every substrate must stay
// `Sync` (reads) and the handle itself `Send`. Asserting it here
// pins the requirement to the type that crosses thread boundaries.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Substrates<'_>>();
};

impl std::fmt::Debug for Substrates<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Substrates")
            .field("space", &self.space.is_some())
            .field("engine", &self.engine.is_some())
            .field("transport", &self.transport.is_some())
            .field("ads", &self.ads.is_some())
            .field("scatter", &self.scatter.is_some())
            .finish()
    }
}

/// Execute `query` against one source, returning up to `k` items.
///
/// `constraint` is the "richer querying of structured data" extension
/// (paper §IV future work): a structured [`Filter`](symphony_store::Filter)
/// the designer attached to a proprietary source — e.g. *only in-stock
/// items*, *price below 50* — evaluated on the typed records before
/// they leave the store. Non-proprietary sources ignore it.
pub fn run_source(
    def: &DataSourceDef,
    query: &str,
    k: usize,
    subs: Substrates<'_>,
    constraint: Option<&symphony_store::Filter>,
) -> SourceOutcome {
    run_source_ctx(def, query, k, subs, constraint, &SourceCtx::default())
}

/// Like [`run_source`], under a resilience context: the fetch starts
/// at `ctx.now_ms` on the virtual clock, may not spend more than
/// `ctx.budget_ms`, and service calls respect the retry grant and the
/// circuit breakers. A fetch whose budget cannot even cover the
/// source's fixed cost is cut before it starts — a degraded slot, not
/// a stall.
pub fn run_source_ctx(
    def: &DataSourceDef,
    query: &str,
    k: usize,
    subs: Substrates<'_>,
    constraint: Option<&symphony_store::Filter>,
    ctx: &SourceCtx<'_>,
) -> SourceOutcome {
    // Fixed-cost local sources: cut when the budget can't cover them.
    let fixed_cost = match def {
        DataSourceDef::Proprietary { .. } | DataSourceDef::Hybrid { .. } => Some(PROPRIETARY_MS),
        // Scatter cost is dynamic (max over shard call chains), so
        // only the local-engine path has the fixed WEB_MS price; the
        // scatter path is budget-checked after the fact instead.
        DataSourceDef::WebVertical { .. } if subs.scatter.is_none() => Some(WEB_MS),
        DataSourceDef::WebVertical { .. } => None,
        DataSourceDef::Ads { .. } => Some(ADS_MS),
        DataSourceDef::Service { .. } | DataSourceDef::ComposedApp { .. } => None,
    };
    if let (Some(cost), Some(budget)) = (fixed_cost, ctx.budget_ms) {
        if budget < cost {
            return deadline_cut(budget);
        }
    }
    match def {
        DataSourceDef::Proprietary { table } => {
            let Some(space) = subs.space else {
                return soft_err("no tenant space attached", 0);
            };
            let indexed = match space.table(table) {
                Ok(t) => t,
                Err(e) => return soft_err(&e.to_string(), 0),
            };
            let parsed = symphony_text::Query::parse(query);
            // Over-fetch when a structured constraint will drop rows.
            let fetch = if constraint.is_some() { k * 4 + 8 } else { k };
            let hits = match indexed.search(&parsed, fetch) {
                Ok(h) => h,
                Err(e) => return soft_err(&e.to_string(), PROPRIETARY_MS),
            };
            let schema = indexed.table().schema().clone();
            let items = hits
                .into_iter()
                .filter_map(|h| {
                    let rec = indexed.table().get(h.record)?;
                    if let Some(f) = constraint {
                        if !f.eval(rec) {
                            return None;
                        }
                    }
                    Some(ResultItem {
                        fields: schema
                            .fields()
                            .iter()
                            .enumerate()
                            .map(|(i, f)| (f.name.clone(), rec.get(i).display_string()))
                            .collect(),
                        score: h.score,
                    })
                })
                .take(k)
                .collect();
            SourceOutcome {
                items,
                virtual_ms: PROPRIETARY_MS,
                error: None,
                attempts: 1,
            }
        }
        DataSourceDef::Hybrid { table, filter } => {
            let Some(space) = subs.space else {
                return soft_err("no tenant space attached", 0);
            };
            let indexed = match space.table(table) {
                Ok(t) => t,
                Err(e) => return soft_err(&e.to_string(), 0),
            };
            let parsed = symphony_text::Query::parse(query);
            // The runtime's per-query constraint composes conjunctively
            // with the source's own predicate; the planner sees both.
            let combined = match constraint {
                Some(c) => filter.clone().and(c.clone()),
                None => filter.clone(),
            };
            let hq = symphony_store::HybridQuery::new(parsed, combined, k);
            let result = match indexed.hybrid_query(&hq) {
                Ok(r) => r,
                Err(e) => return soft_err(&e.to_string(), PROPRIETARY_MS),
            };
            let schema = indexed.table().schema().clone();
            let items = result
                .hits
                .into_iter()
                .filter_map(|h| {
                    let rec = indexed.table().get(h.record)?;
                    Some(ResultItem {
                        fields: schema
                            .fields()
                            .iter()
                            .enumerate()
                            .map(|(i, f)| (f.name.clone(), rec.get(i).display_string()))
                            .collect(),
                        score: h.score,
                    })
                })
                .collect();
            SourceOutcome {
                items,
                virtual_ms: PROPRIETARY_MS,
                error: None,
                attempts: 1,
            }
        }
        DataSourceDef::WebVertical { vertical, config } => {
            if let Some(cluster) = subs.scatter {
                let out = cluster.scatter(*vertical, query, config, k, ctx.now_ms);
                if let Some(budget) = ctx.budget_ms {
                    if out.virtual_ms > budget {
                        // The shard fan-out overran the remaining
                        // deadline: a degraded slot, charged at the
                        // budget it burned through.
                        return deadline_cut(budget);
                    }
                }
                return SourceOutcome {
                    items: out.results.into_iter().map(web_item).collect(),
                    virtual_ms: out.virtual_ms,
                    error: out.error,
                    attempts: 1,
                };
            }
            let Some(engine) = subs.engine else {
                return soft_err("no web engine attached", 0);
            };
            let items = engine
                .search(*vertical, query, config, k)
                .into_iter()
                .map(web_item)
                .collect();
            SourceOutcome {
                items,
                virtual_ms: WEB_MS,
                error: None,
                attempts: 1,
            }
        }
        DataSourceDef::Service {
            endpoint,
            operation,
            item_param,
            policy,
        } => {
            let Some(transport) = subs.transport else {
                return soft_err("no transport attached", 0);
            };
            let client = ServiceClient::with_policy(transport, *policy);
            let request = ServiceRequest::get(operation, &[(item_param, query)]);
            let rctx = ResilienceContext {
                now_ms: ctx.now_ms,
                budget_ms: ctx.budget_ms,
                max_retries: ctx.retries_allowed,
                breakers: ctx.breakers,
            };
            match client.call_resilient(endpoint, &request, &rctx) {
                Ok(out) => SourceOutcome {
                    items: out
                        .response
                        .records
                        .into_iter()
                        .take(k)
                        .map(|fields| ResultItem { fields, score: 0.0 })
                        .collect(),
                    virtual_ms: out.total_latency_ms,
                    error: None,
                    attempts: out.attempts,
                },
                Err((e, burned)) => {
                    // How many transport attempts the failure consumed
                    // (the retry budget is charged for each).
                    let attempts = match &e {
                        ServiceError::CircuitOpen { .. } => 0,
                        ServiceError::UnknownEndpoint(_) | ServiceError::Fault(_) => 1,
                        _ => policy.retries.min(ctx.retries_allowed.unwrap_or(u32::MAX)) + 1,
                    };
                    SourceOutcome {
                        items: Vec::new(),
                        virtual_ms: burned,
                        error: Some(e.to_string()),
                        attempts,
                    }
                }
            }
        }
        DataSourceDef::ComposedApp { app } => soft_err(
            &format!(
                "composed app {} must be resolved by the hosting layer",
                app.0
            ),
            0,
        ),
        DataSourceDef::Ads { slots } => {
            let Some(ads) = subs.ads else {
                return soft_err("no ad service attached", 0);
            };
            let items = ads
                .select(query, (*slots).min(k.max(1)))
                .into_iter()
                .map(|p| ResultItem {
                    fields: vec![
                        ("title".to_string(), p.title),
                        ("display_url".to_string(), p.display_url),
                        ("target_url".to_string(), p.target_url),
                        ("text".to_string(), p.text),
                        ("keyword".to_string(), p.keyword),
                        ("campaign".to_string(), p.campaign.0.to_string()),
                        ("price_cents".to_string(), p.price_cents.to_string()),
                        ("position".to_string(), p.position.to_string()),
                    ],
                    score: 0.0,
                })
                .collect();
            SourceOutcome {
                items,
                virtual_ms: ADS_MS,
                error: None,
                attempts: 1,
            }
        }
    }
}

/// Flatten a web result into uniform source fields (the optional
/// vertical extras ride along only when present).
fn web_item(r: WebResult) -> ResultItem {
    let mut fields = vec![
        ("url".to_string(), r.url),
        ("title".to_string(), r.title),
        ("snippet".to_string(), r.snippet),
        ("domain".to_string(), r.domain),
    ];
    if let Some(src) = r.image_src {
        fields.push(("image_src".into(), src));
    }
    if let Some(d) = r.duration_s {
        fields.push(("duration_s".into(), d.to_string()));
    }
    if let Some(d) = r.date {
        fields.push(("date".into(), d.to_string()));
    }
    ResultItem {
        fields,
        score: r.score,
    }
}

fn soft_err(msg: &str, virtual_ms: u32) -> SourceOutcome {
    SourceOutcome {
        items: Vec::new(),
        virtual_ms,
        error: Some(msg.to_string()),
        attempts: 1,
    }
}

/// A fetch cut before it started because the remaining deadline
/// budget cannot cover it: free (0 virtual ms), no attempt made.
fn deadline_cut(budget_ms: u32) -> SourceOutcome {
    SourceOutcome {
        items: Vec::new(),
        virtual_ms: 0,
        error: Some(ServiceError::DeadlineCut { budget_ms }.to_string()),
        attempts: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphony_services::{LatencyModel, PricingService};
    use symphony_store::ingest::{ingest, DataFormat};
    use symphony_store::{IndexedTable, Store};
    use symphony_web::{Corpus, CorpusConfig, Topic};

    fn store_with_inventory() -> (Store, symphony_store::TenantId, symphony_store::AccessKey) {
        let mut store = Store::new();
        let (tenant, key) = store.create_tenant("GamerQueen");
        let (table, _) = ingest(
            "inventory",
            "title,genre,price\nGalactic Raiders,shooter,49.99\nFarm Story,sim,19.99\n",
            DataFormat::Csv,
        )
        .unwrap();
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("genre", 1.0)])
            .unwrap();
        store.space_mut(tenant, &key).unwrap().put_table(indexed);
        (store, tenant, key)
    }

    fn none_subs() -> Substrates<'static> {
        Substrates {
            space: None,
            engine: None,
            transport: None,
            ads: None,
            scatter: None,
        }
    }

    #[test]
    fn proprietary_source_returns_schema_fields() {
        let (store, tenant, key) = store_with_inventory();
        let space = store.space(tenant, &key).unwrap();
        let out = run_source(
            &DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
            "shooter",
            10,
            Substrates {
                space: Some(space),
                ..none_subs()
            },
            None,
        );
        assert!(out.error.is_none());
        assert_eq!(out.items.len(), 1);
        assert_eq!(out.items[0].field("title"), Some("Galactic Raiders"));
        assert_eq!(out.items[0].field("price"), Some("49.99"));
        assert_eq!(out.virtual_ms, PROPRIETARY_MS);
    }

    #[test]
    fn hybrid_source_applies_filter_exactly() {
        use symphony_store::{CmpOp, Filter, Value};
        let (mut store, tenant, key) = {
            let (s, t, k) = store_with_inventory();
            (s, t, k)
        };
        // Index the price column so the hybrid planner can read it.
        store
            .space_mut(tenant, &key)
            .unwrap()
            .table_mut("inventory")
            .unwrap()
            .create_index("price", symphony_store::IndexKind::Ordered)
            .unwrap();
        let space = store.space(tenant, &key).unwrap();
        let def = DataSourceDef::Hybrid {
            table: "inventory".into(),
            filter: Filter::cmp(2, CmpOp::Lt, Value::Float(30.0)),
        };
        assert_eq!(def.category(), "hybrid");
        assert!(def.fields(Some(space), None).contains(&"price".to_string()));
        // "sim" matches Farm Story (19.99); the shooter at 49.99 is
        // excluded by the source's own predicate.
        let out = run_source(
            &def,
            "sim shooter",
            10,
            Substrates {
                space: Some(space),
                ..none_subs()
            },
            None,
        );
        assert!(out.error.is_none());
        assert_eq!(out.items.len(), 1);
        assert_eq!(out.items[0].field("title"), Some("Farm Story"));
        assert_eq!(out.virtual_ms, PROPRIETARY_MS);
        // A runtime constraint composes conjunctively: price < 30 AND
        // price < 10 matches nothing.
        let none = run_source(
            &def,
            "sim shooter",
            10,
            Substrates {
                space: Some(space),
                ..none_subs()
            },
            Some(&Filter::cmp(2, CmpOp::Lt, Value::Float(10.0))),
        );
        assert!(none.items.is_empty());
        assert!(none.error.is_none());
    }

    #[test]
    fn missing_table_is_soft_error() {
        let (store, tenant, key) = store_with_inventory();
        let space = store.space(tenant, &key).unwrap();
        let out = run_source(
            &DataSourceDef::Proprietary {
                table: "nope".into(),
            },
            "x",
            5,
            Substrates {
                space: Some(space),
                ..none_subs()
            },
            None,
        );
        assert!(out.items.is_empty());
        assert!(out.error.unwrap().contains("unknown table"));
    }

    #[test]
    fn web_source_maps_meta_fields() {
        let corpus = Corpus::generate(
            &CorpusConfig {
                sites_per_topic: 2,
                pages_per_site: 4,
                ..CorpusConfig::default()
            }
            .with_entities(Topic::Games, ["Galactic Raiders"]),
        );
        let engine = SearchEngine::new(corpus);
        let out = run_source(
            &DataSourceDef::WebVertical {
                vertical: Vertical::Image,
                config: SearchConfig::default(),
            },
            "Galactic Raiders",
            5,
            Substrates {
                engine: Some(&engine),
                ..none_subs()
            },
            None,
        );
        assert!(!out.items.is_empty());
        assert!(out.items[0].field("image_src").is_some());
        assert_eq!(out.virtual_ms, WEB_MS);
    }

    #[test]
    fn service_source_carries_transport_latency() {
        let mut transport = SimulatedTransport::new(1);
        transport.register("pricing", Box::new(PricingService), LatencyModel::fast());
        let out = run_source(
            &DataSourceDef::Service {
                endpoint: "pricing".into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy: CallPolicy::default(),
            },
            "Galactic Raiders",
            5,
            Substrates {
                transport: Some(&transport),
                ..none_subs()
            },
            None,
        );
        assert!(out.error.is_none());
        assert_eq!(out.items.len(), 1);
        assert!(out.items[0].field("price").is_some());
        assert!(out.virtual_ms <= 10);
    }

    #[test]
    fn service_failure_is_soft_and_charged() {
        let transport = SimulatedTransport::new(1);
        let out = run_source(
            &DataSourceDef::Service {
                endpoint: "missing".into(),
                operation: "/x".into(),
                item_param: "item".into(),
                policy: CallPolicy::default(),
            },
            "q",
            5,
            Substrates {
                transport: Some(&transport),
                ..none_subs()
            },
            None,
        );
        assert!(out.items.is_empty());
        assert!(out.error.unwrap().contains("unknown endpoint"));
    }

    #[test]
    fn ads_source_exposes_billing_fields() {
        use symphony_ads::{Ad, Keyword, MatchType};
        let mut ads = AdServer::new();
        let adv = ads.add_advertiser("MegaGames");
        ads.add_campaign(
            adv,
            "c",
            1000,
            vec![Keyword::new("game", MatchType::Broad, 50)],
            Ad {
                title: "Sale".into(),
                display_url: "d".into(),
                target_url: "http://mega.example.com".into(),
                text: "x".into(),
            },
            0.8,
        );
        let out = run_source(
            &DataSourceDef::Ads { slots: 2 },
            "space game",
            5,
            Substrates {
                ads: Some(&ads),
                scatter: None,
                ..none_subs()
            },
            None,
        );
        assert_eq!(out.items.len(), 1);
        assert_eq!(out.items[0].field("campaign"), Some("0"));
        assert!(out.items[0].field("price_cents").is_some());
    }

    #[test]
    fn missing_substrates_are_soft_errors() {
        for def in [
            DataSourceDef::Proprietary { table: "t".into() },
            DataSourceDef::WebVertical {
                vertical: Vertical::Web,
                config: SearchConfig::default(),
            },
            DataSourceDef::Service {
                endpoint: "e".into(),
                operation: "/o".into(),
                item_param: "q".into(),
                policy: CallPolicy::default(),
            },
            DataSourceDef::Ads { slots: 1 },
        ] {
            let out = run_source(&def, "q", 3, none_subs(), None);
            assert!(out.error.is_some(), "{def:?}");
        }
    }

    #[test]
    fn composed_app_source_without_hosting_is_soft_error() {
        let def = DataSourceDef::ComposedApp {
            app: crate::app::AppId(3),
        };
        assert_eq!(def.category(), "app");
        assert!(def.fields(None, None).contains(&"app".to_string()));
        let out = run_source(&def, "q", 5, none_subs(), None);
        assert!(out.items.is_empty());
        assert!(out.error.unwrap().contains("hosting layer"));
    }

    #[test]
    fn budget_below_fixed_cost_cuts_local_sources_for_free() {
        let (store, tenant, key) = store_with_inventory();
        let space = store.space(tenant, &key).unwrap();
        let ctx = SourceCtx {
            budget_ms: Some(PROPRIETARY_MS - 1),
            ..SourceCtx::at(0)
        };
        let out = run_source_ctx(
            &DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
            "shooter",
            5,
            Substrates {
                space: Some(space),
                ..none_subs()
            },
            None,
            &ctx,
        );
        assert!(out.error.unwrap().contains("deadline cut"));
        assert_eq!(out.virtual_ms, 0);
        assert_eq!(out.attempts, 0);
        // A budget that covers the cost runs normally.
        let ok = run_source_ctx(
            &DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
            "shooter",
            5,
            Substrates {
                space: Some(space),
                ..none_subs()
            },
            None,
            &SourceCtx {
                budget_ms: Some(PROPRIETARY_MS),
                ..SourceCtx::at(0)
            },
        );
        assert!(ok.error.is_none());
        assert_eq!(ok.virtual_ms, PROPRIETARY_MS);
    }

    #[test]
    fn open_breaker_degrades_service_source_in_zero_ms() {
        use symphony_services::{BreakerConfig, BreakerRegistry};
        let mut transport = SimulatedTransport::new(1);
        transport.register("pricing", Box::new(PricingService), LatencyModel::fast());
        let breakers = BreakerRegistry::new(BreakerConfig {
            failure_threshold: 1,
            open_ms: 10_000,
            half_open_successes: 1,
        });
        breakers.record("pricing", 0, false); // trip it
        let out = run_source_ctx(
            &DataSourceDef::Service {
                endpoint: "pricing".into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy: CallPolicy::default(),
            },
            "Galactic Raiders",
            5,
            Substrates {
                transport: Some(&transport),
                ..none_subs()
            },
            None,
            &SourceCtx {
                breakers: Some(&breakers),
                ..SourceCtx::at(100)
            },
        );
        assert!(out.error.unwrap().contains("circuit open"));
        assert_eq!(out.virtual_ms, 0);
        assert_eq!(out.attempts, 0);
    }

    #[test]
    fn service_deadline_budget_caps_burned_time() {
        let mut transport = SimulatedTransport::new(1);
        transport.register(
            "pricing",
            Box::new(PricingService),
            LatencyModel {
                base_ms: 500,
                jitter_ms: 0,
                failure_rate: 0.0,
            },
        );
        let out = run_source_ctx(
            &DataSourceDef::Service {
                endpoint: "pricing".into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy: CallPolicy {
                    timeout_ms: 400,
                    retries: 3,
                    ..CallPolicy::default()
                },
            },
            "Galactic Raiders",
            5,
            Substrates {
                transport: Some(&transport),
                ..none_subs()
            },
            None,
            &SourceCtx {
                budget_ms: Some(60),
                ..SourceCtx::at(0)
            },
        );
        // One attempt times out at the 60ms budget, the rest are cut.
        assert!(out.error.is_some());
        assert_eq!(out.virtual_ms, 60);
    }

    #[test]
    fn categories_and_fields() {
        assert_eq!(DataSourceDef::Ads { slots: 1 }.category(), "ads");
        assert_eq!(
            DataSourceDef::WebVertical {
                vertical: Vertical::News,
                config: SearchConfig::default()
            }
            .category(),
            "news"
        );
        let fs = DataSourceDef::WebVertical {
            vertical: Vertical::News,
            config: SearchConfig::default(),
        }
        .fields(None, None);
        assert!(fs.contains(&"date".to_string()));
    }
}
