//! HTML rendering of element trees.
//!
//! Two modes share one renderer:
//!
//! * **Runtime** — [`render_element`] renders an item layout against a
//!   concrete record's fields; nested result lists are delegated to a
//!   caller-supplied closure (the platform runtime executes the
//!   supplemental query and renders its items recursively).
//! * **Design surface** — [`render_design_surface`] renders the canvas
//!   with `⟦field⟧` chips instead of data and one sample item per
//!   result list, which is what the Fig.-1 report binary prints.

use crate::canvas::Canvas;
use crate::element::{Direction, Element, ElementKind};
use crate::style::Stylesheet;

/// Escape text for HTML character data.
pub fn escape_html(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a URL for an attribute; anything not http(s) or relative is
/// neutralized (a `javascript:` URL in uploaded data must not become a
/// live link in a hosted application).
pub fn safe_url(url: &str) -> String {
    let trimmed = url.trim();
    let lower = trimmed.to_lowercase();
    if lower.starts_with("http://") || lower.starts_with("https://") || trimmed.starts_with('/') {
        escape_html(trimmed)
    } else {
        String::from("#")
    }
}

fn style_attr(sheet: &Stylesheet, e: &Element) -> String {
    let resolved = sheet.resolve(e.kind.name(), e.class.as_deref(), e.id.0, &e.style);
    if resolved.is_empty() {
        String::new()
    } else {
        format!(" style=\"{}\"", escape_html(&resolved.to_inline_css()))
    }
}

fn class_attr(e: &Element) -> String {
    match &e.class {
        Some(c) => format!(" class=\"{}\"", escape_html(c)),
        None => String::new(),
    }
}

/// Render one element against a field lookup. Nested
/// [`ElementKind::ResultList`]s are rendered by `nested(source, max,
/// item_layout)`.
pub fn render_element(
    e: &Element,
    sheet: &Stylesheet,
    fields: &dyn Fn(&str) -> Option<String>,
    nested: &mut dyn FnMut(&str, usize, &Element) -> String,
) -> String {
    let style = style_attr(sheet, e);
    let class = class_attr(e);
    match &e.kind {
        ElementKind::Container {
            direction,
            children,
        } => {
            let dir_class = match direction {
                Direction::Row => "sym-row",
                Direction::Column => "sym-col",
            };
            let inner: String = children
                .iter()
                .map(|c| render_element(c, sheet, fields, nested))
                .collect();
            let class = match &e.class {
                Some(c) => format!(" class=\"{dir_class} {}\"", escape_html(c)),
                None => format!(" class=\"{dir_class}\""),
            };
            format!("<div{class}{style}>{inner}</div>")
        }
        ElementKind::Text { template } => {
            format!(
                "<span{class}{style}>{}</span>",
                escape_html(&template.render(fields))
            )
        }
        ElementKind::RichText { template } => {
            // Safety contract documented on the variant: the bound
            // fields are platform-generated safe HTML.
            format!("<span{class}{style}>{}</span>", template.render(fields))
        }
        ElementKind::Image { src, alt } => {
            let url = safe_url(&src.resolve(fields));
            format!(
                "<img{class}{style} src=\"{url}\" alt=\"{}\">",
                escape_html(&alt.render(fields))
            )
        }
        ElementKind::Link { href, label } => {
            let url = safe_url(&href.resolve(fields));
            format!(
                "<a{class}{style} href=\"{url}\">{}</a>",
                escape_html(&label.render(fields))
            )
        }
        ElementKind::SearchBox { placeholder } => {
            format!(
                "<form{class}{style} class=\"sym-search\" onsubmit=\"return symphonySearch(this)\">\
                 <input type=\"text\" name=\"q\" placeholder=\"{}\">\
                 <button type=\"submit\">Search</button></form>",
                escape_html(placeholder)
            )
        }
        ElementKind::ResultList {
            source,
            item,
            max_results,
        } => {
            let inner = nested(source, *max_results, item);
            format!(
                "<div{class}{style} data-source=\"{}\">{inner}</div>",
                escape_html(source)
            )
        }
    }
}

/// Render the design-time surface of a canvas: the palette (Fig. 1
/// left bar) and the tree with `⟦field⟧` placeholder chips and one
/// sample item per result list.
pub fn render_design_surface(canvas: &Canvas, sheet: &Stylesheet) -> String {
    let mut html = String::from("<div class=\"sym-designer\">\n<aside class=\"sym-palette\">\n");
    html.push_str("<h3>Data sources</h3>\n<ul>\n");
    for card in canvas.palette() {
        html.push_str(&format!(
            "<li draggable=\"true\" data-source=\"{}\"><b>{}</b> <i>({})</i><br><small>{}</small></li>\n",
            escape_html(&card.name),
            escape_html(&card.name),
            escape_html(&card.category),
            escape_html(&card.fields.join(", ")),
        ));
    }
    html.push_str("</ul>\n</aside>\n<main class=\"sym-canvas\">\n");
    let chips = |name: &str| Some(format!("⟦{name}⟧"));
    let mut sample = |source: &str, max: usize, item: &Element| {
        let inner = render_element(item, sheet, &chips, &mut |s, m, i| {
            // Nested supplemental lists also show one sample item.
            let inner = render_element(i, sheet, &chips, &mut |_, _, _| String::new());
            format!(
                "<div class=\"sym-sample\" data-source=\"{}\" data-max=\"{m}\">{inner}</div>",
                escape_html(s)
            )
        });
        format!(
            "<div class=\"sym-sample\" data-source=\"{}\" data-max=\"{max}\">{inner}</div>",
            escape_html(source)
        )
    };
    html.push_str(&render_element(canvas.root(), sheet, &chips, &mut sample));
    html.push_str("\n</main>\n</div>\n");
    html
}

/// Indented text rendering of the tree structure (the Fig.-1 binary
/// prints this next to the HTML so the layout is inspectable).
pub fn render_outline(e: &Element) -> String {
    fn go(e: &Element, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(e.kind.name());
        match &e.kind {
            ElementKind::Text { template } => {
                out.push_str(&format!(" {:?}", template.source()));
            }
            ElementKind::Link { label, .. } => {
                out.push_str(&format!(" label={:?}", label.source()));
            }
            ElementKind::ResultList {
                source,
                max_results,
                ..
            } => {
                out.push_str(&format!(" source={source:?} max={max_results}"));
            }
            _ => {}
        }
        if let Some(c) = &e.class {
            out.push_str(&format!(" .{c}"));
        }
        out.push('\n');
        match &e.kind {
            ElementKind::Container { children, .. } => {
                for c in children {
                    go(c, depth + 1, out);
                }
            }
            ElementKind::ResultList { item, .. } => go(item, depth + 1, out),
            _ => {}
        }
    }
    let mut out = String::new();
    go(e, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::DataSourceCard;

    fn fields(name: &str) -> Option<String> {
        match name {
            "title" => Some("Galactic <Raiders>".into()),
            "url" => Some("http://shop.example.com/gr".into()),
            "img" => Some("http://shop.example.com/gr.jpg".into()),
            "description" => Some("space & lasers".into()),
            _ => None,
        }
    }

    fn no_nested(_: &str, _: usize, _: &Element) -> String {
        String::new()
    }

    #[test]
    fn text_escapes_html() {
        let html = render_element(
            &Element::text("{title}"),
            &Stylesheet::new(),
            &fields,
            &mut no_nested,
        );
        assert_eq!(html, "<span>Galactic &lt;Raiders&gt;</span>");
    }

    #[test]
    fn rich_text_renders_without_escaping() {
        let snippet = |name: &str| (name == "snippet").then(|| "a <b>hit</b> here".to_string());
        let html = render_element(
            &Element::rich_text("{snippet}"),
            &Stylesheet::new(),
            &snippet,
            &mut no_nested,
        );
        assert_eq!(html, "<span>a <b>hit</b> here</span>");
        // Plain text with the same binding escapes.
        let escaped = render_element(
            &Element::text("{snippet}"),
            &Stylesheet::new(),
            &snippet,
            &mut no_nested,
        );
        assert!(escaped.contains("&lt;b&gt;"));
    }

    #[test]
    fn link_binds_href_and_label() {
        let html = render_element(
            &Element::link_field("url", "{title}"),
            &Stylesheet::new(),
            &fields,
            &mut no_nested,
        );
        assert!(html.contains("href=\"http://shop.example.com/gr\""));
        assert!(html.contains(">Galactic &lt;Raiders&gt;</a>"));
    }

    #[test]
    fn javascript_urls_neutralized() {
        let evil = |name: &str| (name == "u").then(|| "javascript:alert(1)".to_string());
        let html = render_element(
            &Element::link_field("u", "x"),
            &Stylesheet::new(),
            &evil,
            &mut no_nested,
        );
        assert!(html.contains("href=\"#\""), "{html}");
    }

    #[test]
    fn image_renders_src_and_alt() {
        let html = render_element(
            &Element::image_field("img", "{title}"),
            &Stylesheet::new(),
            &fields,
            &mut no_nested,
        );
        assert!(html.starts_with("<img"));
        assert!(html.contains("src=\"http://shop.example.com/gr.jpg\""));
        assert!(html.contains("alt=\"Galactic &lt;Raiders&gt;\""));
    }

    #[test]
    fn container_direction_classes() {
        let row = render_element(
            &Element::row(vec![Element::text("a")]),
            &Stylesheet::new(),
            &fields,
            &mut no_nested,
        );
        assert!(row.contains("sym-row"));
        let col = render_element(
            &Element::column(vec![]),
            &Stylesheet::new(),
            &fields,
            &mut no_nested,
        );
        assert!(col.contains("sym-col"));
    }

    #[test]
    fn styles_resolve_into_attribute() {
        let sheet = Stylesheet::new();
        let e = Element::text("{title}").with_style("color", "navy");
        let html = render_element(&e, &sheet, &fields, &mut no_nested);
        assert!(html.contains("style=\"color:navy\""));
    }

    #[test]
    fn result_list_delegates_to_nested() {
        let e = Element::result_list("reviews", Element::text("{title}"), 3);
        let mut calls = Vec::new();
        let html = render_element(&e, &Stylesheet::new(), &fields, &mut |s, m, _| {
            calls.push((s.to_string(), m));
            "<p>NESTED</p>".into()
        });
        assert_eq!(calls, vec![("reviews".to_string(), 3)]);
        assert!(html.contains("<p>NESTED</p>"));
        assert!(html.contains("data-source=\"reviews\""));
    }

    #[test]
    fn search_box_renders_form() {
        let html = render_element(
            &Element::search_box("Search games…"),
            &Stylesheet::new(),
            &fields,
            &mut no_nested,
        );
        assert!(html.contains("<form"));
        assert!(html.contains("placeholder=\"Search games…\""));
    }

    #[test]
    fn design_surface_shows_palette_and_chips() {
        let mut canvas = Canvas::new();
        canvas.register_source(DataSourceCard {
            name: "inventory".into(),
            category: "proprietary".into(),
            fields: vec!["title".into(), "price".into()],
        });
        let root = canvas.root_id();
        canvas
            .insert(
                root,
                Element::result_list("inventory", Element::text("{title}"), 5),
            )
            .unwrap();
        let html = render_design_surface(&canvas, &Stylesheet::new());
        assert!(html.contains("sym-palette"));
        assert!(html.contains("inventory"));
        assert!(html.contains("⟦title⟧"));
        assert!(html.contains("data-max=\"5\""));
    }

    #[test]
    fn outline_is_indented() {
        let e = Element::column(vec![Element::result_list("inv", Element::text("{t}"), 2)]);
        let outline = render_outline(&e);
        assert!(outline.starts_with("container\n"));
        assert!(outline.contains("  resultlist source=\"inv\" max=2\n"));
        assert!(outline.contains("    text \"{t}\"\n"));
    }
}
