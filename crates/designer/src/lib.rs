//! # symphony-designer
//!
//! The no-code design layer of the Symphony reproduction — the
//! programmatic model behind the WYSIWYG interface of the paper's
//! Fig. 1.
//!
//! * [`binding`] — `{field}` templates and field bindings.
//! * [`style`] — style properties, stylesheets, cascade.
//! * [`element`] — the element tree (containers, text, images,
//!   hyperlinks, search box, result lists).
//! * [`canvas`] — data-source palette + the tree, with structural ops.
//! * [`ops`] — drag-and-drop operations with undo/redo.
//! * [`template`] — prebuilt layouts and the wizard.
//! * [`render`] — HTML rendering (runtime items and the design
//!   surface).
//!
//! ## Quick example
//!
//! ```
//! use symphony_designer::canvas::DataSourceCard;
//! use symphony_designer::ops::{DesignOp, Designer};
//!
//! let mut designer = Designer::new();
//! designer.register_source(DataSourceCard {
//!     name: "inventory".into(),
//!     category: "proprietary".into(),
//!     fields: vec!["title".into(), "detail_url".into(), "description".into()],
//! });
//! let root = designer.canvas().root_id();
//! let list = designer
//!     .apply(DesignOp::DropSource { source: "inventory".into(), target: root, max_results: 10 })
//!     .unwrap()
//!     .unwrap();
//! assert_eq!(designer.canvas().find(list).unwrap().kind.name(), "resultlist");
//! ```

#![warn(missing_docs)]

pub mod binding;
pub mod canvas;
pub mod element;
pub mod ops;
pub mod render;
pub mod style;
pub mod template;

pub use binding::{Binding, Template};
pub use canvas::{Canvas, DataSourceCard, DesignError};
pub use element::{Direction, Element, ElementId, ElementKind};
pub use ops::{DesignOp, Designer};
pub use render::{render_design_surface, render_element, render_outline};
pub use style::{Selector, StyleProps, Stylesheet};
