//! The drag-and-drop operation log with undo/redo.
//!
//! The WYSIWYG surface of Fig. 1 is a GUI; its programmatic equivalent
//! is a sequence of [`DesignOp`]s applied to a [`Canvas`] through a
//! [`Designer`]. Examples and the Fig.-1 report binary construct
//! applications exactly this way, which makes the "no coding required"
//! interaction reproducible and testable.

use crate::canvas::{Canvas, DataSourceCard, DesignError};
use crate::element::{Element, ElementId};
use crate::template::wizard_item_layout;

/// One designer interaction.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignOp {
    /// Drag a palette source onto a container: creates a result list
    /// whose item layout the wizard proposes from the source's fields.
    DropSource {
        /// Palette source name.
        source: String,
        /// Drop target (a container, usually the root).
        target: ElementId,
        /// "How many results to be shown" (Fig. 1).
        max_results: usize,
    },
    /// Add an explicit element under a parent.
    AddElement {
        /// Parent container (or result list, meaning its item layout).
        parent: ElementId,
        /// The element to add.
        element: Element,
    },
    /// Remove an element subtree.
    RemoveElement {
        /// Element to remove.
        id: ElementId,
    },
    /// Set one inline style property.
    SetStyle {
        /// Target element.
        id: ElementId,
        /// Property name ("color").
        property: String,
        /// Property value ("navy").
        value: String,
    },
    /// Assign a stylesheet class.
    SetClass {
        /// Target element.
        id: ElementId,
        /// Class name.
        class: String,
    },
    /// Rearrange: move an element under a new parent container
    /// ("Multiple data sources can be added to the layout and
    /// arranged as desired", Fig. 1).
    MoveElement {
        /// Element to move (subtree moves with it).
        id: ElementId,
        /// Destination container.
        new_parent: ElementId,
        /// Position among the destination's children (clamped).
        index: usize,
    },
}

/// The designer session: canvas + undo/redo stacks.
///
/// Undo is snapshot-based: canvases are small (tens of nodes), so a
/// clone per op is cheaper than maintaining inverse operations and
/// trivially correct.
#[derive(Debug, Default)]
pub struct Designer {
    canvas: Canvas,
    undo: Vec<Canvas>,
    redo: Vec<Canvas>,
}

impl Designer {
    /// Start from an empty canvas.
    pub fn new() -> Designer {
        Designer::default()
    }

    /// Start from an existing canvas.
    pub fn with_canvas(canvas: Canvas) -> Designer {
        Designer {
            canvas,
            undo: Vec::new(),
            redo: Vec::new(),
        }
    }

    /// The current canvas.
    pub fn canvas(&self) -> &Canvas {
        &self.canvas
    }

    /// Consume the designer, yielding the canvas.
    pub fn into_canvas(self) -> Canvas {
        self.canvas
    }

    /// Register a palette source (not an undoable edit).
    pub fn register_source(&mut self, card: DataSourceCard) {
        self.canvas.register_source(card);
    }

    /// Apply one operation. Returns the id of the element the op
    /// created, when it created one.
    pub fn apply(&mut self, op: DesignOp) -> Result<Option<ElementId>, DesignError> {
        let snapshot = self.canvas.clone();
        let result = self.apply_inner(op);
        match result {
            Ok(created) => {
                self.undo.push(snapshot);
                self.redo.clear();
                Ok(created)
            }
            Err(e) => Err(e),
        }
    }

    fn apply_inner(&mut self, op: DesignOp) -> Result<Option<ElementId>, DesignError> {
        match op {
            DesignOp::DropSource {
                source,
                target,
                max_results,
            } => {
                let card = self
                    .canvas
                    .source(&source)
                    .ok_or_else(|| DesignError::UnknownSource(source.clone()))?
                    .clone();
                let item = wizard_item_layout(&card.fields);
                let list = Element::result_list(&card.name, item, max_results);
                let id = self.canvas.insert(target, list)?;
                Ok(Some(id))
            }
            DesignOp::AddElement { parent, element } => {
                let id = self.canvas.insert(parent, element)?;
                Ok(Some(id))
            }
            DesignOp::RemoveElement { id } => {
                self.canvas.remove(id)?;
                Ok(None)
            }
            DesignOp::SetStyle {
                id,
                property,
                value,
            } => {
                let el = self
                    .canvas
                    .find_mut(id)
                    .ok_or(DesignError::UnknownElement(id))?;
                el.style.set(&property, &value);
                Ok(None)
            }
            DesignOp::SetClass { id, class } => {
                let el = self
                    .canvas
                    .find_mut(id)
                    .ok_or(DesignError::UnknownElement(id))?;
                el.class = Some(class);
                Ok(None)
            }
            DesignOp::MoveElement {
                id,
                new_parent,
                index,
            } => {
                self.canvas.move_element(id, new_parent, index)?;
                Ok(None)
            }
        }
    }

    /// Undo the last applied op.
    pub fn undo(&mut self) -> Result<(), DesignError> {
        let prev = self.undo.pop().ok_or(DesignError::NothingToUndo)?;
        self.redo.push(std::mem::replace(&mut self.canvas, prev));
        Ok(())
    }

    /// Redo the last undone op.
    pub fn redo(&mut self) -> Result<(), DesignError> {
        let next = self.redo.pop().ok_or(DesignError::NothingToRedo)?;
        self.undo.push(std::mem::replace(&mut self.canvas, next));
        Ok(())
    }

    /// Depth of the undo stack (ops applied and undoable).
    pub fn undo_depth(&self) -> usize {
        self.undo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inventory_card() -> DataSourceCard {
        DataSourceCard {
            name: "inventory".into(),
            category: "proprietary".into(),
            fields: vec![
                "title".into(),
                "detail_url".into(),
                "image_url".into(),
                "description".into(),
            ],
        }
    }

    fn designer() -> Designer {
        let mut d = Designer::new();
        d.register_source(inventory_card());
        d
    }

    #[test]
    fn drop_source_builds_wizard_layout() {
        let mut d = designer();
        let root = d.canvas().root_id();
        let id = d
            .apply(DesignOp::DropSource {
                source: "inventory".into(),
                target: root,
                max_results: 10,
            })
            .unwrap()
            .unwrap();
        let el = d.canvas().find(id).unwrap();
        assert_eq!(el.kind.name(), "resultlist");
        assert_eq!(el.sources(), vec!["inventory"]);
        // Wizard produced link+image+description inside.
        assert!(el.node_count() >= 4);
    }

    #[test]
    fn hybrid_source_card_drops_like_any_other() {
        // A hybrid source (structured predicate + full-text, planned
        // by the store's selectivity planner) reaches the designer as
        // a palette card with category "hybrid" and the table's schema
        // fields — the wizard needs no special casing.
        let mut d = Designer::new();
        d.register_source(DataSourceCard {
            name: "cheap_in_stock".into(),
            category: "hybrid".into(),
            fields: vec!["title".into(), "description".into(), "price".into()],
        });
        assert_eq!(
            d.canvas().source("cheap_in_stock").unwrap().category,
            "hybrid"
        );
        let root = d.canvas().root_id();
        let id = d
            .apply(DesignOp::DropSource {
                source: "cheap_in_stock".into(),
                target: root,
                max_results: 5,
            })
            .unwrap()
            .unwrap();
        let el = d.canvas().find(id).unwrap();
        assert_eq!(el.kind.name(), "resultlist");
        assert_eq!(el.sources(), vec!["cheap_in_stock"]);
    }

    #[test]
    fn drop_unknown_source_fails_without_mutating() {
        let mut d = designer();
        let root = d.canvas().root_id();
        let before = d.canvas().clone();
        let err = d
            .apply(DesignOp::DropSource {
                source: "nope".into(),
                target: root,
                max_results: 5,
            })
            .unwrap_err();
        assert_eq!(err, DesignError::UnknownSource("nope".into()));
        assert_eq!(d.canvas(), &before);
        assert_eq!(d.undo_depth(), 0);
    }

    #[test]
    fn undo_redo_roundtrip() {
        let mut d = designer();
        let root = d.canvas().root_id();
        let empty = d.canvas().clone();
        d.apply(DesignOp::AddElement {
            parent: root,
            element: Element::text("hello"),
        })
        .unwrap();
        let with_text = d.canvas().clone();
        d.undo().unwrap();
        assert_eq!(d.canvas(), &empty);
        d.redo().unwrap();
        assert_eq!(d.canvas(), &with_text);
    }

    #[test]
    fn new_op_clears_redo() {
        let mut d = designer();
        let root = d.canvas().root_id();
        d.apply(DesignOp::AddElement {
            parent: root,
            element: Element::text("a"),
        })
        .unwrap();
        d.undo().unwrap();
        d.apply(DesignOp::AddElement {
            parent: root,
            element: Element::text("b"),
        })
        .unwrap();
        assert_eq!(d.redo().unwrap_err(), DesignError::NothingToRedo);
    }

    #[test]
    fn undo_on_empty_stack_errors() {
        let mut d = designer();
        assert_eq!(d.undo().unwrap_err(), DesignError::NothingToUndo);
    }

    #[test]
    fn style_and_class_ops() {
        let mut d = designer();
        let root = d.canvas().root_id();
        let id = d
            .apply(DesignOp::AddElement {
                parent: root,
                element: Element::text("x"),
            })
            .unwrap()
            .unwrap();
        d.apply(DesignOp::SetStyle {
            id,
            property: "color".into(),
            value: "navy".into(),
        })
        .unwrap();
        d.apply(DesignOp::SetClass {
            id,
            class: "headline".into(),
        })
        .unwrap();
        let el = d.canvas().find(id).unwrap();
        assert_eq!(el.style.get("color"), Some("navy"));
        assert_eq!(el.class.as_deref(), Some("headline"));
        // Undo restores the style but keeps the class (separate ops).
        d.undo().unwrap();
        let el = d.canvas().find(id).unwrap();
        assert_eq!(el.style.get("color"), Some("navy"));
        assert_eq!(el.class, None);
    }

    #[test]
    fn move_op_is_undoable() {
        let mut d = designer();
        let root = d.canvas().root_id();
        let a = d
            .apply(DesignOp::AddElement {
                parent: root,
                element: Element::text("a"),
            })
            .unwrap()
            .unwrap();
        let b = d
            .apply(DesignOp::AddElement {
                parent: root,
                element: Element::text("b"),
            })
            .unwrap()
            .unwrap();
        d.apply(DesignOp::MoveElement {
            id: b,
            new_parent: root,
            index: 0,
        })
        .unwrap();
        let order = |d: &Designer| -> Vec<u32> {
            match &d.canvas().root().kind {
                crate::element::ElementKind::Container { children, .. } => {
                    children.iter().map(|c| c.id.0).collect()
                }
                _ => panic!("root is a container"),
            }
        };
        assert_eq!(order(&d), vec![b.0, a.0]);
        d.undo().unwrap();
        assert_eq!(order(&d), vec![a.0, b.0]);
    }

    #[test]
    fn remove_op() {
        let mut d = designer();
        let root = d.canvas().root_id();
        let id = d
            .apply(DesignOp::AddElement {
                parent: root,
                element: Element::text("x"),
            })
            .unwrap()
            .unwrap();
        d.apply(DesignOp::RemoveElement { id }).unwrap();
        assert!(d.canvas().find(id).is_none());
        d.undo().unwrap();
        assert!(d.canvas().find(id).is_some());
    }
}
