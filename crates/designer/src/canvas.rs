//! The design canvas: palette of data sources + the element tree.

use crate::element::{Element, ElementId, ElementKind};

/// Errors from canvas/designer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// Referenced element does not exist.
    UnknownElement(ElementId),
    /// Insertion target cannot hold children.
    NotAContainer(ElementId),
    /// Referenced data source is not in the palette.
    UnknownSource(String),
    /// Undo stack empty.
    NothingToUndo,
    /// Redo stack empty.
    NothingToRedo,
    /// The root element cannot be removed.
    CannotRemoveRoot,
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::UnknownElement(id) => write!(f, "unknown element {}", id.0),
            DesignError::NotAContainer(id) => write!(f, "element {} is not a container", id.0),
            DesignError::UnknownSource(s) => write!(f, "unknown data source: {s}"),
            DesignError::NothingToUndo => write!(f, "nothing to undo"),
            DesignError::NothingToRedo => write!(f, "nothing to redo"),
            DesignError::CannotRemoveRoot => write!(f, "cannot remove the root"),
        }
    }
}

impl std::error::Error for DesignError {}

/// A data-source card in the palette (Fig. 1 left bar: "various data
/// sources that application designers can drag-n-drop onto an
/// application").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSourceCard {
    /// Source name (matches the application's data-source config).
    pub name: String,
    /// Category shown on the card ("proprietary", "web", "image",
    /// "video", "news", "service", "ads").
    pub category: String,
    /// Fields the source exposes for binding.
    pub fields: Vec<String>,
}

/// The canvas: a root container plus the source palette.
#[derive(Debug, Clone, PartialEq)]
pub struct Canvas {
    root: Element,
    next_id: u32,
    palette: Vec<DataSourceCard>,
}

impl Default for Canvas {
    fn default() -> Self {
        Canvas::new()
    }
}

impl Canvas {
    /// Empty canvas (a column root).
    pub fn new() -> Canvas {
        let mut root = Element::column(Vec::new());
        root.id = ElementId(1);
        Canvas {
            root,
            next_id: 2,
            palette: Vec::new(),
        }
    }

    /// The root container's id.
    pub fn root_id(&self) -> ElementId {
        self.root.id
    }

    /// Borrow the tree.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Register a data source in the palette (idempotent by name).
    pub fn register_source(&mut self, card: DataSourceCard) {
        if let Some(existing) = self.palette.iter_mut().find(|c| c.name == card.name) {
            *existing = card;
        } else {
            self.palette.push(card);
        }
    }

    /// The palette.
    pub fn palette(&self) -> &[DataSourceCard] {
        &self.palette
    }

    /// Palette lookup.
    pub fn source(&self, name: &str) -> Option<&DataSourceCard> {
        self.palette.iter().find(|c| c.name == name)
    }

    fn assign_ids(&mut self, element: &mut Element) {
        element.id = ElementId(self.next_id);
        self.next_id += 1;
        match &mut element.kind {
            ElementKind::Container { children, .. } => {
                let mut kids = std::mem::take(children);
                for c in &mut kids {
                    self.assign_ids(c);
                }
                if let ElementKind::Container { children, .. } = &mut element.kind {
                    *children = kids;
                }
            }
            ElementKind::ResultList { item, .. } => {
                let mut boxed = item.clone();
                self.assign_ids(&mut boxed);
                if let ElementKind::ResultList { item, .. } = &mut element.kind {
                    *item = boxed;
                }
            }
            _ => {}
        }
    }

    /// Insert `element` (ids are assigned to the whole subtree) as the
    /// last child of `parent`. Returns the new element's id.
    pub fn insert(
        &mut self,
        parent: ElementId,
        mut element: Element,
    ) -> Result<ElementId, DesignError> {
        if self.root.find(parent).is_none() {
            return Err(DesignError::UnknownElement(parent));
        }
        self.assign_ids(&mut element);
        let id = element.id;
        let target = self.root.find_mut(parent).expect("checked above");
        match &mut target.kind {
            ElementKind::Container { children, .. } => {
                children.push(element);
                Ok(id)
            }
            ElementKind::ResultList { item, .. } => {
                // Dropping onto a result list means "into its item
                // layout" (Fig. 1: supplemental content is added by
                // dragging data sources onto the result layout).
                match &mut item.kind {
                    ElementKind::Container { children, .. } => {
                        children.push(element);
                        Ok(id)
                    }
                    _ => {
                        // Wrap the existing item in a column.
                        let old = (**item).clone();
                        let mut wrapper = Element::column(vec![old, element]);
                        wrapper.id = ElementId(self.next_id);
                        self.next_id += 1;
                        **item = wrapper;
                        Ok(id)
                    }
                }
            }
            _ => Err(DesignError::NotAContainer(parent)),
        }
    }

    /// Remove an element (and its subtree).
    pub fn remove(&mut self, id: ElementId) -> Result<(), DesignError> {
        if id == self.root.id {
            return Err(DesignError::CannotRemoveRoot);
        }
        fn remove_in(e: &mut Element, id: ElementId) -> bool {
            match &mut e.kind {
                ElementKind::Container { children, .. } => {
                    if let Some(pos) = children.iter().position(|c| c.id == id) {
                        children.remove(pos);
                        return true;
                    }
                    children.iter_mut().any(|c| remove_in(c, id))
                }
                ElementKind::ResultList { item, .. } => remove_in(item, id),
                _ => false,
            }
        }
        if remove_in(&mut self.root, id) {
            Ok(())
        } else {
            Err(DesignError::UnknownElement(id))
        }
    }

    /// Move an element (with its subtree, ids preserved) to become a
    /// child of `new_parent` at `index` (clamped to the child count).
    /// The target must be a container outside the moved subtree.
    pub fn move_element(
        &mut self,
        id: ElementId,
        new_parent: ElementId,
        index: usize,
    ) -> Result<(), DesignError> {
        if id == self.root.id {
            return Err(DesignError::CannotRemoveRoot);
        }
        let moving = self.root.find(id).ok_or(DesignError::UnknownElement(id))?;
        // The destination must not live inside the moved subtree.
        if moving.find(new_parent).is_some() {
            return Err(DesignError::NotAContainer(new_parent));
        }
        match self.root.find(new_parent).map(|e| &e.kind) {
            Some(ElementKind::Container { .. }) => {}
            Some(_) => return Err(DesignError::NotAContainer(new_parent)),
            None => return Err(DesignError::UnknownElement(new_parent)),
        }
        // Detach...
        fn detach(e: &mut Element, id: ElementId) -> Option<Element> {
            match &mut e.kind {
                ElementKind::Container { children, .. } => {
                    if let Some(pos) = children.iter().position(|c| c.id == id) {
                        return Some(children.remove(pos));
                    }
                    children.iter_mut().find_map(|c| detach(c, id))
                }
                ElementKind::ResultList { item, .. } => detach(item, id),
                _ => None,
            }
        }
        let element = detach(&mut self.root, id).expect("presence checked above");
        // ...and reattach at the requested position.
        let target = self
            .root
            .find_mut(new_parent)
            .expect("destination checked above");
        if let ElementKind::Container { children, .. } = &mut target.kind {
            let at = index.min(children.len());
            children.insert(at, element);
        }
        Ok(())
    }

    /// Find an element.
    pub fn find(&self, id: ElementId) -> Option<&Element> {
        self.root.find(id)
    }

    /// Find an element mutably.
    pub fn find_mut(&mut self, id: ElementId) -> Option<&mut Element> {
        self.root.find_mut(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_assigns_fresh_ids_recursively() {
        let mut c = Canvas::new();
        let id = c
            .insert(
                c.root_id(),
                Element::column(vec![Element::text("a"), Element::text("b")]),
            )
            .unwrap();
        let inserted = c.find(id).unwrap();
        let mut ids = Vec::new();
        inserted.visit(&mut |e| ids.push(e.id.0));
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|&i| i >= 2));
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "ids must be unique");
    }

    #[test]
    fn insert_into_unknown_parent_fails() {
        let mut c = Canvas::new();
        assert_eq!(
            c.insert(ElementId(99), Element::text("x")).unwrap_err(),
            DesignError::UnknownElement(ElementId(99))
        );
    }

    #[test]
    fn insert_into_leaf_fails() {
        let mut c = Canvas::new();
        let leaf = c.insert(c.root_id(), Element::text("x")).unwrap();
        assert_eq!(
            c.insert(leaf, Element::text("y")).unwrap_err(),
            DesignError::NotAContainer(leaf)
        );
    }

    #[test]
    fn insert_onto_result_list_goes_into_item_layout() {
        let mut c = Canvas::new();
        let list = c
            .insert(
                c.root_id(),
                Element::result_list("inv", Element::column(vec![Element::text("{title}")]), 5),
            )
            .unwrap();
        let nested = c
            .insert(
                list,
                Element::result_list("reviews", Element::text("{title}"), 3),
            )
            .unwrap();
        let list_el = c.find(list).unwrap();
        assert_eq!(list_el.sources(), vec!["inv", "reviews"]);
        assert!(c.find(nested).is_some());
    }

    #[test]
    fn insert_onto_result_list_with_leaf_item_wraps() {
        let mut c = Canvas::new();
        let list = c
            .insert(
                c.root_id(),
                Element::result_list("inv", Element::text("{t}"), 5),
            )
            .unwrap();
        c.insert(list, Element::text("extra")).unwrap();
        if let ElementKind::ResultList { item, .. } = &c.find(list).unwrap().kind {
            assert_eq!(item.kind.name(), "container");
        } else {
            panic!("not a result list");
        }
    }

    #[test]
    fn remove_subtree() {
        let mut c = Canvas::new();
        let id = c.insert(c.root_id(), Element::text("x")).unwrap();
        c.remove(id).unwrap();
        assert!(c.find(id).is_none());
        assert_eq!(c.remove(id).unwrap_err(), DesignError::UnknownElement(id));
    }

    #[test]
    fn cannot_remove_root() {
        let mut c = Canvas::new();
        assert_eq!(
            c.remove(c.root_id()).unwrap_err(),
            DesignError::CannotRemoveRoot
        );
    }

    #[test]
    fn move_element_repositions_subtree_keeping_ids() {
        let mut c = Canvas::new();
        let a = c.insert(c.root_id(), Element::text("a")).unwrap();
        let b = c.insert(c.root_id(), Element::column(vec![])).unwrap();
        let x = c.insert(c.root_id(), Element::text("x")).unwrap();
        // Move x into container b.
        c.move_element(x, b, 0).unwrap();
        let bb = c.find(b).unwrap();
        if let crate::element::ElementKind::Container { children, .. } = &bb.kind {
            assert_eq!(children.len(), 1);
            assert_eq!(children[0].id, x);
        } else {
            panic!();
        }
        // Move x back before a (index 0 of root).
        let root = c.root_id();
        c.move_element(x, root, 0).unwrap();
        if let crate::element::ElementKind::Container { children, .. } = &c.root().kind {
            assert_eq!(children[0].id, x);
            assert_eq!(children[1].id, a);
        } else {
            panic!();
        }
    }

    #[test]
    fn move_into_own_subtree_rejected() {
        let mut c = Canvas::new();
        let outer = c
            .insert(c.root_id(), Element::column(vec![Element::column(vec![])]))
            .unwrap();
        // Find the inner container's id.
        let inner = {
            let mut ids = Vec::new();
            c.find(outer).unwrap().visit(&mut |e| ids.push(e.id));
            ids[1]
        };
        assert_eq!(
            c.move_element(outer, inner, 0).unwrap_err(),
            DesignError::NotAContainer(inner)
        );
    }

    #[test]
    fn move_rejects_root_and_leaf_targets() {
        let mut c = Canvas::new();
        let leaf = c.insert(c.root_id(), Element::text("t")).unwrap();
        let other = c.insert(c.root_id(), Element::text("u")).unwrap();
        let root = c.root_id();
        assert_eq!(
            c.move_element(root, root, 0).unwrap_err(),
            DesignError::CannotRemoveRoot
        );
        assert_eq!(
            c.move_element(other, leaf, 0).unwrap_err(),
            DesignError::NotAContainer(leaf)
        );
        assert_eq!(
            c.move_element(ElementId(99), root, 0).unwrap_err(),
            DesignError::UnknownElement(ElementId(99))
        );
    }

    #[test]
    fn palette_registration_idempotent() {
        let mut c = Canvas::new();
        c.register_source(DataSourceCard {
            name: "inv".into(),
            category: "proprietary".into(),
            fields: vec!["title".into()],
        });
        c.register_source(DataSourceCard {
            name: "inv".into(),
            category: "proprietary".into(),
            fields: vec!["title".into(), "price".into()],
        });
        assert_eq!(c.palette().len(), 1);
        assert_eq!(c.source("inv").unwrap().fields.len(), 2);
        assert!(c.source("nope").is_none());
    }
}
