//! Prebuilt layouts and the wizard (paper: "templates, wizard-style
//! assistance from Symphony").
//!
//! The wizard inspects a data source's field names and proposes the
//! classic result layout of Fig. 1: a hyperlink, an image, and a
//! descriptive field.

use crate::element::Element;

/// Field-name heuristics the wizard recognizes.
fn find_field<'a>(fields: &'a [String], candidates: &[&str]) -> Option<&'a str> {
    // Exact (case-insensitive) matches first, then substring matches.
    for cand in candidates {
        if let Some(f) = fields.iter().find(|f| f.eq_ignore_ascii_case(cand)) {
            return Some(f);
        }
    }
    for cand in candidates {
        if let Some(f) = fields
            .iter()
            .find(|f| f.to_lowercase().contains(&cand.to_lowercase()))
        {
            return Some(f);
        }
    }
    None
}

/// Propose an item layout for a source exposing `fields`.
///
/// Heuristics: a title-ish field becomes a hyperlink (bound to a
/// URL-ish field when one exists, otherwise plain headline text); an
/// image-ish field becomes an `<img>`; a description-ish field becomes
/// body text; a price-ish field is appended as a caption. Sources with
/// none of those get their first three fields as labeled text rows.
pub fn wizard_item_layout(fields: &[String]) -> Element {
    let title = find_field(fields, &["title", "name", "headline"]);
    let url = find_field(fields, &["url", "link", "detail_url", "href"]);
    let image = find_field(fields, &["image", "image_url", "thumbnail", "img", "src"]);
    let desc = find_field(
        fields,
        &["description", "snippet", "summary", "body", "text", "blurb"],
    );
    let price = find_field(fields, &["price", "cost"]);

    let mut children = Vec::new();
    match (title, url) {
        (Some(t), Some(u)) => {
            children.push(Element::link_field(u, &format!("{{{t}}}")).with_class("result-title"))
        }
        (Some(t), None) => {
            children.push(Element::text(&format!("{{{t}}}")).with_class("result-title"))
        }
        (None, Some(u)) => {
            children.push(Element::link_field(u, &format!("{{{u}}}")).with_class("result-title"))
        }
        (None, None) => {}
    }
    if let Some(img) = image {
        let alt = title.map(|t| format!("{{{t}}}")).unwrap_or_default();
        children.push(Element::image_field(img, &alt).with_class("result-image"));
    }
    if let Some(d) = desc {
        // Snippets arrive pre-highlighted (safe HTML) from the search
        // engine; other descriptive fields are raw data and escape.
        let el = if d.to_lowercase().contains("snippet") {
            Element::rich_text(&format!("{{{d}}}"))
        } else {
            Element::text(&format!("{{{d}}}"))
        };
        children.push(el.with_class("result-description"));
    }
    if let Some(p) = price {
        children.push(Element::text(&format!("${{{p}}}")).with_class("result-price"));
    }
    if children.is_empty() {
        for f in fields.iter().take(3) {
            children.push(Element::text(&format!("{f}: {{{f}}}")));
        }
    }
    Element::column(children).with_class("result-item")
}

/// The classic web-result layout (link + snippet), used by default for
/// web-vertical sources.
pub fn web_result_layout() -> Element {
    Element::column(vec![
        Element::link_field("url", "{title}").with_class("result-title"),
        Element::rich_text("{snippet}").with_class("result-description"),
        Element::text("{domain}").with_class("result-domain"),
    ])
    .with_class("result-item")
}

/// A media-card layout (image + caption), used by default for image
/// and video sources.
pub fn media_card_layout() -> Element {
    Element::row(vec![
        Element::image_field("image_src", "{title}").with_class("result-image"),
        Element::column(vec![
            Element::link_field("url", "{title}").with_class("result-title")
        ]),
    ])
    .with_class("result-item media-card")
}

/// An ad layout (clearly labeled, per the paper's voluntary-ads
/// policy).
pub fn ad_layout() -> Element {
    Element::column(vec![
        Element::text("Sponsored").with_class("ad-label"),
        Element::link_field("target_url", "{title}").with_class("ad-title"),
        Element::text("{text}").with_class("ad-text"),
        Element::text("{display_url}").with_class("ad-display-url"),
    ])
    .with_class("result-item ad")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementKind;

    fn f(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn wizard_classic_inventory() {
        let layout = wizard_item_layout(&f(&[
            "title",
            "detail_url",
            "image_url",
            "description",
            "price",
        ]));
        let kinds: Vec<&str> = match &layout.kind {
            ElementKind::Container { children, .. } => {
                children.iter().map(|c| c.kind.name()).collect()
            }
            _ => panic!(),
        };
        assert_eq!(kinds, vec!["link", "image", "text", "text"]);
    }

    #[test]
    fn wizard_title_without_url_is_text() {
        let layout = wizard_item_layout(&f(&["name", "stock"]));
        if let ElementKind::Container { children, .. } = &layout.kind {
            assert_eq!(children[0].kind.name(), "text");
        } else {
            panic!();
        }
    }

    #[test]
    fn wizard_substring_heuristics() {
        let layout = wizard_item_layout(&f(&["game_title", "review_link", "thumb_image"]));
        if let ElementKind::Container { children, .. } = &layout.kind {
            assert_eq!(children[0].kind.name(), "link");
            assert!(children.iter().any(|c| c.kind.name() == "image"));
        } else {
            panic!();
        }
    }

    #[test]
    fn wizard_fallback_lists_first_fields() {
        let layout = wizard_item_layout(&f(&["alpha", "beta", "gamma", "delta"]));
        if let ElementKind::Container { children, .. } = &layout.kind {
            assert_eq!(children.len(), 3);
            assert!(children.iter().all(|c| c.kind.name() == "text"));
        } else {
            panic!();
        }
    }

    #[test]
    fn prebuilt_layouts_have_classes() {
        assert_eq!(web_result_layout().class.as_deref(), Some("result-item"));
        assert!(media_card_layout()
            .class
            .as_deref()
            .unwrap()
            .contains("media-card"));
        assert!(ad_layout().class.as_deref().unwrap().contains("ad"));
    }

    #[test]
    fn ad_layout_is_labeled_sponsored() {
        let mut found = false;
        ad_layout().visit(&mut |e| {
            if let ElementKind::Text { template } = &e.kind {
                if template.source() == "Sponsored" {
                    found = true;
                }
            }
        });
        assert!(found);
    }
}
