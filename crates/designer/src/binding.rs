//! Field bindings and `{field}` templates.
//!
//! Fig. 1's result layout binds HTML elements to data-source fields:
//! a hyperlink whose text is `{title}`, an image whose source is
//! `{image_url}`, a text block showing `{description}`. Templates are
//! parsed once and rendered against a field-lookup function.

/// A value that is either a literal or a field reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// Fixed text.
    Literal(String),
    /// Value of a named data-source field.
    Field(String),
}

impl Binding {
    /// Resolve against a field lookup; missing fields resolve empty.
    pub fn resolve(&self, fields: &dyn Fn(&str) -> Option<String>) -> String {
        match self {
            Binding::Literal(s) => s.clone(),
            Binding::Field(f) => fields(f).unwrap_or_default(),
        }
    }
}

/// One parsed template segment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Field(String),
}

/// A `{field}` interpolation template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    segments: Vec<Segment>,
    source: String,
}

impl Template {
    /// Parse a template. `{name}` interpolates a field; `{{` and `}}`
    /// escape literal braces; an unclosed `{` is kept literally.
    pub fn parse(input: &str) -> Template {
        let mut segments = Vec::new();
        let mut literal = String::new();
        let mut chars = input.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '{' if chars.peek() == Some(&'{') => {
                    chars.next();
                    literal.push('{');
                }
                '}' if chars.peek() == Some(&'}') => {
                    chars.next();
                    literal.push('}');
                }
                '{' => {
                    let mut name = String::new();
                    let mut closed = false;
                    for c2 in chars.by_ref() {
                        if c2 == '}' {
                            closed = true;
                            break;
                        }
                        name.push(c2);
                    }
                    if closed && !name.is_empty() && name.chars().all(valid_field_char) {
                        if !literal.is_empty() {
                            segments.push(Segment::Literal(std::mem::take(&mut literal)));
                        }
                        segments.push(Segment::Field(name));
                    } else {
                        // Malformed: keep literally.
                        literal.push('{');
                        literal.push_str(&name);
                        if closed {
                            literal.push('}');
                        }
                    }
                }
                c => literal.push(c),
            }
        }
        if !literal.is_empty() {
            segments.push(Segment::Literal(literal));
        }
        Template {
            segments,
            source: input.to_string(),
        }
    }

    /// The original template text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Field names referenced, in order of first appearance.
    pub fn fields(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.segments {
            if let Segment::Field(f) = s {
                if !out.contains(&f.as_str()) {
                    out.push(f);
                }
            }
        }
        out
    }

    /// Render against a field lookup; missing fields render empty.
    pub fn render(&self, fields: &dyn Fn(&str) -> Option<String>) -> String {
        let mut out = String::new();
        for s in &self.segments {
            match s {
                Segment::Literal(l) => out.push_str(l),
                Segment::Field(f) => {
                    if let Some(v) = fields(f) {
                        out.push_str(&v);
                    }
                }
            }
        }
        out
    }

    /// True when the template is a single bare field (`"{title}"`).
    pub fn is_single_field(&self) -> bool {
        matches!(self.segments.as_slice(), [Segment::Field(_)])
    }
}

fn valid_field_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.'
}

/// Render helper over a slice of `(name, value)` pairs.
pub fn lookup_in<'a>(pairs: &'a [(String, String)]) -> impl Fn(&str) -> Option<String> + 'a {
    move |name: &str| {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(name: &str) -> Option<String> {
        match name {
            "title" => Some("Galactic Raiders".into()),
            "price" => Some("49.99".into()),
            _ => None,
        }
    }

    #[test]
    fn literal_only() {
        let t = Template::parse("hello world");
        assert_eq!(t.render(&fields), "hello world");
        assert!(t.fields().is_empty());
    }

    #[test]
    fn interpolation() {
        let t = Template::parse("{title} — ${price}");
        assert_eq!(t.render(&fields), "Galactic Raiders — $49.99");
        assert_eq!(t.fields(), vec!["title", "price"]);
    }

    #[test]
    fn missing_field_renders_empty() {
        let t = Template::parse("[{nope}]");
        assert_eq!(t.render(&fields), "[]");
    }

    #[test]
    fn escaped_braces() {
        let t = Template::parse("{{literal}} {title}");
        assert_eq!(t.render(&fields), "{literal} Galactic Raiders");
    }

    #[test]
    fn unclosed_brace_is_literal() {
        let t = Template::parse("oops {title");
        assert_eq!(t.render(&fields), "oops {title");
    }

    #[test]
    fn invalid_field_name_is_literal() {
        let t = Template::parse("{not a field}");
        assert_eq!(t.render(&fields), "{not a field}");
    }

    #[test]
    fn single_field_detection() {
        assert!(Template::parse("{title}").is_single_field());
        assert!(!Template::parse("x{title}").is_single_field());
        assert!(!Template::parse("plain").is_single_field());
    }

    #[test]
    fn duplicate_fields_deduped_in_listing() {
        let t = Template::parse("{a} {a} {b}");
        assert_eq!(t.fields(), vec!["a", "b"]);
    }

    #[test]
    fn binding_resolution() {
        assert_eq!(Binding::Literal("x".into()).resolve(&fields), "x");
        assert_eq!(
            Binding::Field("title".into()).resolve(&fields),
            "Galactic Raiders"
        );
        assert_eq!(Binding::Field("none".into()).resolve(&fields), "");
    }

    #[test]
    fn lookup_in_pairs() {
        let pairs = vec![("a".to_string(), "1".to_string())];
        let f = lookup_in(&pairs);
        assert_eq!(f("a"), Some("1".into()));
        assert_eq!(f("b"), None);
    }
}
