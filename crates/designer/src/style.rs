//! Style properties and stylesheets.
//!
//! Paper §II-A, "Presentation": look-and-feel customization *"via
//! templates, wizard-style assistance, or through style properties on
//! individual elements (e.g., color, font-size). For more web-savvy
//! users, greater control is possible via style-sheets."* Both levels
//! exist here: per-element [`StyleProps`] and [`Stylesheet`] rules with
//! a simple cascade (kind < class < id < inline).

/// An ordered property list (`color: red; font-size: 12px`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StyleProps {
    props: Vec<(String, String)>,
}

impl StyleProps {
    /// Empty properties.
    pub fn new() -> StyleProps {
        StyleProps::default()
    }

    /// Builder-style property set.
    pub fn with(mut self, name: &str, value: &str) -> StyleProps {
        self.set(name, value);
        self
    }

    /// Set (or replace) a property.
    pub fn set(&mut self, name: &str, value: &str) {
        match self.props.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = value.to_string(),
            None => self.props.push((name.to_string(), value.to_string())),
        }
    }

    /// Property lookup.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.props
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Overlay `other` on top of `self` (other wins).
    pub fn merge_over(&self, other: &StyleProps) -> StyleProps {
        let mut merged = self.clone();
        for (k, v) in &other.props {
            merged.set(k, v);
        }
        merged
    }

    /// True when no property is set.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Render as an inline `style` attribute value.
    pub fn to_inline_css(&self) -> String {
        self.props
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// What a stylesheet rule targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selector {
    /// Every element of a kind name ("text", "link", "image", ...).
    Kind(String),
    /// Elements carrying a class.
    Class(String),
    /// One element by id.
    Id(u32),
}

/// Cascade strength of a selector (higher wins).
fn specificity(s: &Selector) -> u8 {
    match s {
        Selector::Kind(_) => 0,
        Selector::Class(_) => 1,
        Selector::Id(_) => 2,
    }
}

/// An ordered list of `(selector, props)` rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stylesheet {
    rules: Vec<(Selector, StyleProps)>,
}

impl Stylesheet {
    /// Empty stylesheet.
    pub fn new() -> Stylesheet {
        Stylesheet::default()
    }

    /// Append a rule.
    pub fn rule(mut self, selector: Selector, props: StyleProps) -> Stylesheet {
        self.rules.push((selector, props));
        self
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules exist.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Compute the effective style for an element: matching rules in
    /// specificity order (kind, class, id), then `inline` on top.
    pub fn resolve(
        &self,
        kind: &str,
        class: Option<&str>,
        id: u32,
        inline: &StyleProps,
    ) -> StyleProps {
        let mut matching: Vec<&(Selector, StyleProps)> = self
            .rules
            .iter()
            .filter(|(sel, _)| match sel {
                Selector::Kind(k) => k == kind,
                Selector::Class(c) => class == Some(c.as_str()),
                Selector::Id(i) => *i == id,
            })
            .collect();
        matching.sort_by_key(|(sel, _)| specificity(sel));
        let mut out = StyleProps::new();
        for (_, props) in matching {
            out = out.merge_over(props);
        }
        out.merge_over(inline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_replace() {
        let mut p = StyleProps::new();
        p.set("color", "red");
        p.set("color", "blue");
        assert_eq!(p.get("color"), Some("blue"));
        assert_eq!(p.get("font-size"), None);
    }

    #[test]
    fn inline_css_rendering() {
        let p = StyleProps::new()
            .with("color", "red")
            .with("font-size", "12px");
        assert_eq!(p.to_inline_css(), "color:red;font-size:12px");
        assert_eq!(StyleProps::new().to_inline_css(), "");
    }

    #[test]
    fn merge_over_prefers_other() {
        let base = StyleProps::new().with("color", "red").with("margin", "4px");
        let over = StyleProps::new().with("color", "blue");
        let m = base.merge_over(&over);
        assert_eq!(m.get("color"), Some("blue"));
        assert_eq!(m.get("margin"), Some("4px"));
    }

    #[test]
    fn cascade_specificity() {
        let sheet = Stylesheet::new()
            .rule(
                Selector::Kind("text".into()),
                StyleProps::new()
                    .with("color", "black")
                    .with("font-size", "10px"),
            )
            .rule(
                Selector::Class("headline".into()),
                StyleProps::new().with("color", "navy"),
            )
            .rule(Selector::Id(7), StyleProps::new().with("color", "gold"));
        // Kind only.
        let a = sheet.resolve("text", None, 1, &StyleProps::new());
        assert_eq!(a.get("color"), Some("black"));
        // Class overrides kind.
        let b = sheet.resolve("text", Some("headline"), 1, &StyleProps::new());
        assert_eq!(b.get("color"), Some("navy"));
        assert_eq!(b.get("font-size"), Some("10px"));
        // Id overrides class.
        let c = sheet.resolve("text", Some("headline"), 7, &StyleProps::new());
        assert_eq!(c.get("color"), Some("gold"));
        // Inline overrides everything.
        let d = sheet.resolve(
            "text",
            Some("headline"),
            7,
            &StyleProps::new().with("color", "red"),
        );
        assert_eq!(d.get("color"), Some("red"));
    }

    #[test]
    fn non_matching_rules_ignored() {
        let sheet = Stylesheet::new().rule(
            Selector::Class("x".into()),
            StyleProps::new().with("color", "red"),
        );
        let r = sheet.resolve("text", None, 0, &StyleProps::new());
        assert!(r.is_empty());
        assert_eq!(sheet.len(), 1);
        assert!(!sheet.is_empty());
    }
}
