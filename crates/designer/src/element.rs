//! The element tree — the designer's document model.
//!
//! Fig. 1 right panel: a result layout composed of HTML elements
//! ("text, images and hyperlinks using fields from the data source"),
//! plus the application-level pieces: the search box, result lists
//! (one per data source on the canvas), and layout containers.

use crate::binding::{Binding, Template};
use crate::style::StyleProps;

/// Stable identifier of an element within one canvas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub u32);

/// Layout direction for containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Children render left-to-right.
    Row,
    /// Children render top-to-bottom.
    Column,
}

/// The element variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementKind {
    /// Layout container.
    Container {
        /// Flow direction.
        direction: Direction,
        /// Children in order.
        children: Vec<Element>,
    },
    /// Text with `{field}` interpolation (HTML-escaped on render).
    Text {
        /// The template.
        template: Template,
    },
    /// Like `Text`, but rendered *without* HTML escaping. Only for
    /// fields the platform itself produced as safe HTML — e.g. the
    /// web engine's highlighted snippets (which are escaped at
    /// snippet-generation time, with `<b>` markers added after). Never
    /// bind raw uploaded data here.
    RichText {
        /// The template.
        template: Template,
    },
    /// An image bound to a source URL.
    Image {
        /// Image source.
        src: Binding,
        /// Alt text template.
        alt: Template,
    },
    /// A hyperlink with a templated label.
    Link {
        /// Target URL.
        href: Binding,
        /// Visible label.
        label: Template,
    },
    /// The application's query input.
    SearchBox {
        /// Placeholder text.
        placeholder: String,
    },
    /// Renders the results of a named data source using an item
    /// layout (dropping supplemental sources *onto a result layout*
    /// nests another `ResultList` inside the item).
    ResultList {
        /// Data-source name this list renders.
        source: String,
        /// Layout applied to each result.
        item: Box<Element>,
        /// Result count ("how many results to be shown", Fig. 1).
        max_results: usize,
    },
}

impl ElementKind {
    /// Kind name used by stylesheet selectors and rendering.
    pub fn name(&self) -> &'static str {
        match self {
            ElementKind::Container { .. } => "container",
            ElementKind::Text { .. } => "text",
            ElementKind::RichText { .. } => "richtext",
            ElementKind::Image { .. } => "image",
            ElementKind::Link { .. } => "link",
            ElementKind::SearchBox { .. } => "searchbox",
            ElementKind::ResultList { .. } => "resultlist",
        }
    }
}

/// One node of the design tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Id assigned by the designer (0 until inserted).
    pub id: ElementId,
    /// Variant.
    pub kind: ElementKind,
    /// Optional class for stylesheet targeting.
    pub class: Option<String>,
    /// Inline style properties.
    pub style: StyleProps,
}

impl Element {
    /// New element with no id/class/style.
    pub fn new(kind: ElementKind) -> Element {
        Element {
            id: ElementId(0),
            kind,
            class: None,
            style: StyleProps::new(),
        }
    }

    /// Column container.
    pub fn column(children: Vec<Element>) -> Element {
        Element::new(ElementKind::Container {
            direction: Direction::Column,
            children,
        })
    }

    /// Row container.
    pub fn row(children: Vec<Element>) -> Element {
        Element::new(ElementKind::Container {
            direction: Direction::Row,
            children,
        })
    }

    /// Text element from a template string.
    pub fn text(template: &str) -> Element {
        Element::new(ElementKind::Text {
            template: Template::parse(template),
        })
    }

    /// Rich-text element: renders without escaping (see
    /// [`ElementKind::RichText`] for the safety contract).
    pub fn rich_text(template: &str) -> Element {
        Element::new(ElementKind::RichText {
            template: Template::parse(template),
        })
    }

    /// Image bound to a field.
    pub fn image_field(field: &str, alt: &str) -> Element {
        Element::new(ElementKind::Image {
            src: Binding::Field(field.to_string()),
            alt: Template::parse(alt),
        })
    }

    /// Link with field-bound href and templated label.
    pub fn link_field(href_field: &str, label: &str) -> Element {
        Element::new(ElementKind::Link {
            href: Binding::Field(href_field.to_string()),
            label: Template::parse(label),
        })
    }

    /// Search box.
    pub fn search_box(placeholder: &str) -> Element {
        Element::new(ElementKind::SearchBox {
            placeholder: placeholder.to_string(),
        })
    }

    /// Result list for a data source.
    pub fn result_list(source: &str, item: Element, max_results: usize) -> Element {
        Element::new(ElementKind::ResultList {
            source: source.to_string(),
            item: Box::new(item),
            max_results,
        })
    }

    /// Builder: set the class.
    pub fn with_class(mut self, class: &str) -> Element {
        self.class = Some(class.to_string());
        self
    }

    /// Builder: set an inline style property.
    pub fn with_style(mut self, name: &str, value: &str) -> Element {
        self.style.set(name, value);
        self
    }

    /// Depth-first search for an element.
    pub fn find(&self, id: ElementId) -> Option<&Element> {
        if self.id == id {
            return Some(self);
        }
        match &self.kind {
            ElementKind::Container { children, .. } => children.iter().find_map(|c| c.find(id)),
            ElementKind::ResultList { item, .. } => item.find(id),
            _ => None,
        }
    }

    /// Depth-first mutable search.
    pub fn find_mut(&mut self, id: ElementId) -> Option<&mut Element> {
        if self.id == id {
            return Some(self);
        }
        match &mut self.kind {
            ElementKind::Container { children, .. } => {
                children.iter_mut().find_map(|c| c.find_mut(id))
            }
            ElementKind::ResultList { item, .. } => item.find_mut(id),
            _ => None,
        }
    }

    /// Visit every node depth-first.
    pub fn visit(&self, f: &mut dyn FnMut(&Element)) {
        f(self);
        match &self.kind {
            ElementKind::Container { children, .. } => {
                for c in children {
                    c.visit(f);
                }
            }
            ElementKind::ResultList { item, .. } => item.visit(f),
            _ => {}
        }
    }

    /// Number of nodes in the subtree.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// All data-source names referenced by `ResultList`s in the
    /// subtree (depth-first order, deduped).
    pub fn sources(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.visit(&mut |e| {
            if let ElementKind::ResultList { source, .. } = &e.kind {
                if !out.contains(source) {
                    out.push(source.clone());
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::column(vec![
            Element::search_box("Search games…"),
            Element::result_list(
                "inventory",
                Element::column(vec![
                    Element::link_field("detail_url", "{title}"),
                    Element::image_field("image_url", "{title}"),
                    Element::text("{description}"),
                    Element::result_list("reviews", Element::text("{title}"), 3),
                ]),
                10,
            ),
        ])
    }

    #[test]
    fn builders_produce_expected_kinds() {
        let e = sample();
        assert_eq!(e.kind.name(), "container");
        assert_eq!(e.node_count(), 9);
    }

    #[test]
    fn sources_lists_nested_result_lists() {
        assert_eq!(sample().sources(), vec!["inventory", "reviews"]);
    }

    #[test]
    fn find_by_id_after_manual_assignment() {
        let mut e = sample();
        // Assign ids depth-first.
        let mut next = 1u32;
        fn assign(e: &mut Element, next: &mut u32) {
            e.id = ElementId(*next);
            *next += 1;
            match &mut e.kind {
                ElementKind::Container { children, .. } => {
                    for c in children {
                        assign(c, next);
                    }
                }
                ElementKind::ResultList { item, .. } => assign(item, next),
                _ => {}
            }
        }
        assign(&mut e, &mut next);
        assert!(e.find(ElementId(5)).is_some());
        assert!(e.find(ElementId(99)).is_none());
        e.find_mut(ElementId(5)).unwrap().style.set("color", "red");
        assert_eq!(
            e.find(ElementId(5)).unwrap().style.get("color"),
            Some("red")
        );
    }

    #[test]
    fn class_and_style_builders() {
        let e = Element::text("x")
            .with_class("hl")
            .with_style("color", "red");
        assert_eq!(e.class.as_deref(), Some("hl"));
        assert_eq!(e.style.get("color"), Some("red"));
    }

    #[test]
    fn kind_names_cover_all_variants() {
        assert_eq!(Element::text("x").kind.name(), "text");
        assert_eq!(Element::search_box("s").kind.name(), "searchbox");
        assert_eq!(
            Element::result_list("s", Element::text("x"), 1).kind.name(),
            "resultlist"
        );
        assert_eq!(Element::image_field("f", "a").kind.name(), "image");
        assert_eq!(Element::link_field("f", "l").kind.name(), "link");
    }
}
