//! # symphony-baselines
//!
//! Working models of the systems Symphony is compared against in the
//! paper's Table I — Yahoo! BOSS, Rollyo, Eurekster, Google Custom
//! Search, and Google Base — plus Symphony itself behind the same
//! probing interface. The Table-I generator (in `symphony-bench`)
//! regenerates the comparison matrix from *live capability probes*
//! of these models, and the E5 experiment compares their answer
//! quality on the GamerQueen scenario.

#![warn(missing_docs)]

pub mod baselines;
pub mod matrix;
pub mod model;
pub mod relevance;
pub mod scenario;
pub mod symphony_model;

pub use baselines::{BossModel, EureksterModel, GoogleBaseModel, GoogleCustomModel, RollyoModel};
pub use matrix::{build_matrix, render_table, ComparisonRow};
pub use model::{Probe, ScenarioResult, SystemModel};
pub use relevance::{dcg, gain, ndcg_at_k};
pub use scenario::{Scenario, ENTITIES, EVAL_QUERIES, INVENTORY_CSV, REVIEW_SITES};
pub use symphony_model::SymphonyModel;
