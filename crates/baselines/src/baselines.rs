//! The five comparison systems of Table I, each as a working
//! (restricted) implementation over the shared simulated web.
//!
//! The restrictions are the point: Rollyo *can* restrict sites but has
//! no data upload; Google Base *can* ingest data but gives no custom
//! UI; BOSS exposes the API but leaves hosting and UI to the
//! developer. The Table-I generator probes these behaviours live.

use crate::model::{Probe, ScenarioResult, SystemModel};
use crate::scenario::{INVENTORY_CSV, REVIEW_SITES};
use std::sync::Arc;
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_text::Query;
use symphony_web::{SearchConfig, SearchEngine, Vertical};

fn web_results(
    engine: &SearchEngine,
    query: &str,
    config: &SearchConfig,
    k: usize,
) -> Vec<ScenarioResult> {
    engine
        .search(Vertical::Web, query, config, k)
        .into_iter()
        .map(|r| ScenarioResult {
            title: r.title,
            url: r.url,
            origin: "web".into(),
        })
        .collect()
}

// ---------------------------------------------------------------- BOSS

/// Yahoo! BOSS model: raw search API for developers.
pub struct BossModel {
    engine: Arc<SearchEngine>,
}

impl BossModel {
    /// New model over the shared engine.
    pub fn new(engine: Arc<SearchEngine>) -> Self {
        BossModel { engine }
    }
}

impl SystemModel for BossModel {
    fn name(&self) -> &'static str {
        "Y! BOSS"
    }
    fn search_api(&self) -> String {
        "Yahoo (simulated)".into()
    }
    fn probe_custom_sites(&mut self) -> Probe {
        let rs = web_results(
            &self.engine,
            "Galactic Raiders review",
            &SearchConfig::default().restrict_to(REVIEW_SITES),
            5,
        );
        if rs
            .iter()
            .all(|r| REVIEW_SITES.iter().any(|s| r.url.contains(s)))
            && !rs.is_empty()
        {
            Probe::yes("Supported")
        } else {
            Probe::no("")
        }
    }
    fn probe_proprietary_data(&mut self) -> Probe {
        // Partnership-gated: the public API refuses the upload.
        Probe::no("Limited to partners")
    }
    fn monetization(&self) -> String {
        "Ads mandatory".into()
    }
    fn probe_custom_ui(&mut self) -> Probe {
        Probe::yes("Mashup Python library, HTML/CSS (code required)")
    }
    fn deployment(&self) -> String {
        "No assistance.".into()
    }
    fn answer(&mut self, query: &str, k: usize) -> Vec<ScenarioResult> {
        // A lay user gets the raw API defaults: no proprietary data,
        // no restriction (that would require writing code).
        web_results(&self.engine, query, &SearchConfig::default(), k)
    }
}

// -------------------------------------------------------------- Rollyo

/// Rollyo model: site-restricted "searchrolls" with basic styling.
pub struct RollyoModel {
    engine: Arc<SearchEngine>,
    styles: Vec<(String, String)>,
}

impl RollyoModel {
    /// New model over the shared engine.
    pub fn new(engine: Arc<SearchEngine>) -> Self {
        RollyoModel {
            engine,
            styles: Vec::new(),
        }
    }

    /// Styling is limited to colors and fonts; anything else is
    /// rejected (probed by `probe_custom_ui`).
    pub fn set_style(&mut self, property: &str, value: &str) -> Result<(), String> {
        if matches!(
            property,
            "color" | "background-color" | "font-family" | "font-size"
        ) {
            self.styles.push((property.into(), value.into()));
            Ok(())
        } else {
            Err(format!("style {property:?} not customizable"))
        }
    }
}

impl SystemModel for RollyoModel {
    fn name(&self) -> &'static str {
        "Rollyo"
    }
    fn search_api(&self) -> String {
        "Yahoo (simulated)".into()
    }
    fn probe_custom_sites(&mut self) -> Probe {
        Probe::yes("Supported")
    }
    fn probe_proprietary_data(&mut self) -> Probe {
        Probe::no("No")
    }
    fn monetization(&self) -> String {
        "Show your own ads".into()
    }
    fn probe_custom_ui(&mut self) -> Probe {
        let color = self.set_style("color", "navy").is_ok();
        let layout = self.set_style("display", "grid").is_err();
        if color && layout {
            Probe::yes("Basic styling (e.g., colors, fonts)")
        } else {
            Probe::no("")
        }
    }
    fn deployment(&self) -> String {
        "Only allows search box on 3rd-party sites".into()
    }
    fn answer(&mut self, query: &str, k: usize) -> Vec<ScenarioResult> {
        web_results(
            &self.engine,
            query,
            &SearchConfig::default().restrict_to(REVIEW_SITES),
            k,
        )
    }
}

// ------------------------------------------------------------ Eurekster

/// Eurekster model: community "swickis" — site restriction plus
/// mandatory ads for for-profit users.
pub struct EureksterModel {
    inner: RollyoModel,
}

impl EureksterModel {
    /// New model over the shared engine.
    pub fn new(engine: Arc<SearchEngine>) -> Self {
        EureksterModel {
            inner: RollyoModel::new(engine),
        }
    }
}

impl SystemModel for EureksterModel {
    fn name(&self) -> &'static str {
        "Eurekster"
    }
    fn search_api(&self) -> String {
        "Yahoo (simulated)".into()
    }
    fn probe_custom_sites(&mut self) -> Probe {
        self.inner.probe_custom_sites()
    }
    fn probe_proprietary_data(&mut self) -> Probe {
        Probe::no("No")
    }
    fn monetization(&self) -> String {
        "Ads mandatory for for-profit entities".into()
    }
    fn probe_custom_ui(&mut self) -> Probe {
        self.inner.probe_custom_ui()
    }
    fn deployment(&self) -> String {
        "Only allows search box on 3rd-party sites".into()
    }
    fn answer(&mut self, query: &str, k: usize) -> Vec<ScenarioResult> {
        self.inner.answer(query, k)
    }
}

// --------------------------------------------------------- Google Custom

/// Google Custom Search model: tweak the general engine (restriction,
/// augmentation, URL preference), nothing more.
pub struct GoogleCustomModel {
    engine: Arc<SearchEngine>,
    config: SearchConfig,
}

impl GoogleCustomModel {
    /// New model with Ann's customizations applied.
    pub fn new(engine: Arc<SearchEngine>) -> Self {
        GoogleCustomModel {
            engine,
            config: SearchConfig::default()
                .restrict_to(REVIEW_SITES)
                .augment(["game"])
                .prefer(["gamespot.com"]),
        }
    }
}

impl SystemModel for GoogleCustomModel {
    fn name(&self) -> &'static str {
        "Google Custom"
    }
    fn search_api(&self) -> String {
        "Google (simulated)".into()
    }
    fn probe_custom_sites(&mut self) -> Probe {
        Probe::yes("Supported")
    }
    fn probe_proprietary_data(&mut self) -> Probe {
        Probe::no("No")
    }
    fn monetization(&self) -> String {
        "Ads mandatory for for-profit entities".into()
    }
    fn probe_custom_ui(&mut self) -> Probe {
        Probe::yes("Basic styling (e.g., colors, fonts)")
    }
    fn deployment(&self) -> String {
        "3rd-party sites".into()
    }
    fn answer(&mut self, query: &str, k: usize) -> Vec<ScenarioResult> {
        web_results(&self.engine, query, &self.config, k)
    }
}

// ----------------------------------------------------------- Google Base

/// Google Base model: structured-data upload that surfaces into
/// general results — no custom engine, no custom UI.
pub struct GoogleBaseModel {
    engine: Arc<SearchEngine>,
    uploaded: Option<IndexedTable>,
}

impl GoogleBaseModel {
    /// New model; Ann's inventory is uploaded during probing or lazily
    /// on first use.
    pub fn new(engine: Arc<SearchEngine>) -> Self {
        GoogleBaseModel {
            engine,
            uploaded: None,
        }
    }

    fn ensure_uploaded(&mut self) {
        if self.uploaded.is_none() {
            let (table, _) =
                ingest("base_items", INVENTORY_CSV, DataFormat::Csv).expect("inventory parses");
            let mut indexed = IndexedTable::new(table);
            indexed
                .enable_fulltext(&[("title", 2.0), ("description", 1.0)])
                .expect("columns exist");
            self.uploaded = Some(indexed);
        }
    }
}

impl SystemModel for GoogleBaseModel {
    fn name(&self) -> &'static str {
        "Google Base"
    }
    fn search_api(&self) -> String {
        "Google (simulated)".into()
    }
    fn probe_custom_sites(&mut self) -> Probe {
        Probe::no("No")
    }
    fn probe_proprietary_data(&mut self) -> Probe {
        // Base accepts feeds/tsv/xml — try them for real.
        let mut ok = Vec::new();
        for (label, format, payload) in [
            (
                "RSS",
                DataFormat::Rss,
                "<rss><channel><title>c</title><item><title>A</title></item></channel></rss>",
            ),
            ("txt", DataFormat::Tsv, "title\tprice\nA\t1\n"),
            (
                "xml",
                DataFormat::Xml,
                "<i><r><t>A</t></r><r><t>B</t></r></i>",
            ),
        ] {
            if ingest("probe", payload, format).is_ok() {
                ok.push(label);
            }
        }
        self.ensure_uploaded();
        Probe::yes(&format!("Supports various uploads ({})", ok.join(", ")))
    }
    fn monetization(&self) -> String {
        "No".into()
    }
    fn probe_custom_ui(&mut self) -> Probe {
        Probe::no("No")
    }
    fn deployment(&self) -> String {
        "Data to surface on Google's search products".into()
    }
    fn answer(&mut self, query: &str, k: usize) -> Vec<ScenarioResult> {
        self.ensure_uploaded();
        // General results with uploaded items surfaced among them
        // (Base items appear in the product/onebox slot: position 1).
        let mut results = web_results(&self.engine, query, &SearchConfig::default(), k);
        let uploaded = self.uploaded.as_ref().expect("ensured above");
        let hits = uploaded
            .search(&Query::parse(query), 2)
            .expect("fulltext enabled");
        for (offset, hit) in hits.into_iter().enumerate() {
            let table = uploaded.table();
            let title = table
                .cell(hit.record, "title")
                .map(|v| v.display_string())
                .unwrap_or_default();
            let url = table
                .cell(hit.record, "detail_url")
                .map(|v| v.display_string())
                .unwrap_or_default();
            let pos = (1 + offset).min(results.len());
            results.insert(
                pos,
                ScenarioResult {
                    title,
                    url,
                    origin: "proprietary".into(),
                },
            );
        }
        results.truncate(k);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn engine() -> Arc<SearchEngine> {
        Scenario::small().engine
    }

    #[test]
    fn boss_returns_unrestricted_web_only() {
        let mut m = BossModel::new(engine());
        let rs = m.answer("space shooter game", 10);
        assert!(!rs.is_empty());
        assert!(rs.iter().all(|r| r.origin == "web"));
        assert!(m.probe_custom_sites().supported);
        assert!(!m.probe_proprietary_data().supported);
    }

    #[test]
    fn rollyo_restricts_but_cannot_upload() {
        let mut m = RollyoModel::new(engine());
        let rs = m.answer("Galactic Raiders review", 10);
        assert!(!rs.is_empty());
        assert!(rs
            .iter()
            .all(|r| REVIEW_SITES.iter().any(|s| r.url.contains(s))));
        assert!(!m.probe_proprietary_data().supported);
        let ui = m.probe_custom_ui();
        assert!(ui.supported);
        assert!(ui.notes.contains("Basic styling"));
    }

    #[test]
    fn rollyo_style_whitelist() {
        let mut m = RollyoModel::new(engine());
        assert!(m.set_style("color", "red").is_ok());
        assert!(m.set_style("display", "grid").is_err());
    }

    #[test]
    fn eurekster_mandatory_ads_for_profit() {
        let mut m = EureksterModel::new(engine());
        assert!(m.monetization().contains("mandatory"));
        assert!(m.probe_custom_sites().supported);
    }

    #[test]
    fn google_custom_tweaks_general_engine() {
        let mut m = GoogleCustomModel::new(engine());
        let rs = m.answer("Galactic Raiders review", 5);
        assert!(!rs.is_empty());
        assert!(!m.probe_proprietary_data().supported);
    }

    #[test]
    fn google_base_surfaces_uploaded_items_in_general_results() {
        let mut m = GoogleBaseModel::new(engine());
        let rs = m.answer("space shooter", 10);
        assert!(rs.iter().any(|r| r.origin == "proprietary"));
        assert!(rs.iter().any(|r| r.origin == "web"));
        // But the capability matrix shows no custom UI / sites.
        assert!(!m.probe_custom_sites().supported);
        assert!(!m.probe_custom_ui().supported);
        assert!(m.probe_proprietary_data().notes.contains("RSS"));
    }
}
