//! Symphony itself, probed through the same [`SystemModel`] interface
//! as the baselines. Everything here exercises the real platform:
//! ingestion, the drag-and-drop designer, hosting, embedding, and the
//! runtime.

use crate::model::{Probe, ScenarioResult, SystemModel};
use crate::scenario::{Scenario, INVENTORY_CSV, REVIEW_SITES};

use symphony_ads::{Ad, Keyword, MatchType};
use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::source::DataSourceDef;
use symphony_core::AppId;
use symphony_designer::canvas::DataSourceCard;
use symphony_designer::ops::{DesignOp, Designer};
use symphony_designer::Element;
use symphony_services::{LatencyModel, PricingService};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;

/// The full platform hosting the GamerQueen application.
pub struct SymphonyModel {
    platform: Platform,
    app: AppId,
}

impl SymphonyModel {
    /// Stand up the platform and build GamerQueen through the designer
    /// op log (the programmatic Fig.-1 interaction).
    pub fn new(scenario: &Scenario) -> SymphonyModel {
        let mut platform = Platform::new(scenario.engine.clone());
        let (tenant, key) = platform.create_tenant("GamerQueen");

        // Upload Ann's inventory.
        let (table, _) =
            ingest("inventory", INVENTORY_CSV, DataFormat::Csv).expect("scenario inventory parses");
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
            .expect("searchable columns exist");
        platform
            .upload_table(tenant, &key, indexed)
            .expect("within quota");

        // Real-time pricing service and an advertiser.
        platform.transport_mut().register(
            "pricing",
            Box::new(PricingService),
            LatencyModel::fast(),
        );
        let adv = platform.ads_mut().add_advertiser("MegaGames");
        platform.ads_mut().add_campaign(
            adv,
            "games",
            10_000,
            vec![Keyword::new("game", MatchType::Broad, 40)],
            Ad {
                title: "Mega Games Sale".into(),
                display_url: "megagames.example.com".into(),
                target_url: "http://megagames.example.com/sale".into(),
                text: "50% off this week".into(),
            },
            0.8,
        );

        // Design the layout through drag-and-drop ops.
        let mut designer = Designer::new();
        designer.register_source(DataSourceCard {
            name: "inventory".into(),
            category: "proprietary".into(),
            fields: vec![
                "title".into(),
                "genre".into(),
                "description".into(),
                "detail_url".into(),
                "price".into(),
            ],
        });
        designer.register_source(DataSourceCard {
            name: "reviews".into(),
            category: "web".into(),
            fields: vec![
                "url".into(),
                "title".into(),
                "snippet".into(),
                "domain".into(),
            ],
        });
        let root = designer.canvas().root_id();
        designer
            .apply(DesignOp::AddElement {
                parent: root,
                element: Element::search_box("Search games…"),
            })
            .expect("root exists");
        let list = designer
            .apply(DesignOp::DropSource {
                source: "inventory".into(),
                target: root,
                max_results: 10,
            })
            .expect("source registered")
            .expect("drop creates a list");
        designer
            .apply(DesignOp::AddElement {
                parent: list,
                element: Element::result_list(
                    "reviews",
                    Element::column(vec![
                        Element::link_field("url", "{title}"),
                        Element::rich_text("{snippet}"),
                    ]),
                    3,
                ),
            })
            .expect("drop supplemental onto result layout");

        let config = AppBuilder::new("GamerQueen", tenant)
            .layout(designer.into_canvas())
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "reviews",
                DataSourceDef::WebVertical {
                    vertical: symphony_web::Vertical::Web,
                    config: symphony_web::SearchConfig::default().restrict_to(REVIEW_SITES),
                },
            )
            .supplemental("reviews", "{title} review")
            .build()
            .expect("valid config");
        let app = platform.register_app(config).expect("registers");
        platform.publish(app).expect("publishes");
        SymphonyModel { platform, app }
    }

    /// Borrow the hosted platform (for deeper assertions in tests).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }
}

impl SystemModel for SymphonyModel {
    fn name(&self) -> &'static str {
        "Symphony"
    }

    fn search_api(&self) -> String {
        "Bing (simulated)".into()
    }

    fn probe_custom_sites(&mut self) -> Probe {
        // Run a restricted query and verify the restriction held.
        let results = self.answer("Galactic Raiders review", 10);
        let web: Vec<&ScenarioResult> = results.iter().filter(|r| r.origin == "web").collect();
        if !web.is_empty()
            && web
                .iter()
                .all(|r| REVIEW_SITES.iter().any(|s| r.url.contains(s)))
        {
            Probe::yes("Supported")
        } else {
            Probe::no("restriction leaked")
        }
    }

    fn probe_proprietary_data(&mut self) -> Probe {
        // Actually attempt each upload format.
        let attempts: [(&str, DataFormat, &str); 5] = [
            ("txt", DataFormat::Csv, "title\nA\n"),
            (
                "xml",
                DataFormat::Xml,
                "<inv><g><title>A</title></g><g><title>B</title></g></inv>",
            ),
            ("xls", DataFormat::Worksheet, "title\tprice\nA\t1\n"),
            (
                "rss",
                DataFormat::Rss,
                "<rss><channel><title>c</title><item><title>A</title></item></channel></rss>",
            ),
            ("json", DataFormat::Json, r#"[{"title":"A"}]"#),
        ];
        let mut ok: Vec<&str> = Vec::new();
        for (label, format, payload) in attempts {
            if ingest("probe", payload, format).is_ok() {
                ok.push(label);
            }
        }
        if ok.is_empty() {
            Probe::no("")
        } else {
            Probe::yes(&format!(
                "Supports various uploads (HTTP or FTP; {})",
                ok.join(", ")
            ))
        }
    }

    fn monetization(&self) -> String {
        format!(
            "Ads voluntary (revenue-sharing, {:.0}% to designer)",
            symphony_ads::DEFAULT_REV_SHARE * 100.0
        )
    }

    fn probe_custom_ui(&mut self) -> Probe {
        // A fresh designer session: drop, restyle, undo — no code.
        let mut d = Designer::new();
        d.register_source(DataSourceCard {
            name: "inventory".into(),
            category: "proprietary".into(),
            fields: vec!["title".into()],
        });
        let root = d.canvas().root_id();
        let dropped = d.apply(DesignOp::DropSource {
            source: "inventory".into(),
            target: root,
            max_results: 5,
        });
        let styled = dropped.as_ref().ok().and_then(|id| *id).map(|id| {
            d.apply(DesignOp::SetStyle {
                id,
                property: "color".into(),
                value: "navy".into(),
            })
        });
        match (dropped.is_ok(), styled) {
            (true, Some(Ok(_))) => Probe::yes("Drag'n'drop (wizard, styles, stylesheets)"),
            _ => Probe::no("designer ops failed"),
        }
    }

    fn deployment(&self) -> String {
        let embed = self.platform.embed_code(self.app).is_ok();
        let manifest = self.platform.social_manifest(self.app).ok();
        let social = manifest
            .map(|m| {
                let mut host = symphony_core::SocialCanvasHost::new();
                host.install(m).is_ok()
            })
            .unwrap_or(false);
        match (embed, social) {
            (true, true) => "Hosted at server; embeds on 3rd-party sites; social canvas".into(),
            (true, false) => "Hosted at server; embeds on 3rd-party sites".into(),
            _ => "Hosted at server".into(),
        }
    }

    fn answer(&mut self, query: &str, k: usize) -> Vec<ScenarioResult> {
        let Ok(resp) = self.platform.query(self.app, query) else {
            return Vec::new();
        };
        resp.impressions
            .iter()
            .filter_map(|imp| {
                imp.url.as_ref().map(|url| ScenarioResult {
                    title: imp.title.clone(),
                    url: url.clone(),
                    origin: if imp.is_ad {
                        "ads".into()
                    } else if imp.source == "inventory" {
                        "proprietary".into()
                    } else {
                        "web".into()
                    },
                })
            })
            .take(k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symphony_combines_proprietary_and_web() {
        let scenario = Scenario::small();
        let mut m = SymphonyModel::new(&scenario);
        let results = m.answer("space shooter", 10);
        assert!(results.iter().any(|r| r.origin == "proprietary"));
        assert!(results.iter().any(|r| r.origin == "web"));
    }

    #[test]
    fn probes_report_capabilities() {
        let scenario = Scenario::small();
        let mut m = SymphonyModel::new(&scenario);
        assert!(m.probe_custom_sites().supported);
        let data = m.probe_proprietary_data();
        assert!(data.supported);
        assert!(data.notes.contains("xml"));
        assert!(m.probe_custom_ui().supported);
        assert!(m.deployment().contains("social canvas"));
        assert!(m.monetization().contains("voluntary"));
    }
}
