//! The shared evaluation scenario: Ann's GamerQueen video-game store
//! (paper §II-B), instantiated once and handed to every system model
//! so Table I probing and the E5 quality comparison run on identical
//! substrates.

use std::sync::Arc;
use symphony_web::{Corpus, CorpusConfig, SearchEngine, Topic};

/// Ann's inventory (title, genre, description, detail page, price).
pub const INVENTORY_CSV: &str = "\
title,genre,description,detail_url,price
Galactic Raiders,shooter,a fast space shooter with lasers,http://gamerqueen.example.com/games/galactic-raiders,49.99
Farm Story,sim,calm farming with crops and animals,http://gamerqueen.example.com/games/farm-story,19.99
Space Trader,strategy,trade goods across space stations,http://gamerqueen.example.com/games/space-trader,29.99
Laser Golf,sports,golf with lasers a silly shooter,http://gamerqueen.example.com/games/laser-golf,9.99
Puzzle Palace,puzzle,mind bending puzzle rooms,http://gamerqueen.example.com/games/puzzle-palace,14.99
";

/// The game titles woven into the synthetic web as entities.
pub const ENTITIES: [&str; 5] = [
    "Galactic Raiders",
    "Farm Story",
    "Space Trader",
    "Laser Golf",
    "Puzzle Palace",
];

/// The review sites Ann knows to be high quality (paper §II-B).
pub const REVIEW_SITES: [&str; 3] = ["gamespot.com", "ign.com", "teamxbox.com"];

/// Queries customers issue in the comparison, with the inventory
/// titles they target.
pub const EVAL_QUERIES: [(&str, &str); 5] = [
    ("space shooter", "Galactic Raiders"),
    ("farming game", "Farm Story"),
    ("space trading strategy", "Space Trader"),
    ("silly golf", "Laser Golf"),
    ("puzzle rooms", "Puzzle Palace"),
];

/// The instantiated scenario.
pub struct Scenario {
    /// The shared simulated web (one corpus for every system).
    pub engine: Arc<SearchEngine>,
}

impl Scenario {
    /// Build the scenario at a given corpus scale.
    pub fn new(sites_per_topic: usize, pages_per_site: usize) -> Scenario {
        let config = CorpusConfig {
            sites_per_topic,
            pages_per_site,
            ..CorpusConfig::default()
        }
        .with_entities(Topic::Games, ENTITIES);
        Scenario {
            engine: Arc::new(SearchEngine::new(Corpus::generate(&config))),
        }
    }

    /// Small scenario for tests.
    pub fn small() -> Scenario {
        Scenario::new(2, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphony_web::{SearchConfig, Vertical};

    #[test]
    fn scenario_has_reviews_for_every_entity() {
        let s = Scenario::small();
        for entity in ENTITIES {
            let rs = s.engine.search(
                Vertical::Web,
                &format!("{entity} review"),
                &SearchConfig::default().restrict_to(REVIEW_SITES),
                5,
            );
            assert!(!rs.is_empty(), "no review found for {entity}");
        }
    }

    #[test]
    fn inventory_csv_parses() {
        let (table, report) = symphony_store::ingest::ingest(
            "inventory",
            INVENTORY_CSV,
            symphony_store::DataFormat::Csv,
        )
        .unwrap();
        assert_eq!(report.rows, 5);
        assert_eq!(table.schema().len(), 5);
    }
}
